// The smart-contract prototype walkthrough (Sec. III-F, Fig. 3, Table I):
// deploys the TradeFL contract on the in-process private chain, drives the
// full register -> deposit -> contribute -> calculate -> transfer lifecycle
// through the Web3-style client, and then demonstrates the credibility
// properties the paper claims: undeniable settlement, traceable events, and
// tamper-evident history usable for dispute arbitration.
//
//   $ ./contract_settlement
#include <cstdio>
#include <memory>

#include "chain/blockchain.h"
#include "chain/tradefl_contract.h"
#include "chain/web3.h"

int main() {
  using namespace tradefl::chain;

  // --- 1. A private chain and four organizations. ---
  Blockchain chain;
  Web3Client web3(chain);
  const std::size_t n = 4;
  std::vector<Address> orgs;
  const Wei deposit = 200'000'000'000;  // escrow per organization
  for (std::size_t i = 0; i < n; ++i) {
    orgs.push_back(Address::from_name("org-" + std::to_string(i)));
    chain.credit(orgs[i], 3 * deposit);
    std::printf("org-%zu account %s funded with %lld wei\n", i, orgs[i].to_hex().c_str(),
                static_cast<long long>(chain.balance(orgs[i])));
  }

  // --- 2. Deploy the TradeFL contract (gamma, lambda, rho, s fixed). ---
  TradeFlContractConfig config;
  config.org_count = n;
  config.gamma_scaled = Fixed::from_double(5.12);  // gamma * 1e9 (GB/GHz units)
  config.lambda = Fixed::from_double(2.0);
  config.rho.assign(n * n, Fixed{});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) config.rho[i * n + j] = Fixed::from_double(0.06);
    }
  }
  config.data_size_gb.assign(n, Fixed::from_double(20.0));
  config.min_deposit = deposit;
  const Address contract = chain.deploy(std::make_unique<TradeFlContract>(config));
  std::printf("\nTradeFL contract deployed at %s\n", contract.to_hex().c_str());

  // --- 3. Fig. 3 procedure. ---
  for (std::size_t i = 0; i < n; ++i) {
    web3.call_or_throw(orgs[i], contract, "register", {orgs[i], static_cast<std::uint64_t>(i)});
    web3.call_or_throw(orgs[i], contract, "depositSubmit", {}, deposit);
  }
  std::printf("all organizations registered and escrowed %lld wei each\n",
              static_cast<long long>(deposit));

  const double contributions[] = {0.92, 0.55, 0.30, 0.05};
  for (std::size_t i = 0; i < n; ++i) {
    web3.call_or_throw(orgs[i], contract, "contributionSubmit",
                       {Fixed::from_double(contributions[i]), Fixed::from_double(3.5)});
  }
  web3.call_or_throw(orgs[0], contract, "payoffCalculate");
  std::printf("\nnet redistribution per organization (Eq. 9, on-chain fixed point):\n");
  Wei sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Wei payoff = std::get<std::int64_t>(
        web3.call_or_throw(orgs[i], contract, "payoffOf", {static_cast<std::uint64_t>(i)})
            .returned.at(0));
    sum += payoff;
    std::printf("  org-%zu (d=%.2f): %+lld wei\n", i, contributions[i],
                static_cast<long long>(payoff));
  }
  std::printf("  sum = %lld wei (budget balance, Definition 5: exactly zero)\n",
              static_cast<long long>(sum));

  web3.call_or_throw(orgs[0], contract, "payoffTransfer");
  std::printf("\nsettled. final balances:\n");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  org-%zu: %lld wei\n", i, static_cast<long long>(chain.balance(orgs[i])));
  }

  // --- 4. Credibility: dishonest behaviour bounces off the contract. ---
  std::printf("\nattempting a double settlement (malicious replay):\n");
  const CallOutcome replay = web3.call(orgs[3], contract, "payoffTransfer");
  std::printf("  -> reverted: %s\n", replay.receipt.revert_reason.c_str());

  // --- 5. Arbitration: read the immutable record, then tamper and detect. ---
  const CallOutcome record =
      web3.call_or_throw(orgs[1], contract, "profileRecord", {std::uint64_t{0}});
  std::printf("\narbitration record for org-0: d=%s, f=%s GHz, payoff=%lld wei\n",
              std::get<Fixed>(record.returned[0]).to_string().c_str(),
              std::get<Fixed>(record.returned[1]).to_string().c_str(),
              static_cast<long long>(std::get<std::int64_t>(record.returned[2])));
  std::printf("chain: %zu blocks, %zu events, validation: %s\n", chain.block_count(),
              chain.events().size(), chain.validate().valid ? "VALID" : "INVALID");

  // --- 6. Light-client arbitration: batch all four profile records into ONE
  // block, then prove org-2's record is part of sealed history with a Merkle
  // inclusion proof — O(log n) hashes, no need to ship the chain. ---
  Web3Client batcher(chain, /*seal_every=*/0);
  for (std::size_t i = 0; i < n; ++i) {
    batcher.call(orgs[i], contract, "profileRecord", {static_cast<std::uint64_t>(i)});
  }
  const std::size_t proof_block = chain.seal_block();
  const Block& sealed = chain.block(proof_block);
  const MerkleProof proof = MerkleProof::build(sealed.transactions, 2);
  std::printf("\nMerkle inclusion proof for tx 2 of block %zu (%zu txs): %zu sibling "
              "hashes, verify=%s\n",
              proof_block, sealed.transactions.size(), proof.siblings.size(),
              proof.verify(sealed.transactions[2].hash(), sealed.header.tx_root) ? "OK"
                                                                                  : "FAIL");

  std::printf("\na dishonest org rewrites its recorded contribution in block 7...\n");
  chain.mutable_block_for_test(7).transactions[0].data.push_back(0xFF);
  const ChainValidation validation = chain.validate();
  std::printf("re-validation: %s (%s)\n", validation.valid ? "VALID" : "TAMPERING DETECTED",
              validation.problem.c_str());
  return 0;
}
