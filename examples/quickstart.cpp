// Quickstart: build a 3-organization coopetition game, run the distributed
// best-response algorithm (DBR), and inspect the equilibrium.
//
//   $ ./quickstart
//
// Walks through the essential public API:
//   game::make_toy_game / CoopetitionGame  — the economic model (Sec. III)
//   core::run_scheme                       — equilibrium algorithms (Sec. V)
//   core::verify_properties               — IR / BB / NE / CE (Theorem 2)
#include <cstdio>

#include "core/mechanism.h"
#include "game/game_factory.h"
#include "tradefl/report.h"

int main() {
  using namespace tradefl;

  // A small deterministic game: three organizations with hand-set data
  // sizes, profitability, and a uniform competition intensity of 0.05.
  const game::CoopetitionGame game = game::make_toy_game(/*gamma=*/5.12e-9,
                                                         /*rho_mean=*/0.05);

  std::printf("organizations:\n");
  for (game::OrgId i = 0; i < game.size(); ++i) {
    const auto& org = game.org(i);
    std::printf("  %-6s s=%.0f Gbit, |S|=%zu, p=%.0f, F in [%.1f, %.1f] GHz, z_i=%.1f\n",
                org.name.c_str(), org.data_size_bits / 1e9, org.sample_count,
                org.profitability, org.freq_levels.front() / 1e9,
                org.freq_levels.back() / 1e9, game.weight_z(i));
  }

  // Run the distributed algorithm: each organization repeatedly plays its
  // best response {d_i, f_i} until nobody wants to move (a pure NE of the
  // weighted potential game, Theorem 1).
  const core::MechanismResult result = core::run_scheme(game, core::Scheme::kDbr);
  std::printf("\n%s\n", describe_mechanism(game, result).c_str());

  // Verify the mechanism properties of Theorem 2.
  const core::PropertyReport report = core::verify_properties(game, result);
  std::printf("properties: %s\n", report.summary().c_str());

  // Compare against the no-redistribution world (WPR): TradeFL's payoff
  // redistribution is what incentivizes the extra data.
  const core::MechanismResult wpr = core::run_scheme(game, core::Scheme::kWpr);
  std::printf("\nwith TradeFL redistribution: Sum d_i = %.3f, welfare = %.1f\n",
              result.total_data_fraction, result.welfare);
  std::printf("without (WPR baseline):      Sum d_i = %.3f, welfare = %.1f\n",
              wpr.total_data_fraction, wpr.welfare);
  return 0;
}
