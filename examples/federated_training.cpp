// Federated training with mechanism-driven contributions: measures the
// data-accuracy curve on the FL substrate (Fig. 2 pre-experiment), fits an
// EmpiricalAccuracyModel from it, solves the coopetition game on top of the
// FITTED model — closing the loop the paper's "no specific functional form"
// design enables — and finally trains the global model at the equilibrium.
//
//   $ ./federated_training [model=mlp] [dataset=fmnist] [fast=1]
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/mechanism.h"
#include "fl/data_accuracy.h"
#include "game/game_factory.h"
#include "tradefl/session.h"

int main(int argc, char** argv) {
  using namespace tradefl;
  std::vector<std::string> raw_args;
  for (int i = 1; i < argc; ++i) raw_args.emplace_back(argv[i]);
  const Config config = Config::from_args(raw_args).value_or(Config{});
  const bool fast = config.get_bool("fast", false);
  const auto model = fl::model_kind_from_string(config.get_string("model", "mlp"));
  const auto dataset = fl::dataset_kind_from_string(config.get_string("dataset", "fmnist"));

  // --- 1. Pre-experiment: measure P(d) on the real FL substrate. ---
  fl::DataAccuracyOptions probe;
  probe.org_count = 4;
  probe.samples_per_org = fast ? 120 : 300;
  probe.test_samples = fast ? 200 : 400;
  probe.d_grid = fast ? std::vector<double>{0.1, 0.5, 1.0}
                      : std::vector<double>{0.1, 0.3, 0.5, 0.75, 1.0};
  probe.fedavg.rounds = fast ? 4 : 8;
  probe.fedavg.local_epochs = 2;
  std::printf("measuring the data-accuracy curve of %s on %s...\n",
              fl::model_name(model), fl::dataset_name(dataset));
  const auto curve = fl::measure_data_accuracy(model, dataset, probe);
  for (const auto& point : curve.points) {
    std::printf("  d=%.2f -> accuracy %.3f (P = %+.3f)\n", point.d, point.accuracy,
                point.performance);
  }
  std::printf("fit: P ~ %.3f - %.3f/sqrt(omega + %.1f), R2 = %.3f; Eq.(5) monotone=%s\n\n",
              curve.fit.a, curve.fit.b, curve.fit.c, curve.fit.r_squared,
              curve.shape.nondecreasing ? "yes" : "no");

  // --- 2. Solve the coopetition game ON the fitted model. ---
  auto base = game::make_default_game(42);
  game::GameParams params = base.params();
  params.a0 = 0.9;  // untrained-model loss anchor for the empirical model
  // The fitted curve is in units of SAMPLES (omega up to ~1.5k in the probe);
  // rescale the game's contributed bits so its Omega lands on that range.
  params.data_scale = 1.5e8;
  const game::CoopetitionGame game(base.orgs(), base.rho(),
                                   fl::empirical_accuracy_model(curve, params.a0), params);
  const auto equilibrium = core::run_scheme(game, core::Scheme::kDbr);
  std::printf("equilibrium on the FITTED accuracy model: Sum d_i = %.3f, welfare %.1f, "
              "NE gain %.2e\n\n",
              equilibrium.total_data_fraction, equilibrium.welfare,
              game.max_unilateral_gain(equilibrium.solution.profile));

  // --- 3. Train the global model at the equilibrium contributions. ---
  TradingSession session(game);
  SessionOptions options;
  options.run_training = true;
  options.model = model;
  options.dataset = dataset;
  options.sample_scale = fast ? 0.08 : 0.2;
  options.fedavg.rounds = fast ? 3 : 8;
  const SessionResult result = session.run(options);
  std::printf("federated training at the equilibrium: final accuracy %.3f, loss %.3f\n",
              result.training->final_accuracy, result.training->final_loss);
  std::printf("on-chain settlement: sum %lld wei, chain %s\n",
              static_cast<long long>(result.settlement_sum),
              result.chain_valid ? "VALID" : "INVALID");
  return 0;
}
