// Tuning the incentive intensity gamma — the paper's headline observation
// (Figs. 7/10): increasing gamma does NOT always improve social welfare.
// This example sweeps gamma under DBR, locates gamma*, and decomposes WHY
// welfare falls beyond it (energy overhead outgrows the model-quality gain).
//
//   $ ./gamma_tuning [seeds=3]
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/gamma_design.h"
#include "core/mechanism.h"
#include "game/game_factory.h"
#include "math/grid.h"

int main(int argc, char** argv) {
  using namespace tradefl;
  std::vector<std::string> raw_args;
  for (int i = 1; i < argc; ++i) raw_args.emplace_back(argv[i]);
  const Config config = Config::from_args(raw_args).value_or(Config{});
  const std::size_t seeds = static_cast<std::size_t>(config.get_int("seeds", 3));

  AsciiTable table({"gamma", "welfare", "Sum d_i", "P(Omega)", "energy cost", "damage"});
  double best_gamma = 0.0, best_welfare = -1e300;
  for (double gamma : math::logspace(1e-10, 1e-7, 13)) {
    double welfare = 0.0, sum_d = 0.0, performance = 0.0, energy = 0.0, damage = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      game::ExperimentSpec spec;
      spec.params.gamma = gamma;
      const auto game = game::make_experiment_game(spec, 42 + s);
      const auto result = core::run_scheme(game, core::Scheme::kDbr);
      welfare += result.welfare;
      sum_d += result.total_data_fraction;
      performance += result.performance;
      damage += result.total_damage;
      for (game::OrgId i = 0; i < game.size(); ++i) {
        energy += game.payoff_breakdown(i, result.solution.profile).energy_cost;
      }
    }
    const double inv = 1.0 / static_cast<double>(seeds);
    welfare *= inv;
    table.add_row_doubles({gamma, welfare, sum_d * inv, performance * inv, energy * inv,
                           damage * inv},
                          6);
    if (welfare > best_welfare) {
      best_welfare = welfare;
      best_gamma = gamma;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("coarse grid: gamma* = %.3g with welfare %.1f\n", best_gamma, best_welfare);

  // The mechanism designer's search (grid + golden-section refinement).
  core::GammaDesignOptions design;
  design.seeds = seeds;
  design.coarse_points = 9;
  const auto designed = core::optimize_gamma(game::ExperimentSpec{}, design);
  std::printf("refined:     gamma* = %.3g with welfare %.1f (%zu evaluations)\n\n",
              designed.gamma_star, designed.welfare_at_star, designed.evaluations.size());
  std::printf("reading the table: up to gamma*, redistribution draws out more data\n"
              "(Sum d_i grows, P(Omega) improves) faster than the energy cost grows.\n"
              "Beyond gamma*, organizations over-invest -- energy rises quadratically\n"
              "with the chosen frequency while the accuracy gain saturates (Eq. 5),\n"
              "so welfare falls. Damage keeps shrinking because each organization's\n"
              "marginal contribution diminishes as everyone contributes more (Fig. 9).\n");
  return 0;
}
