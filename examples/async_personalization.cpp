// Extensions beyond the paper's core evaluation:
//  * footnote 2 — TradeFL "is applicable to both synchronous and
//    asynchronous scenarios": the same equilibrium contributions drive an
//    asynchronous (staleness-discounted) training run, where each
//    organization's delivery latency is its analytic round time
//    T^(1) + T^(2)(d*, f*) + T^(3);
//  * Sec. VII future work — personalization: after global training, every
//    organization fine-tunes the global model on its own contributed data.
//
//   $ ./async_personalization [fast=1]
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/mechanism.h"
#include "fl/fedasync.h"
#include "fl/personalize.h"
#include "game/game_factory.h"

int main(int argc, char** argv) {
  using namespace tradefl;
  std::vector<std::string> raw_args;
  for (int i = 1; i < argc; ++i) raw_args.emplace_back(argv[i]);
  const Config config = Config::from_args(raw_args).value_or(Config{});
  const bool fast = config.get_bool("fast", false);

  // --- 1. Equilibrium contributions from the mechanism. ---
  const auto game = game::make_default_game(42);
  const auto equilibrium = core::run_scheme(game, core::Scheme::kDbr);
  const auto& profile = equilibrium.solution.profile;
  std::printf("equilibrium: Sum d_i = %.3f\n\n", equilibrium.total_data_fraction);

  // --- 2. Materialize local datasets and clients. ---
  const auto concept_spec = fl::DatasetSpec::builtin(fl::DatasetKind::kFmnistLike, 42);
  const std::size_t samples = fast ? 250 : 600;
  std::vector<fl::Dataset> locals;
  for (game::OrgId i = 0; i < game.size(); ++i) {
    locals.emplace_back(concept_spec.with_sample_seed(43 + i), samples);
  }
  const fl::Dataset test_set(concept_spec.with_sample_seed(999), fast ? 200 : 300);
  fl::ModelSpec model;
  model.kind = fl::ModelKind::kMlp;
  model.channels = concept_spec.channels;
  model.height = concept_spec.height;
  model.width = concept_spec.width;
  model.classes = concept_spec.classes;
  model.seed = 42;

  // --- 3. Asynchronous training with mechanism-derived latencies. ---
  std::vector<fl::AsyncClient> async_clients;
  std::printf("async latencies (T1 + T2(d*, f*) + T3):\n");
  for (game::OrgId i = 0; i < game.size(); ++i) {
    fl::AsyncClient client;
    client.client = fl::FedClient{&locals[i], profile[i].data_fraction, 100 + i};
    client.round_latency =
        game.org(i).round_time(profile[i].data_fraction, game.frequency(i, profile[i]));
    async_clients.push_back(client);
    std::printf("  %-7s d*=%.3f f*=%.1f GHz -> %.1f s/round\n", game.org(i).name.c_str(),
                profile[i].data_fraction, game.frequency(i, profile[i]) / 1e9,
                client.round_latency);
  }
  fl::FedAsyncOptions async_options;
  async_options.horizon = fast ? 120.0 : 400.0;
  async_options.eval_every = 0;
  const auto async_result = fl::train_fedasync(model, async_clients, test_set, async_options);
  std::printf("\nasync training: %zu merges in %.0f simulated seconds, final accuracy %.3f\n",
              async_result.total_updates, async_options.horizon,
              async_result.final_accuracy);

  // --- 4. Synchronous FedAvg for comparison + personalization on top. ---
  std::vector<fl::FedClient> sync_clients;
  for (const auto& async_client : async_clients) sync_clients.push_back(async_client.client);
  fl::FedAvgOptions sync_options;
  sync_options.rounds = fast ? 4 : 10;
  sync_options.local_epochs = 2;
  const auto sync_result = fl::train_fedavg(model, sync_clients, test_set, sync_options);
  std::printf("sync  training: %zu rounds, final accuracy %.3f\n", sync_options.rounds,
              sync_result.final_accuracy);

  fl::PersonalizeOptions personalize_options;
  personalize_options.epochs = fast ? 1 : 3;
  const auto personalized =
      fl::personalize(model, sync_result, sync_clients, test_set, personalize_options);
  std::printf("\npersonalization (Sec. VII future work):\n");
  std::printf("  global model accuracy:            %.3f\n",
              personalized.global_model_accuracy);
  std::printf("  mean personalized LOCAL accuracy: %.3f\n",
              personalized.mean_local_accuracy);
  std::printf("  mean personalized test accuracy:  %.3f\n",
              personalized.mean_global_accuracy);
  std::printf("personalized models fit each organization's own data distribution while\n"
              "keeping (most of) the federated model's generalization.\n");
  return 0;
}
