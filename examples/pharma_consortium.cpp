// A MELLODDY-style scenario (the paper's motivating example): ten
// pharmaceutical companies collaboratively train a drug-discovery model while
// competing in overlapping therapeutic areas. Companies in the same area
// compete intensely (rho = 0.12); across areas the overlap is mild (0.02).
//
// The example runs the FULL TradeFL pipeline: equilibrium computation, FedAvg
// training with the equilibrium contributions, and smart-contract settlement
// on the private chain.
//
//   $ ./pharma_consortium [fast=1]
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "tradefl/report.h"
#include "tradefl/session.h"

int main(int argc, char** argv) {
  using namespace tradefl;
  std::vector<std::string> raw_args;
  for (int i = 1; i < argc; ++i) raw_args.emplace_back(argv[i]);
  const Config config = Config::from_args(raw_args).value_or(Config{});
  const bool fast = config.get_bool("fast", false);

  // --- Build the consortium. Two therapeutic areas, five companies each. ---
  Rng rng(7);
  std::vector<game::Organization> companies;
  const char* names[] = {"novira", "helixa", "genmark", "asterion", "biocel",
                         "kurapharm", "zelexa", "orphix", "medanta", "synvex"};
  for (std::size_t i = 0; i < 10; ++i) {
    game::Organization company;
    company.name = names[i];
    company.data_size_bits = rng.uniform(15e9, 25e9);   // compound-assay archives
    company.sample_count = static_cast<std::size_t>(rng.uniform_int(1000, 2000));
    company.profitability = rng.uniform(500.0, 2500.0);  // market value per model point
    company.cycles_per_bit = rng.uniform(8.0, 12.0);
    const double f_max = rng.uniform(3e9, 5e9);
    company.freq_levels = {1.5e9, (1.5e9 + f_max) / 2.0, f_max};
    company.download_time = rng.uniform(1.0, 3.0);
    company.upload_time = rng.uniform(1.0, 3.0);
    companies.push_back(std::move(company));
  }

  // Competition: companies 0-4 work on oncology, 5-9 on immunology.
  game::CompetitionMatrix rho(10);
  for (game::OrgId i = 0; i < 10; ++i) {
    for (game::OrgId j = 0; j < 10; ++j) {
      if (i == j) continue;
      const bool same_area = (i < 5) == (j < 5);
      rho.set(i, j, same_area ? 0.12 : 0.02);
    }
  }

  game::GameParams params;  // calibrated defaults; gamma = gamma*
  auto accuracy = std::make_shared<const game::SqrtAccuracyModel>(params.epochs_g, params.a0);
  const game::CoopetitionGame consortium(companies, rho, accuracy, params);

  std::printf("consortium of %zu companies; rho guard scale %.3f (Theorem 1)\n\n",
              consortium.size(), consortium.rho_guard_scale());

  // --- Run the full pipeline. ---
  TradingSession session(consortium);
  SessionOptions options;
  options.scheme = core::Scheme::kDbr;
  options.run_training = true;
  options.model = fl::ModelKind::kMlp;            // assay-activity classifier stand-in
  options.dataset = fl::DatasetKind::kEurosatLike;  // well-separated synthetic task
  options.sample_scale = fast ? 0.1 : 0.25;
  options.fedavg.rounds = fast ? 3 : 8;
  const SessionResult result = session.run(options);

  std::printf("%s\n", describe_session(consortium, result).c_str());

  // Which area carries the training, and who compensates whom?
  double oncology_d = 0.0, immunology_d = 0.0, oncology_r = 0.0, immunology_r = 0.0;
  for (game::OrgId i = 0; i < consortium.size(); ++i) {
    const auto& strategy = result.mechanism.solution.profile[i];
    const double r = consortium.redistribution(i, result.mechanism.solution.profile);
    if (i < 5) {
      oncology_d += strategy.data_fraction;
      oncology_r += r;
    } else {
      immunology_d += strategy.data_fraction;
      immunology_r += r;
    }
  }
  std::printf("oncology:   Sum d = %.3f, net redistribution %+.2f\n", oncology_d, oncology_r);
  std::printf("immunology: Sum d = %.3f, net redistribution %+.2f\n", immunology_d,
              immunology_r);
  std::printf("\nintra-area competition is compensated through the contract; the \n"
              "settlement above is recorded immutably for arbitration.\n");
  return 0;
}
