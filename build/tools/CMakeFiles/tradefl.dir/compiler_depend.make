# Empty compiler generated dependencies file for tradefl.
# This may be replaced when dependencies are built.
