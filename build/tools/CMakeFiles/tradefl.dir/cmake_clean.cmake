file(REMOVE_RECURSE
  "CMakeFiles/tradefl.dir/tradefl.cpp.o"
  "CMakeFiles/tradefl.dir/tradefl.cpp.o.d"
  "tradefl"
  "tradefl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
