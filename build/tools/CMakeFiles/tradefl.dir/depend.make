# Empty dependencies file for tradefl.
# This may be replaced when dependencies are built.
