file(REMOVE_RECURSE
  "CMakeFiles/test_game.dir/game/test_accuracy_model.cpp.o"
  "CMakeFiles/test_game.dir/game/test_accuracy_model.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_competition.cpp.o"
  "CMakeFiles/test_game.dir/game/test_competition.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_feasibility.cpp.o"
  "CMakeFiles/test_game.dir/game/test_feasibility.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_game_config.cpp.o"
  "CMakeFiles/test_game.dir/game/test_game_config.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_game_payoff.cpp.o"
  "CMakeFiles/test_game.dir/game/test_game_payoff.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_org.cpp.o"
  "CMakeFiles/test_game.dir/game/test_org.cpp.o.d"
  "CMakeFiles/test_game.dir/game/test_potential.cpp.o"
  "CMakeFiles/test_game.dir/game/test_potential.cpp.o.d"
  "test_game"
  "test_game.pdb"
  "test_game[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
