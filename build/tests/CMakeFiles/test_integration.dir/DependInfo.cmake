
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_cli.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_cli.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_cli.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_session.cpp" "tests/CMakeFiles/test_integration.dir/integration/test_session.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradefl/CMakeFiles/tradefl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tradefl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/tradefl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/tradefl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
