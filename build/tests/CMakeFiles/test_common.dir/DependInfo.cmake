
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_config.cpp" "tests/CMakeFiles/test_common.dir/common/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_config.cpp.o.d"
  "/root/repo/tests/common/test_csv.cpp" "tests/CMakeFiles/test_common.dir/common/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_logging.cpp" "tests/CMakeFiles/test_common.dir/common/test_logging.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_logging.cpp.o.d"
  "/root/repo/tests/common/test_result.cpp" "tests/CMakeFiles/test_common.dir/common/test_result.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_result.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_string_util.cpp" "tests/CMakeFiles/test_common.dir/common/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_string_util.cpp.o.d"
  "/root/repo/tests/common/test_table.cpp" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradefl/CMakeFiles/tradefl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tradefl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/tradefl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/tradefl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
