
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl/test_data_accuracy.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_data_accuracy.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_data_accuracy.cpp.o.d"
  "/root/repo/tests/fl/test_dataset.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_dataset.cpp.o.d"
  "/root/repo/tests/fl/test_fedasync.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_fedasync.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_fedasync.cpp.o.d"
  "/root/repo/tests/fl/test_fedavg.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_fedavg.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_fedavg.cpp.o.d"
  "/root/repo/tests/fl/test_layers.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_layers.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_layers.cpp.o.d"
  "/root/repo/tests/fl/test_loss.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_loss.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_loss.cpp.o.d"
  "/root/repo/tests/fl/test_net.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_net.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_net.cpp.o.d"
  "/root/repo/tests/fl/test_noniid.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_noniid.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_noniid.cpp.o.d"
  "/root/repo/tests/fl/test_optimizer.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_optimizer.cpp.o.d"
  "/root/repo/tests/fl/test_personalize.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_personalize.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_personalize.cpp.o.d"
  "/root/repo/tests/fl/test_tensor.cpp" "tests/CMakeFiles/test_fl.dir/fl/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/test_fl.dir/fl/test_tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradefl/CMakeFiles/tradefl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tradefl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/tradefl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/tradefl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
