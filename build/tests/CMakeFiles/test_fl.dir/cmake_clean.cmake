file(REMOVE_RECURSE
  "CMakeFiles/test_fl.dir/fl/test_data_accuracy.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_data_accuracy.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_dataset.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_dataset.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_fedasync.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_fedasync.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_fedavg.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_fedavg.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_layers.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_layers.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_loss.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_loss.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_net.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_net.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_noniid.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_noniid.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_optimizer.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_optimizer.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_personalize.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_personalize.cpp.o.d"
  "CMakeFiles/test_fl.dir/fl/test_tensor.cpp.o"
  "CMakeFiles/test_fl.dir/fl/test_tensor.cpp.o.d"
  "test_fl"
  "test_fl.pdb"
  "test_fl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
