file(REMOVE_RECURSE
  "CMakeFiles/test_math.dir/math/test_barrier_solver.cpp.o"
  "CMakeFiles/test_math.dir/math/test_barrier_solver.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_grid.cpp.o"
  "CMakeFiles/test_math.dir/math/test_grid.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_matrix.cpp.o"
  "CMakeFiles/test_math.dir/math/test_matrix.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_scalar_opt.cpp.o"
  "CMakeFiles/test_math.dir/math/test_scalar_opt.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_vec.cpp.o"
  "CMakeFiles/test_math.dir/math/test_vec.cpp.o.d"
  "test_math"
  "test_math.pdb"
  "test_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
