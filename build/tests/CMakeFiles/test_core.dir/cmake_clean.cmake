file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_baselines.cpp.o"
  "CMakeFiles/test_core.dir/core/test_baselines.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_best_response.cpp.o"
  "CMakeFiles/test_core.dir/core/test_best_response.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dbr.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dbr.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_gamma_design.cpp.o"
  "CMakeFiles/test_core.dir/core/test_gamma_design.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_gbd.cpp.o"
  "CMakeFiles/test_core.dir/core/test_gbd.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_invariants_sweep.cpp.o"
  "CMakeFiles/test_core.dir/core/test_invariants_sweep.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mechanism.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mechanism.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
