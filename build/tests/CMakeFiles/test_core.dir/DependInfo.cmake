
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_baselines.cpp" "tests/CMakeFiles/test_core.dir/core/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_baselines.cpp.o.d"
  "/root/repo/tests/core/test_best_response.cpp" "tests/CMakeFiles/test_core.dir/core/test_best_response.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_best_response.cpp.o.d"
  "/root/repo/tests/core/test_dbr.cpp" "tests/CMakeFiles/test_core.dir/core/test_dbr.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dbr.cpp.o.d"
  "/root/repo/tests/core/test_gamma_design.cpp" "tests/CMakeFiles/test_core.dir/core/test_gamma_design.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_gamma_design.cpp.o.d"
  "/root/repo/tests/core/test_gbd.cpp" "tests/CMakeFiles/test_core.dir/core/test_gbd.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_gbd.cpp.o.d"
  "/root/repo/tests/core/test_invariants_sweep.cpp" "tests/CMakeFiles/test_core.dir/core/test_invariants_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_invariants_sweep.cpp.o.d"
  "/root/repo/tests/core/test_mechanism.cpp" "tests/CMakeFiles/test_core.dir/core/test_mechanism.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mechanism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradefl/CMakeFiles/tradefl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tradefl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/tradefl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/tradefl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
