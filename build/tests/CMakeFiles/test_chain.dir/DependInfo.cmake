
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chain/test_abi.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_abi.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_abi.cpp.o.d"
  "/root/repo/tests/chain/test_block.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_block.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_block.cpp.o.d"
  "/root/repo/tests/chain/test_blockchain.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_blockchain.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_blockchain.cpp.o.d"
  "/root/repo/tests/chain/test_bytes.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_bytes.cpp.o.d"
  "/root/repo/tests/chain/test_contract.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_contract.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_contract.cpp.o.d"
  "/root/repo/tests/chain/test_failure_injection.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_failure_injection.cpp.o.d"
  "/root/repo/tests/chain/test_fixed_point.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_fixed_point.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_fixed_point.cpp.o.d"
  "/root/repo/tests/chain/test_merkle_proof.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_merkle_proof.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_merkle_proof.cpp.o.d"
  "/root/repo/tests/chain/test_sha256.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_sha256.cpp.o.d"
  "/root/repo/tests/chain/test_web3.cpp" "tests/CMakeFiles/test_chain.dir/chain/test_web3.cpp.o" "gcc" "tests/CMakeFiles/test_chain.dir/chain/test_web3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradefl/CMakeFiles/tradefl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tradefl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/tradefl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/tradefl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
