file(REMOVE_RECURSE
  "CMakeFiles/test_chain.dir/chain/test_abi.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_abi.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_block.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_block.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_blockchain.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_blockchain.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_bytes.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_bytes.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_contract.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_contract.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_failure_injection.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_fixed_point.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_fixed_point.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_merkle_proof.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_merkle_proof.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_sha256.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_sha256.cpp.o.d"
  "CMakeFiles/test_chain.dir/chain/test_web3.cpp.o"
  "CMakeFiles/test_chain.dir/chain/test_web3.cpp.o.d"
  "test_chain"
  "test_chain.pdb"
  "test_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
