file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_noniid.dir/bench_ablation_noniid.cpp.o"
  "CMakeFiles/bench_ablation_noniid.dir/bench_ablation_noniid.cpp.o.d"
  "CMakeFiles/bench_ablation_noniid.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_noniid.dir/bench_common.cpp.o.d"
  "bench_ablation_noniid"
  "bench_ablation_noniid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_noniid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
