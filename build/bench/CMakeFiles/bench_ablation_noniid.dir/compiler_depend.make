# Empty compiler generated dependencies file for bench_ablation_noniid.
# This may be replaced when dependencies are built.
