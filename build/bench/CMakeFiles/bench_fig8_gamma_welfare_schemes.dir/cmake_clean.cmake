file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gamma_welfare_schemes.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig8_gamma_welfare_schemes.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig8_gamma_welfare_schemes.dir/bench_fig8_gamma_welfare_schemes.cpp.o"
  "CMakeFiles/bench_fig8_gamma_welfare_schemes.dir/bench_fig8_gamma_welfare_schemes.cpp.o.d"
  "bench_fig8_gamma_welfare_schemes"
  "bench_fig8_gamma_welfare_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gamma_welfare_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
