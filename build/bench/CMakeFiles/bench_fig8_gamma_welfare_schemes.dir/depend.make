# Empty dependencies file for bench_fig8_gamma_welfare_schemes.
# This may be replaced when dependencies are built.
