# Empty compiler generated dependencies file for bench_fig11_mu_we_welfare.
# This may be replaced when dependencies are built.
