file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mu_we_welfare.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig11_mu_we_welfare.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig11_mu_we_welfare.dir/bench_fig11_mu_we_welfare.cpp.o"
  "CMakeFiles/bench_fig11_mu_we_welfare.dir/bench_fig11_mu_we_welfare.cpp.o.d"
  "bench_fig11_mu_we_welfare"
  "bench_fig11_mu_we_welfare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mu_we_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
