file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gamma_welfare_dbr.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig7_gamma_welfare_dbr.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig7_gamma_welfare_dbr.dir/bench_fig7_gamma_welfare_dbr.cpp.o"
  "CMakeFiles/bench_fig7_gamma_welfare_dbr.dir/bench_fig7_gamma_welfare_dbr.cpp.o.d"
  "bench_fig7_gamma_welfare_dbr"
  "bench_fig7_gamma_welfare_dbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gamma_welfare_dbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
