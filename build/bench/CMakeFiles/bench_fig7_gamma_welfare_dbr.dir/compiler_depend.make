# Empty compiler generated dependencies file for bench_fig7_gamma_welfare_dbr.
# This may be replaced when dependencies are built.
