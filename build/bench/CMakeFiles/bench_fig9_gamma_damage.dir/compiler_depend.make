# Empty compiler generated dependencies file for bench_fig9_gamma_damage.
# This may be replaced when dependencies are built.
