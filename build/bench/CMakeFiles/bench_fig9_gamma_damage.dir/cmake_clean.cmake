file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gamma_damage.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig9_gamma_damage.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig9_gamma_damage.dir/bench_fig9_gamma_damage.cpp.o"
  "CMakeFiles/bench_fig9_gamma_damage.dir/bench_fig9_gamma_damage.cpp.o.d"
  "bench_fig9_gamma_damage"
  "bench_fig9_gamma_damage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gamma_damage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
