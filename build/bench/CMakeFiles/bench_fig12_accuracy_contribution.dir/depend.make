# Empty dependencies file for bench_fig12_accuracy_contribution.
# This may be replaced when dependencies are built.
