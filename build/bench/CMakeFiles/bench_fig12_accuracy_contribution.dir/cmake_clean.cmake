file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_accuracy_contribution.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig12_accuracy_contribution.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig12_accuracy_contribution.dir/bench_fig12_accuracy_contribution.cpp.o"
  "CMakeFiles/bench_fig12_accuracy_contribution.dir/bench_fig12_accuracy_contribution.cpp.o.d"
  "bench_fig12_accuracy_contribution"
  "bench_fig12_accuracy_contribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_accuracy_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
