# Empty dependencies file for bench_fig4_potential_dynamics.
# This may be replaced when dependencies are built.
