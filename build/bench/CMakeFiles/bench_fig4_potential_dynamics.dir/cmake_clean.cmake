file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_potential_dynamics.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig4_potential_dynamics.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig4_potential_dynamics.dir/bench_fig4_potential_dynamics.cpp.o"
  "CMakeFiles/bench_fig4_potential_dynamics.dir/bench_fig4_potential_dynamics.cpp.o.d"
  "bench_fig4_potential_dynamics"
  "bench_fig4_potential_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_potential_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
