file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_payoff_dynamics.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig5_payoff_dynamics.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig5_payoff_dynamics.dir/bench_fig5_payoff_dynamics.cpp.o"
  "CMakeFiles/bench_fig5_payoff_dynamics.dir/bench_fig5_payoff_dynamics.cpp.o.d"
  "bench_fig5_payoff_dynamics"
  "bench_fig5_payoff_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_payoff_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
