# Empty compiler generated dependencies file for bench_fig5_payoff_dynamics.
# This may be replaced when dependencies are built.
