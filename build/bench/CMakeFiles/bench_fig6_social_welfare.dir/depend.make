# Empty dependencies file for bench_fig6_social_welfare.
# This may be replaced when dependencies are built.
