file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_social_welfare.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig6_social_welfare.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig6_social_welfare.dir/bench_fig6_social_welfare.cpp.o"
  "CMakeFiles/bench_fig6_social_welfare.dir/bench_fig6_social_welfare.cpp.o.d"
  "bench_fig6_social_welfare"
  "bench_fig6_social_welfare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_social_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
