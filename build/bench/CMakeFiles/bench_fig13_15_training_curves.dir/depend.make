# Empty dependencies file for bench_fig13_15_training_curves.
# This may be replaced when dependencies are built.
