# Empty dependencies file for bench_fig10_gamma_mu_welfare.
# This may be replaced when dependencies are built.
