file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gamma_mu_welfare.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig10_gamma_mu_welfare.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig10_gamma_mu_welfare.dir/bench_fig10_gamma_mu_welfare.cpp.o"
  "CMakeFiles/bench_fig10_gamma_mu_welfare.dir/bench_fig10_gamma_mu_welfare.cpp.o.d"
  "bench_fig10_gamma_mu_welfare"
  "bench_fig10_gamma_mu_welfare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gamma_mu_welfare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
