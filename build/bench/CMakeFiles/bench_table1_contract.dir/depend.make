# Empty dependencies file for bench_table1_contract.
# This may be replaced when dependencies are built.
