file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_contract.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table1_contract.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table1_contract.dir/bench_table1_contract.cpp.o"
  "CMakeFiles/bench_table1_contract.dir/bench_table1_contract.cpp.o.d"
  "bench_table1_contract"
  "bench_table1_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
