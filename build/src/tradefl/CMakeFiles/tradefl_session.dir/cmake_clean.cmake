file(REMOVE_RECURSE
  "CMakeFiles/tradefl_session.dir/cli.cpp.o"
  "CMakeFiles/tradefl_session.dir/cli.cpp.o.d"
  "CMakeFiles/tradefl_session.dir/report.cpp.o"
  "CMakeFiles/tradefl_session.dir/report.cpp.o.d"
  "CMakeFiles/tradefl_session.dir/session.cpp.o"
  "CMakeFiles/tradefl_session.dir/session.cpp.o.d"
  "libtradefl_session.a"
  "libtradefl_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
