# Empty compiler generated dependencies file for tradefl_session.
# This may be replaced when dependencies are built.
