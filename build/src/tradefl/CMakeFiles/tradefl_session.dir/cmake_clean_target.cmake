file(REMOVE_RECURSE
  "libtradefl_session.a"
)
