
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/barrier_solver.cpp" "src/math/CMakeFiles/tradefl_math.dir/barrier_solver.cpp.o" "gcc" "src/math/CMakeFiles/tradefl_math.dir/barrier_solver.cpp.o.d"
  "/root/repo/src/math/grid.cpp" "src/math/CMakeFiles/tradefl_math.dir/grid.cpp.o" "gcc" "src/math/CMakeFiles/tradefl_math.dir/grid.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/tradefl_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/tradefl_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/scalar_opt.cpp" "src/math/CMakeFiles/tradefl_math.dir/scalar_opt.cpp.o" "gcc" "src/math/CMakeFiles/tradefl_math.dir/scalar_opt.cpp.o.d"
  "/root/repo/src/math/vec.cpp" "src/math/CMakeFiles/tradefl_math.dir/vec.cpp.o" "gcc" "src/math/CMakeFiles/tradefl_math.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
