file(REMOVE_RECURSE
  "CMakeFiles/tradefl_math.dir/barrier_solver.cpp.o"
  "CMakeFiles/tradefl_math.dir/barrier_solver.cpp.o.d"
  "CMakeFiles/tradefl_math.dir/grid.cpp.o"
  "CMakeFiles/tradefl_math.dir/grid.cpp.o.d"
  "CMakeFiles/tradefl_math.dir/matrix.cpp.o"
  "CMakeFiles/tradefl_math.dir/matrix.cpp.o.d"
  "CMakeFiles/tradefl_math.dir/scalar_opt.cpp.o"
  "CMakeFiles/tradefl_math.dir/scalar_opt.cpp.o.d"
  "CMakeFiles/tradefl_math.dir/vec.cpp.o"
  "CMakeFiles/tradefl_math.dir/vec.cpp.o.d"
  "libtradefl_math.a"
  "libtradefl_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
