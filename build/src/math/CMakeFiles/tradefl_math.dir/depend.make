# Empty dependencies file for tradefl_math.
# This may be replaced when dependencies are built.
