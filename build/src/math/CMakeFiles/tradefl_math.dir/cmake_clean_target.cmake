file(REMOVE_RECURSE
  "libtradefl_math.a"
)
