file(REMOVE_RECURSE
  "CMakeFiles/tradefl_fl.dir/data_accuracy.cpp.o"
  "CMakeFiles/tradefl_fl.dir/data_accuracy.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/dataset.cpp.o"
  "CMakeFiles/tradefl_fl.dir/dataset.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/fedasync.cpp.o"
  "CMakeFiles/tradefl_fl.dir/fedasync.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/fedavg.cpp.o"
  "CMakeFiles/tradefl_fl.dir/fedavg.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/layers.cpp.o"
  "CMakeFiles/tradefl_fl.dir/layers.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/loss.cpp.o"
  "CMakeFiles/tradefl_fl.dir/loss.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/model_zoo.cpp.o"
  "CMakeFiles/tradefl_fl.dir/model_zoo.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/net.cpp.o"
  "CMakeFiles/tradefl_fl.dir/net.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/optimizer.cpp.o"
  "CMakeFiles/tradefl_fl.dir/optimizer.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/personalize.cpp.o"
  "CMakeFiles/tradefl_fl.dir/personalize.cpp.o.d"
  "CMakeFiles/tradefl_fl.dir/tensor.cpp.o"
  "CMakeFiles/tradefl_fl.dir/tensor.cpp.o.d"
  "libtradefl_fl.a"
  "libtradefl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
