file(REMOVE_RECURSE
  "libtradefl_fl.a"
)
