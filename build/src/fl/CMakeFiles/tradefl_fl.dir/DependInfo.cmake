
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/data_accuracy.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/data_accuracy.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/data_accuracy.cpp.o.d"
  "/root/repo/src/fl/dataset.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/dataset.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/dataset.cpp.o.d"
  "/root/repo/src/fl/fedasync.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/fedasync.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/fedasync.cpp.o.d"
  "/root/repo/src/fl/fedavg.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/fedavg.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/fedavg.cpp.o.d"
  "/root/repo/src/fl/layers.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/layers.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/layers.cpp.o.d"
  "/root/repo/src/fl/loss.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/loss.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/loss.cpp.o.d"
  "/root/repo/src/fl/model_zoo.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/model_zoo.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/model_zoo.cpp.o.d"
  "/root/repo/src/fl/net.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/net.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/net.cpp.o.d"
  "/root/repo/src/fl/optimizer.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/optimizer.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/optimizer.cpp.o.d"
  "/root/repo/src/fl/personalize.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/personalize.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/personalize.cpp.o.d"
  "/root/repo/src/fl/tensor.cpp" "src/fl/CMakeFiles/tradefl_fl.dir/tensor.cpp.o" "gcc" "src/fl/CMakeFiles/tradefl_fl.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
