# Empty compiler generated dependencies file for tradefl_fl.
# This may be replaced when dependencies are built.
