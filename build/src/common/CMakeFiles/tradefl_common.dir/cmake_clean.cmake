file(REMOVE_RECURSE
  "CMakeFiles/tradefl_common.dir/config.cpp.o"
  "CMakeFiles/tradefl_common.dir/config.cpp.o.d"
  "CMakeFiles/tradefl_common.dir/csv.cpp.o"
  "CMakeFiles/tradefl_common.dir/csv.cpp.o.d"
  "CMakeFiles/tradefl_common.dir/logging.cpp.o"
  "CMakeFiles/tradefl_common.dir/logging.cpp.o.d"
  "CMakeFiles/tradefl_common.dir/rng.cpp.o"
  "CMakeFiles/tradefl_common.dir/rng.cpp.o.d"
  "CMakeFiles/tradefl_common.dir/stats.cpp.o"
  "CMakeFiles/tradefl_common.dir/stats.cpp.o.d"
  "CMakeFiles/tradefl_common.dir/string_util.cpp.o"
  "CMakeFiles/tradefl_common.dir/string_util.cpp.o.d"
  "CMakeFiles/tradefl_common.dir/table.cpp.o"
  "CMakeFiles/tradefl_common.dir/table.cpp.o.d"
  "libtradefl_common.a"
  "libtradefl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
