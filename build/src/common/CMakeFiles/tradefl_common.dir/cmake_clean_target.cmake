file(REMOVE_RECURSE
  "libtradefl_common.a"
)
