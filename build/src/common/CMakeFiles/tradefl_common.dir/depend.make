# Empty dependencies file for tradefl_common.
# This may be replaced when dependencies are built.
