file(REMOVE_RECURSE
  "CMakeFiles/tradefl_core.dir/baselines.cpp.o"
  "CMakeFiles/tradefl_core.dir/baselines.cpp.o.d"
  "CMakeFiles/tradefl_core.dir/best_response.cpp.o"
  "CMakeFiles/tradefl_core.dir/best_response.cpp.o.d"
  "CMakeFiles/tradefl_core.dir/cgbd.cpp.o"
  "CMakeFiles/tradefl_core.dir/cgbd.cpp.o.d"
  "CMakeFiles/tradefl_core.dir/dbr.cpp.o"
  "CMakeFiles/tradefl_core.dir/dbr.cpp.o.d"
  "CMakeFiles/tradefl_core.dir/gamma_design.cpp.o"
  "CMakeFiles/tradefl_core.dir/gamma_design.cpp.o.d"
  "CMakeFiles/tradefl_core.dir/gbd.cpp.o"
  "CMakeFiles/tradefl_core.dir/gbd.cpp.o.d"
  "CMakeFiles/tradefl_core.dir/mechanism.cpp.o"
  "CMakeFiles/tradefl_core.dir/mechanism.cpp.o.d"
  "libtradefl_core.a"
  "libtradefl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
