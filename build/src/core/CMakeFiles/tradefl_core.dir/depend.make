# Empty dependencies file for tradefl_core.
# This may be replaced when dependencies are built.
