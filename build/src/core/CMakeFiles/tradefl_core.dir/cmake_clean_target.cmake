file(REMOVE_RECURSE
  "libtradefl_core.a"
)
