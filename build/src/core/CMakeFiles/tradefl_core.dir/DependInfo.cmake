
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/tradefl_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/tradefl_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/best_response.cpp" "src/core/CMakeFiles/tradefl_core.dir/best_response.cpp.o" "gcc" "src/core/CMakeFiles/tradefl_core.dir/best_response.cpp.o.d"
  "/root/repo/src/core/cgbd.cpp" "src/core/CMakeFiles/tradefl_core.dir/cgbd.cpp.o" "gcc" "src/core/CMakeFiles/tradefl_core.dir/cgbd.cpp.o.d"
  "/root/repo/src/core/dbr.cpp" "src/core/CMakeFiles/tradefl_core.dir/dbr.cpp.o" "gcc" "src/core/CMakeFiles/tradefl_core.dir/dbr.cpp.o.d"
  "/root/repo/src/core/gamma_design.cpp" "src/core/CMakeFiles/tradefl_core.dir/gamma_design.cpp.o" "gcc" "src/core/CMakeFiles/tradefl_core.dir/gamma_design.cpp.o.d"
  "/root/repo/src/core/gbd.cpp" "src/core/CMakeFiles/tradefl_core.dir/gbd.cpp.o" "gcc" "src/core/CMakeFiles/tradefl_core.dir/gbd.cpp.o.d"
  "/root/repo/src/core/mechanism.cpp" "src/core/CMakeFiles/tradefl_core.dir/mechanism.cpp.o" "gcc" "src/core/CMakeFiles/tradefl_core.dir/mechanism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
