
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/accuracy_model.cpp" "src/game/CMakeFiles/tradefl_game.dir/accuracy_model.cpp.o" "gcc" "src/game/CMakeFiles/tradefl_game.dir/accuracy_model.cpp.o.d"
  "/root/repo/src/game/competition.cpp" "src/game/CMakeFiles/tradefl_game.dir/competition.cpp.o" "gcc" "src/game/CMakeFiles/tradefl_game.dir/competition.cpp.o.d"
  "/root/repo/src/game/game.cpp" "src/game/CMakeFiles/tradefl_game.dir/game.cpp.o" "gcc" "src/game/CMakeFiles/tradefl_game.dir/game.cpp.o.d"
  "/root/repo/src/game/game_factory.cpp" "src/game/CMakeFiles/tradefl_game.dir/game_factory.cpp.o" "gcc" "src/game/CMakeFiles/tradefl_game.dir/game_factory.cpp.o.d"
  "/root/repo/src/game/org.cpp" "src/game/CMakeFiles/tradefl_game.dir/org.cpp.o" "gcc" "src/game/CMakeFiles/tradefl_game.dir/org.cpp.o.d"
  "/root/repo/src/game/params.cpp" "src/game/CMakeFiles/tradefl_game.dir/params.cpp.o" "gcc" "src/game/CMakeFiles/tradefl_game.dir/params.cpp.o.d"
  "/root/repo/src/game/potential.cpp" "src/game/CMakeFiles/tradefl_game.dir/potential.cpp.o" "gcc" "src/game/CMakeFiles/tradefl_game.dir/potential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
