file(REMOVE_RECURSE
  "libtradefl_game.a"
)
