# Empty compiler generated dependencies file for tradefl_game.
# This may be replaced when dependencies are built.
