file(REMOVE_RECURSE
  "CMakeFiles/tradefl_game.dir/accuracy_model.cpp.o"
  "CMakeFiles/tradefl_game.dir/accuracy_model.cpp.o.d"
  "CMakeFiles/tradefl_game.dir/competition.cpp.o"
  "CMakeFiles/tradefl_game.dir/competition.cpp.o.d"
  "CMakeFiles/tradefl_game.dir/game.cpp.o"
  "CMakeFiles/tradefl_game.dir/game.cpp.o.d"
  "CMakeFiles/tradefl_game.dir/game_factory.cpp.o"
  "CMakeFiles/tradefl_game.dir/game_factory.cpp.o.d"
  "CMakeFiles/tradefl_game.dir/org.cpp.o"
  "CMakeFiles/tradefl_game.dir/org.cpp.o.d"
  "CMakeFiles/tradefl_game.dir/params.cpp.o"
  "CMakeFiles/tradefl_game.dir/params.cpp.o.d"
  "CMakeFiles/tradefl_game.dir/potential.cpp.o"
  "CMakeFiles/tradefl_game.dir/potential.cpp.o.d"
  "libtradefl_game.a"
  "libtradefl_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
