file(REMOVE_RECURSE
  "libtradefl_chain.a"
)
