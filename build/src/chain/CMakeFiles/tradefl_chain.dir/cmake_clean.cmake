file(REMOVE_RECURSE
  "CMakeFiles/tradefl_chain.dir/abi.cpp.o"
  "CMakeFiles/tradefl_chain.dir/abi.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/block.cpp.o"
  "CMakeFiles/tradefl_chain.dir/block.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/blockchain.cpp.o"
  "CMakeFiles/tradefl_chain.dir/blockchain.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/bytes.cpp.o"
  "CMakeFiles/tradefl_chain.dir/bytes.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/fixed_point.cpp.o"
  "CMakeFiles/tradefl_chain.dir/fixed_point.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/sha256.cpp.o"
  "CMakeFiles/tradefl_chain.dir/sha256.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/tradefl_contract.cpp.o"
  "CMakeFiles/tradefl_chain.dir/tradefl_contract.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/tx.cpp.o"
  "CMakeFiles/tradefl_chain.dir/tx.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/vm.cpp.o"
  "CMakeFiles/tradefl_chain.dir/vm.cpp.o.d"
  "CMakeFiles/tradefl_chain.dir/web3.cpp.o"
  "CMakeFiles/tradefl_chain.dir/web3.cpp.o.d"
  "libtradefl_chain.a"
  "libtradefl_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradefl_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
