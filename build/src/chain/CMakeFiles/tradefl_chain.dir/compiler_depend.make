# Empty compiler generated dependencies file for tradefl_chain.
# This may be replaced when dependencies are built.
