
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/abi.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/abi.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/abi.cpp.o.d"
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blockchain.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/blockchain.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/blockchain.cpp.o.d"
  "/root/repo/src/chain/bytes.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/bytes.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/bytes.cpp.o.d"
  "/root/repo/src/chain/fixed_point.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/fixed_point.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/fixed_point.cpp.o.d"
  "/root/repo/src/chain/sha256.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/sha256.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/sha256.cpp.o.d"
  "/root/repo/src/chain/tradefl_contract.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/tradefl_contract.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/tradefl_contract.cpp.o.d"
  "/root/repo/src/chain/tx.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/tx.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/tx.cpp.o.d"
  "/root/repo/src/chain/vm.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/vm.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/vm.cpp.o.d"
  "/root/repo/src/chain/web3.cpp" "src/chain/CMakeFiles/tradefl_chain.dir/web3.cpp.o" "gcc" "src/chain/CMakeFiles/tradefl_chain.dir/web3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
