
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/async_personalization.cpp" "examples/CMakeFiles/async_personalization.dir/async_personalization.cpp.o" "gcc" "examples/CMakeFiles/async_personalization.dir/async_personalization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradefl/CMakeFiles/tradefl_session.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tradefl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/tradefl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/tradefl_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/tradefl_game.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/tradefl_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tradefl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
