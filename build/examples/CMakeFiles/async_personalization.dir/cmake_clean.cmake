file(REMOVE_RECURSE
  "CMakeFiles/async_personalization.dir/async_personalization.cpp.o"
  "CMakeFiles/async_personalization.dir/async_personalization.cpp.o.d"
  "async_personalization"
  "async_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
