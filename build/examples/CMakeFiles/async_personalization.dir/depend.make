# Empty dependencies file for async_personalization.
# This may be replaced when dependencies are built.
