file(REMOVE_RECURSE
  "CMakeFiles/gamma_tuning.dir/gamma_tuning.cpp.o"
  "CMakeFiles/gamma_tuning.dir/gamma_tuning.cpp.o.d"
  "gamma_tuning"
  "gamma_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
