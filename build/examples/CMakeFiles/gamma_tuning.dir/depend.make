# Empty dependencies file for gamma_tuning.
# This may be replaced when dependencies are built.
