# Empty compiler generated dependencies file for pharma_consortium.
# This may be replaced when dependencies are built.
