file(REMOVE_RECURSE
  "CMakeFiles/pharma_consortium.dir/pharma_consortium.cpp.o"
  "CMakeFiles/pharma_consortium.dir/pharma_consortium.cpp.o.d"
  "pharma_consortium"
  "pharma_consortium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pharma_consortium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
