file(REMOVE_RECURSE
  "CMakeFiles/federated_training.dir/federated_training.cpp.o"
  "CMakeFiles/federated_training.dir/federated_training.cpp.o.d"
  "federated_training"
  "federated_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
