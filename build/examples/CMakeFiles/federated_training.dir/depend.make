# Empty dependencies file for federated_training.
# This may be replaced when dependencies are built.
