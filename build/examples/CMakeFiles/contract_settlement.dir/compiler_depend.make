# Empty compiler generated dependencies file for contract_settlement.
# This may be replaced when dependencies are built.
