file(REMOVE_RECURSE
  "CMakeFiles/contract_settlement.dir/contract_settlement.cpp.o"
  "CMakeFiles/contract_settlement.dir/contract_settlement.cpp.o.d"
  "contract_settlement"
  "contract_settlement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_settlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
