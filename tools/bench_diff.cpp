#include "bench_diff.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tfl_benchdiff {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

// ---- parser ----

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    JsonValue value;
    if (!parse_value(value)) {
      result.error = std::to_string(pos_) + ": " + error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = std::to_string(pos_) + ": trailing garbage after JSON value";
      return result;
    }
    result.ok = true;
    result.value = std::move(value);
    return result;
  }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char expected) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.text);
    }
    if (c == 't' || c == 'f') return parse_literal(out, c == 't' ? "true" : "false");
    if (c == 'n') return parse_literal(out, "null");
    return parse_number(out);
  }

  bool parse_literal(JsonValue& out, const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return fail("bad literal");
    pos_ += word.size();
    if (word == "null") {
      out.kind = JsonValue::Kind::kNull;
    } else {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = word == "true";
    }
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a JSON value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number '" + token + "'");
    out.kind = JsonValue::Kind::kNumber;
    out.number = parsed;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return fail(std::string("unsupported escape \\") + escape);
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string last_segment(const std::string& key) {
  const std::size_t dot = key.rfind('.');
  return dot == std::string::npos ? key : key.substr(dot + 1);
}

std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void flatten_into(const JsonValue& value, const std::string& prefix,
                  std::vector<std::pair<std::string, double>>& out) {
  if (value.kind == JsonValue::Kind::kNumber) {
    out.emplace_back(prefix, value.number);
    return;
  }
  if (value.kind == JsonValue::Kind::kObject) {
    for (const auto& [key, member] : value.members) {
      flatten_into(member, prefix.empty() ? key : prefix + "." + key, out);
    }
  }
  // Strings/bools/arrays carry no regression-checkable numbers; skipped.
}

}  // namespace

JsonParseResult parse_json(const std::string& text) { return Parser(text).run(); }

// ---- diff ----

Direction classify_metric(const std::string& key) {
  const std::string leaf = last_segment(key);
  if (ends_with(leaf, "_per_sec")) return Direction::kHigherBetter;
  if (leaf == "count" || leaf == "operations" || leaf == "schema") return Direction::kExact;
  if (leaf == "max" || leaf == "p99") return Direction::kInformational;
  return Direction::kLowerBetter;
}

std::vector<std::pair<std::string, double>> flatten_metrics(const JsonValue& value) {
  std::vector<std::pair<std::string, double>> flat;
  flatten_into(value, "", flat);
  return flat;
}

const JsonValue* manifest_metrics(const JsonValue& manifest) {
  const JsonValue* metrics = manifest.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kObject) return nullptr;
  return metrics;
}

DiffReport diff_manifests(const JsonValue& baseline, const JsonValue& candidate,
                          const DiffOptions& options) {
  DiffReport report;
  const JsonValue* old_metrics = manifest_metrics(baseline);
  const JsonValue* new_metrics = manifest_metrics(candidate);
  if (old_metrics == nullptr || new_metrics == nullptr) return report;  // caller validated

  const auto old_flat = flatten_metrics(*old_metrics);
  const auto new_flat = flatten_metrics(*new_metrics);
  const auto lookup = [&new_flat](const std::string& key) -> const double* {
    for (const auto& [name, value] : new_flat) {
      if (name == key) return &value;
    }
    return nullptr;
  };

  for (const auto& [key, old_value] : old_flat) {
    const double* new_value = lookup(key);
    if (new_value == nullptr) {
      report.missing_keys.push_back(key);
      continue;
    }
    MetricDelta delta;
    delta.key = key;
    delta.old_value = old_value;
    delta.new_value = *new_value;
    delta.direction = classify_metric(key);
    delta.relative = old_value != 0.0 ? (*new_value - old_value) / old_value
                     : (*new_value == 0.0 ? 0.0 : (*new_value > 0.0 ? 1e9 : -1e9));
    // Latency-flavored leaves (percentiles, wall clock) get extra slack: the
    // interpolated estimates are noisier than aggregate throughput. p90 gets
    // double again — it sits closer to the scheduler-noise tail than p50.
    const std::string leaf = last_segment(key);
    const bool latency = leaf == "p50" || leaf == "p90" || ends_with(leaf, "seconds");
    double multiplier = latency ? options.latency_multiplier : 1.0;
    if (leaf == "p90") multiplier = options.latency_multiplier * 4.0;
    delta.allowed =
        delta.direction == Direction::kExact || delta.direction == Direction::kInformational
            ? 0.0
            : options.threshold * multiplier;
    switch (delta.direction) {
      case Direction::kExact: delta.regression = delta.new_value != delta.old_value; break;
      case Direction::kHigherBetter: delta.regression = delta.relative < -delta.allowed; break;
      case Direction::kLowerBetter: delta.regression = delta.relative > delta.allowed; break;
      case Direction::kInformational: delta.regression = false; break;
    }
    report.deltas.push_back(delta);
  }

  for (const auto& [key, value] : new_flat) {
    (void)value;
    bool known = false;
    for (const auto& [old_key, old_value] : old_flat) {
      (void)old_value;
      if (old_key == key) {
        known = true;
        break;
      }
    }
    if (!known) report.new_keys.push_back(key);
  }
  return report;
}

bool DiffReport::has_regression() const { return regression_count() > 0; }

std::size_t DiffReport::regression_count() const {
  std::size_t count = missing_keys.size();
  for (const MetricDelta& delta : deltas) {
    if (delta.regression) ++count;
  }
  return count;
}

std::string DiffReport::to_text() const {
  std::ostringstream out;
  for (const MetricDelta& delta : deltas) {
    out << (delta.regression ? "FAIL " : "  ok ") << delta.key << ": "
        << format_number(delta.old_value) << " -> " << format_number(delta.new_value) << " ("
        << format_number(delta.relative * 100.0) << "%, allowed +-"
        << format_number(delta.allowed * 100.0) << "%)\n";
  }
  for (const std::string& key : missing_keys) {
    out << "FAIL " << key << ": present in baseline, missing from candidate\n";
  }
  for (const std::string& key : new_keys) {
    out << " new " << key << ": not in baseline (informational)\n";
  }
  out << (has_regression() ? "result: " + std::to_string(regression_count()) + " regression(s)\n"
                           : "result: no regressions\n");
  return out.str();
}

std::string DiffReport::to_json() const {
  std::ostringstream out;
  out << "{\"regressions\": " << regression_count() << ", \"metrics\": [";
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const MetricDelta& delta = deltas[i];
    out << (i == 0 ? "" : ", ") << "{\"key\": \"" << delta.key
        << "\", \"old\": " << format_number(delta.old_value)
        << ", \"new\": " << format_number(delta.new_value)
        << ", \"relative\": " << format_number(delta.relative)
        << ", \"allowed\": " << format_number(delta.allowed)
        << ", \"regression\": " << (delta.regression ? "true" : "false") << "}";
  }
  out << "], \"missing\": [";
  for (std::size_t i = 0; i < missing_keys.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << missing_keys[i] << "\"";
  }
  out << "], \"new\": [";
  for (std::size_t i = 0; i < new_keys.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << new_keys[i] << "\"";
  }
  out << "]}\n";
  return out.str();
}

}  // namespace tfl_benchdiff
