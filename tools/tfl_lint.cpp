// tfl-lint: repo-specific static checker for the TradeFL tree.
//
// Scans src/ and tests/ for patterns that are banned in this codebase because
// they break determinism, consensus, or numeric-safety guarantees:
//
//   raw-new-delete    raw `new` / `delete` (ownership must go through
//                     containers or smart pointers)
//   banned-random     `rand()` / `srand()` / `std::default_random_engine`
//                     (experiments must be reproducible via common/rng)
//   unordered-in-chain
//                     `std::unordered_map` / `std::unordered_set` anywhere in
//                     src/chain/ (iteration order is implementation-defined,
//                     so anything feeding block hashes would fork consensus).
//                     blockchain.h carries the one audited exception: the
//                     receipt hash->index cache, which is find-only and never
//                     iterated or serialized (tfl-analyze's unordered-hash-iter
//                     rule guards that invariant)
//   float-equality    `==` / `!=` against a floating-point literal in
//                     src/game/ and src/core/ (incentive and convergence
//                     checks must use explicit tolerances)
//   missing-override  a `virtual`-declared member function (other than a
//                     destructor) inside a class that has a base clause and
//                     no `override`/`final` on the declaration
//   raw-steady-clock  `std::chrono::steady_clock` outside src/obs/ and
//                     src/common/stopwatch.h (timing must flow through
//                     tradefl::Stopwatch or the obs layer so instrumentation
//                     stays consistent)
//   raw-thread        `std::thread` / `std::jthread` / `std::async` outside
//                     src/common/parallel.{h,cpp} (all fan-out must go through
//                     tradefl::ThreadPool so chunk grids, reduction order, and
//                     shutdown stay deterministic and centralized)
//   include-layering  `#include "module/..."` edges that violate the layer
//                     graph (common < obs < math < game < {core, fl}; chain
//                     sits on common+obs only; tradefl/ may include everything)
//   ad-hoc-retry      a `for`/`while` loop wrapped around `->call(` outside
//                     src/chain/web3.cpp (hand-rolled retries bypass
//                     RetryPolicy's deterministic backoff, jitter seeding, and
//                     retry counters — route through call_with_retry)
//   ad-hoc-persistence
//                     `std::ofstream` / `fopen` in src/ outside the audited
//                     writers (common/snapshot.cpp, common/csv.cpp,
//                     chain/blockchain.cpp, tradefl/report.cpp) — durable
//                     state must tear-proof through the snapshot layer or a
//                     checked writer, never a stray stream
//   signal-handler-safety
//                     the body of any function registered through
//                     install_signal_handler (src/tradefl/server.h) may only
//                     do async-signal-safe work — in this codebase, writes to
//                     volatile std::sig_atomic_t flags. Allocation, iostreams,
//                     stdio, locks, and throws are flagged: a signal can land
//                     inside the very runtime code they re-enter (the
//                     allocator, the stream lock), which is UB or deadlock.
//                     Handler names are collected across the whole scanned
//                     tree, so registering in one file and defining in another
//                     does not dodge the audit
//
// The matcher works on comment- and string-stripped text, so banned words in
// comments or log messages do not trip it. Justified exceptions live in
// tools/tfl_lint_allow.txt as `<rule-id> <path-suffix>` lines.
//
// Usage:
//   tfl-lint [--allow FILE] [--list-rules] PATH...   # scan directories/files
//   tfl-lint --self-test                             # run embedded fixtures
//
// Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage error.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_common.h"

namespace {

namespace fs = std::filesystem;

using tfl_tools::AllowEntry;
using tfl_tools::Finding;
using tfl_tools::allowed;
using tfl_tools::contains_token;
using tfl_tools::is_ident_char;
using tfl_tools::normalize_path;
using tfl_tools::path_ends_with;
using tfl_tools::path_in;
using tfl_tools::scrub_source;
using tfl_tools::split_lines;

// ---------------------------------------------------------------------------
// Rules. Each rule receives the normalized path, the raw and scrubbed lines.
// ---------------------------------------------------------------------------

/// Module name for layering purposes: "math" for src/math/..., "" otherwise.
std::string module_of(const std::string& path) {
  const std::size_t at = path.find("src/");
  if (at == std::string::npos) return "";
  const std::size_t start = at + 4;
  const std::size_t slash = path.find('/', start);
  if (slash == std::string::npos) return "";
  return path.substr(start, slash - start);
}

void check_raw_new_delete(const std::string& path, const std::vector<std::string>& lines,
                          std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::size_t at = 0;
    if (contains_token(line, "new", &at)) {
      // Skip `operator new` and require an allocation-looking right side.
      const bool is_operator = line.rfind("operator", at) != std::string::npos &&
                               line.find("operator") + 8 >= at;
      std::size_t after = at + 3;
      while (after < line.size() && line[after] == ' ') ++after;
      const bool allocates = after < line.size() &&
                             (is_ident_char(line[after]) || line[after] == '(');
      if (!is_operator && allocates && after > at + 3) {
        findings.push_back({path, i + 1, "raw-new-delete",
                            "raw `new` — use std::make_unique/containers instead"});
      }
    }
    if (contains_token(line, "delete", &at)) {
      // `= delete` (deleted functions) is fine; `delete expr` / `delete[]` is not.
      std::size_t before = at;
      while (before > 0 && line[before - 1] == ' ') --before;
      const bool deleted_fn = before > 0 && line[before - 1] == '=';
      std::size_t after = at + 6;
      while (after < line.size() && line[after] == ' ') ++after;
      const bool has_operand = after < line.size() && line[after] != ';' && line[after] != ',' &&
                               line[after] != ')';
      if (!deleted_fn && has_operand) {
        findings.push_back({path, i + 1, "raw-new-delete",
                            "raw `delete` — ownership must live in RAII types"});
      }
    }
  }
}

void check_banned_random(const std::string& path, const std::vector<std::string>& lines,
                         std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    std::size_t at = 0;
    if ((contains_token(line, "rand", &at) || contains_token(line, "srand", &at)) &&
        line.find('(', at) != std::string::npos) {
      findings.push_back({path, i + 1, "banned-random",
                          "C `rand()`/`srand()` — use tradefl::Rng for reproducibility"});
    }
    if (contains_token(line, "default_random_engine")) {
      findings.push_back({path, i + 1, "banned-random",
                          "std::default_random_engine is implementation-defined — "
                          "use tradefl::Rng"});
    }
  }
}

void check_unordered_in_chain(const std::string& path, const std::vector<std::string>& lines,
                              std::vector<Finding>& findings) {
  if (!path_in(path, "src/chain/")) return;
  // Audited exception: blockchain.h's receipt hash->index cache is a derived,
  // find-only lookup structure — rebuilt from the ordered receipts_ vector on
  // restore/replay, never iterated, never serialized, so its bucket order can
  // never reach a block hash. tfl-analyze's unordered-hash-iter rule enforces
  // the never-iterated-into-hashes invariant tree-wide.
  if (path_ends_with(path, "src/chain/blockchain.h")) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (contains_token(lines[i], "unordered_map") || contains_token(lines[i], "unordered_set")) {
      findings.push_back({path, i + 1, "unordered-in-chain",
                          "unordered container in consensus-critical chain code — "
                          "iteration order would fork block hashes; use std::map/std::set"});
    }
  }
}

/// True when line[pos..] (or ..pos] backwards) holds a floating-point literal.
bool float_literal_at(const std::string& line, std::size_t pos, bool forward) {
  if (forward) {
    std::size_t i = pos;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && (line[i] == '+' || line[i] == '-')) ++i;
    std::size_t digits = 0;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
      ++i;
      ++digits;
    }
    if (i < line.size() && line[i] == '.') return true;           // 1.0, 0.5
    if (digits > 0 && i < line.size() &&
        (line[i] == 'e' || line[i] == 'E' || line[i] == 'f')) {
      return true;  // 1e-9, 2f
    }
    return false;
  }
  std::size_t i = pos;
  while (i > 0 && line[i - 1] == ' ') --i;
  if (i == 0) return false;
  if (line[i - 1] == 'f' && i >= 2) --i;  // 1.0f
  std::size_t digits = 0;
  while (i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) != 0) {
    --i;
    ++digits;
  }
  if (digits == 0) return false;
  if (i > 0 && line[i - 1] == '.') return true;                   // ...1.5 ==
  if (i > 0 && (line[i - 1] == 'e' || line[i - 1] == 'E' || line[i - 1] == '-')) {
    // Walk through an exponent like 1e-9: keep scanning left of `e`.
    std::size_t j = i - 1;
    if (line[j] == '-' && j > 0 && (line[j - 1] == 'e' || line[j - 1] == 'E')) --j;
    if ((line[j] == 'e' || line[j] == 'E') && j > 0) {
      std::size_t k = j;
      while (k > 0 && std::isdigit(static_cast<unsigned char>(line[k - 1])) != 0) --k;
      if (k < j && k > 0 && line[k - 1] == '.') return true;
    }
  }
  return false;
}

void check_float_equality(const std::string& path, const std::vector<std::string>& lines,
                          std::vector<Finding>& findings) {
  if (!path_in(path, "src/game/") && !path_in(path, "src/core/")) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (std::size_t at = 0; at + 1 < line.size(); ++at) {
      if ((line[at] == '=' || line[at] == '!') && line[at + 1] == '=') {
        if (at + 2 < line.size() && line[at + 2] == '=') continue;  // ===? never, but safe
        if (at > 0 && (line[at - 1] == '=' || line[at - 1] == '!' || line[at - 1] == '<' ||
                       line[at - 1] == '>')) {
          continue;
        }
        const bool lhs = float_literal_at(line, at, /*forward=*/false);
        const bool rhs = float_literal_at(line, at + 2, /*forward=*/true);
        if (lhs || rhs) {
          findings.push_back({path, i + 1, "float-equality",
                              "exact floating-point comparison — use an explicit tolerance"});
        }
      }
    }
  }
}

void check_raw_steady_clock(const std::string& path, const std::vector<std::string>& lines,
                            std::vector<Finding>& findings) {
  // The obs layer and the Stopwatch wrapper are the only sanctioned clock
  // readers; everything else must time through them so instrumented and
  // un-instrumented builds agree on where time is measured.
  if (path_in(path, "src/obs/") || path_ends_with(path, "src/common/stopwatch.h")) return;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (contains_token(lines[i], "steady_clock")) {
      findings.push_back({path, i + 1, "raw-steady-clock",
                          "raw std::chrono::steady_clock — use tradefl::Stopwatch or "
                          "obs::trace_now_us() instead"});
    }
  }
}

void check_raw_thread(const std::string& path, const std::vector<std::string>& lines,
                      std::vector<Finding>& findings) {
  // The parallel execution layer is the only sanctioned owner of raw threads;
  // everything else fans out through tradefl::ThreadPool / parallel_for so
  // chunk grids (and therefore float rounding), reduction order, and shutdown
  // stay in one audited place.
  if (path_ends_with(path, "src/common/parallel.h") ||
      path_ends_with(path, "src/common/parallel.cpp")) {
    return;
  }
  static const std::vector<std::string> kBanned = {"std::thread", "std::jthread", "std::async"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    for (const std::string& word : kBanned) {
      std::size_t from = 0;
      while (true) {
        const std::size_t at = line.find(word, from);
        if (at == std::string::npos) break;
        from = at + 1;
        // Whole-token match only: `std::this_thread` never contains a banned
        // spelling, but guard both edges anyway (e.g. a hypothetical
        // `mystd::thread` or `std::thready` must not fire).
        const bool left_ok = at == 0 || !is_ident_char(line[at - 1]);
        const std::size_t end = at + word.size();
        const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
        if (left_ok && right_ok) {
          findings.push_back({path, i + 1, "raw-thread",
                              "raw `" + word + "` — fan out through "
                              "tradefl::ThreadPool (src/common/parallel.h) instead"});
          break;  // one finding per line per spelling is enough
        }
      }
    }
  }
}

void check_ad_hoc_retry(const std::string& path, const std::vector<std::string>& lines,
                        std::vector<Finding>& findings) {
  // Hand-rolled retry loops around chain calls fork behavior from RetryPolicy
  // (deterministic backoff, seeded jitter, retry/giveup counters, fault
  // accounting). Web3Client::call_with_retry is the one sanctioned loop.
  if (path_ends_with(path, "src/chain/web3.cpp")) return;
  std::vector<int> loop_depths;  // brace depth just inside each open loop body
  int depth = 0;
  int paren = 0;              // unbalanced `(` carried across lines
  bool pending_loop = false;  // saw for/while; its `{` (or braceless body) pending
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];

    std::size_t kw_at = 0;
    const bool opens_loop =
        contains_token(line, "for", &kw_at) || contains_token(line, "while", &kw_at);

    const std::size_t call_at = line.find("->call(");
    const bool in_loop = !loop_depths.empty() || pending_loop ||
                         (opens_loop && call_at != std::string::npos && call_at > kw_at);
    if (call_at != std::string::npos && in_loop) {
      findings.push_back({path, i + 1, "ad-hoc-retry",
                          "chain call inside a hand-rolled loop — use "
                          "Web3Client::call_with_retry (RetryPolicy) instead"});
    }

    if (opens_loop) pending_loop = true;
    for (char c : line) {
      if (c == '(') {
        ++paren;
      } else if (c == ')') {
        if (paren > 0) --paren;
      } else if (c == '{') {
        ++depth;
        if (pending_loop) {
          loop_depths.push_back(depth);
          pending_loop = false;
        }
      } else if (c == '}') {
        if (!loop_depths.empty() && loop_depths.back() == depth) loop_depths.pop_back();
        --depth;
      } else if (c == ';' && pending_loop && paren == 0) {
        // Braceless loop body ended (`;` inside a for header stays
        // paren-guarded and does not end the loop).
        pending_loop = false;
      }
    }
  }
}

void check_ad_hoc_persistence(const std::string& path, const std::vector<std::string>& lines,
                              std::vector<Finding>& findings) {
  // Durable state must flow through an audited writer: the snapshot layer
  // (atomic temp+rename, CRC, typed errors), the CSV writer, the chain WAL,
  // the checked report writer, or the run-ledger event log (typed io error on
  // open, append-only telemetry nothing resumes from). A stray ofstream/fopen
  // elsewhere in src/ is a crash-consistency hole — it can tear on kill and
  // resume from garbage.
  if (!path_in(path, "src/")) return;
  if (path_ends_with(path, "src/common/snapshot.cpp") ||
      path_ends_with(path, "src/common/csv.cpp") ||
      path_ends_with(path, "src/chain/blockchain.cpp") ||
      path_ends_with(path, "src/tradefl/report.cpp") ||
      path_ends_with(path, "src/obs/event_log.cpp") ||
      path_ends_with(path, "src/obs/event_log.h")) {
    return;
  }
  static const std::vector<std::string> kBanned = {"ofstream", "fopen"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const std::string& word : kBanned) {
      if (contains_token(lines[i], word)) {
        findings.push_back({path, i + 1, "ad-hoc-persistence",
                            "ad-hoc state persistence via `" + word +
                                "` — write through common/snapshot.h, the CSV "
                                "writer, or a checked report writer instead"});
        break;
      }
    }
  }
}

void check_missing_override(const std::string& path, const std::vector<std::string>& lines,
                            std::vector<Finding>& findings) {
  // Track class scopes and whether each has a base clause. One entry per open
  // class/struct; `depth` is the brace depth just inside the class body.
  struct ClassScope {
    int depth = 0;
    bool has_base = false;
  };
  std::vector<ClassScope> scopes;
  int depth = 0;
  bool pending_class = false;   // saw `class X ...` but not its `{` yet
  bool pending_base = false;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];

    std::size_t class_at = 0;
    const bool declares_class =
        (contains_token(line, "class", &class_at) || contains_token(line, "struct", &class_at)) &&
        !contains_token(line, "enum") && line.find(';') == std::string::npos;
    if (declares_class) {
      pending_class = true;
      pending_base = line.find(':', class_at) != std::string::npos;
    } else if (pending_class && !pending_base) {
      // Base clause may start on a continuation line before the `{`.
      pending_base = line.find(':') != std::string::npos && line.find("::") == std::string::npos;
    }

    std::size_t virt_at = 0;
    if (!scopes.empty() && scopes.back().has_base && !pending_class &&
        contains_token(line, "virtual", &virt_at) && line.find('~') == std::string::npos &&
        !contains_token(line, "override") && !contains_token(line, "final")) {
      findings.push_back({path, i + 1, "missing-override",
                          "virtual re-declaration in derived class without `override`"});
    }

    for (char c : line) {
      if (c == '{') {
        ++depth;
        if (pending_class) {
          scopes.push_back({depth, pending_base});
          pending_class = false;
          pending_base = false;
        }
      } else if (c == '}') {
        if (!scopes.empty() && scopes.back().depth == depth) scopes.pop_back();
        --depth;
      }
    }
  }
}

void check_include_layering(const std::string& path, const std::vector<std::string>& raw_lines,
                            std::vector<Finding>& findings) {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {"common"}},
      {"obs", {"obs", "common"}},
      {"math", {"math", "obs", "common"}},
      {"game", {"game", "math", "obs", "common"}},
      {"core", {"core", "game", "math", "obs", "common"}},
      {"fl", {"fl", "game", "obs", "common"}},
      {"chain", {"chain", "obs", "common"}},
      {"tradefl", {"tradefl", "core", "game", "fl", "chain", "math", "obs", "common"}},
  };
  const std::string module = module_of(path);
  if (module.empty()) return;
  const auto allowed = kAllowed.find(module);
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    std::size_t at = line.find("#include \"");
    if (at == std::string::npos) continue;
    const std::size_t start = at + 10;
    const std::size_t slash = line.find('/', start);
    const std::size_t quote = line.find('"', start);
    if (slash == std::string::npos || quote == std::string::npos || slash > quote) continue;
    const std::string target = line.substr(start, slash - start);
    if (kAllowed.find(target) == kAllowed.end()) continue;  // not a module include
    if (allowed == kAllowed.end() || allowed->second.count(target) == 0) {
      findings.push_back({path, i + 1, "include-layering",
                          "src/" + module + "/ must not include src/" + target +
                              "/ (layer graph: common < obs < math < game < {core, fl}; "
                              "chain < obs < common)"});
    }
  }
}

/// Collects the names of functions registered as signal handlers: the second
/// argument of every `install_signal_handler(...)` call on these (scrubbed)
/// lines, stripped of `&` and namespace qualification. The shim's own
/// signature (`void install_signal_handler(...)`) is not a registration.
void collect_signal_handlers(const std::vector<std::string>& lines,
                             std::set<std::string>& handlers) {
  static const std::string kCall = "install_signal_handler(";
  for (const std::string& line : lines) {
    std::size_t at = line.find(kCall);
    while (at != std::string::npos) {
      std::size_t before = at;
      while (before > 0 && line[before - 1] == ' ') --before;
      const bool own_signature =
          before >= 4 && line.compare(before - 4, 4, "void") == 0;
      const std::size_t comma = line.find(',', at + kCall.size());
      if (!own_signature && comma != std::string::npos) {
        std::size_t start = comma + 1;
        while (start < line.size() && (line[start] == ' ' || line[start] == '&')) ++start;
        std::size_t end = start;
        while (end < line.size() && (is_ident_char(line[end]) || line[end] == ':')) ++end;
        std::string name = line.substr(start, end - start);
        const std::size_t qualifier = name.rfind("::");
        if (qualifier != std::string::npos) name = name.substr(qualifier + 2);
        if (!name.empty()) handlers.insert(name);
      }
      at = line.find(kCall, at + 1);
    }
  }
}

void check_signal_handler_safety(const std::string& path,
                                 const std::vector<std::string>& lines,
                                 const std::set<std::string>& handlers,
                                 std::vector<Finding>& findings) {
  // A handler body runs at an arbitrary instruction boundary of the
  // interrupted thread. Anything that allocates, locks, or buffers can land
  // inside its own runtime's critical section: malloc re-entered mid-arena
  // update is UB, a stream insert deadlocks on the lock the interrupted code
  // holds, and throwing cannot unwind across the signal frame. The sanctioned
  // body is a write to a volatile std::sig_atomic_t flag — nothing else.
  if (handlers.empty()) return;
  static const std::vector<std::pair<std::string, std::string>> kBanned = {
      {"new", "allocates"},
      {"malloc", "allocates"},
      {"calloc", "allocates"},
      {"realloc", "allocates"},
      {"free", "re-enters the allocator"},
      {"string", "allocates"},
      {"vector", "allocates"},
      {"make_unique", "allocates"},
      {"make_shared", "allocates"},
      {"push_back", "allocates"},
      {"cout", "takes the stream lock"},
      {"cerr", "takes the stream lock"},
      {"clog", "takes the stream lock"},
      {"printf", "is not async-signal-safe"},
      {"fprintf", "is not async-signal-safe"},
      {"puts", "is not async-signal-safe"},
      {"mutex", "deadlocks when the signal lands in the critical section"},
      {"lock_guard", "deadlocks when the signal lands in the critical section"},
      {"unique_lock", "deadlocks when the signal lands in the critical section"},
      {"scoped_lock", "deadlocks when the signal lands in the critical section"},
      {"condition_variable", "is not async-signal-safe"},
      {"throw", "cannot unwind across a signal frame"},
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // A definition start: `void <handler>(` — call sites have no return type
    // on the line, declarations are filtered below by hitting `;` before `{`.
    std::string active;
    for (const std::string& name : handlers) {
      std::size_t at = 0;
      if (!contains_token(lines[i], name, &at)) continue;
      const std::size_t after = lines[i].find_first_not_of(' ', at + name.size());
      if (after == std::string::npos || lines[i][after] != '(') continue;
      if (!contains_token(lines[i], "void")) continue;
      active = name;
      break;
    }
    if (active.empty()) continue;
    bool body = false;
    int depth = 0;
    for (std::size_t j = i; j < lines.size(); ++j) {
      bool ended = false;
      bool body_on_line = body;
      for (const char c : lines[j]) {
        if (!body) {
          if (c == ';') {
            ended = true;  // declaration only, no body to audit
            break;
          }
          if (c == '{') {
            body = true;
            body_on_line = true;
            depth = 1;
          }
        } else if (c == '{') {
          ++depth;
        } else if (c == '}') {
          if (--depth == 0) {
            ended = true;
            break;
          }
        }
      }
      if (body_on_line) {
        for (const auto& [token, why] : kBanned) {
          if (contains_token(lines[j], token)) {
            findings.push_back(
                {path, j + 1, "signal-handler-safety",
                 "`" + token + "` in signal handler `" + active + "` " + why +
                     " — handler bodies may only write volatile std::sig_atomic_t flags"});
          }
        }
      }
      if (ended) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

void scan_content(const std::string& path, const std::string& content,
                  std::vector<Finding>& findings, const std::set<std::string>& handlers) {
  const std::vector<std::string> raw_lines = split_lines(content);
  const std::vector<std::string> lines = split_lines(scrub_source(content));
  check_raw_new_delete(path, lines, findings);
  check_banned_random(path, lines, findings);
  check_unordered_in_chain(path, lines, findings);
  check_float_equality(path, lines, findings);
  check_raw_steady_clock(path, lines, findings);
  check_raw_thread(path, lines, findings);
  check_ad_hoc_retry(path, lines, findings);
  check_ad_hoc_persistence(path, lines, findings);
  check_missing_override(path, lines, findings);
  check_include_layering(path, raw_lines, findings);
  check_signal_handler_safety(path, lines, handlers, findings);
}

/// Single-file scan: handler names are collected from the file itself (the
/// self-test fixtures register and define in one file; the tree scan in main
/// collects across every scanned file first).
void scan_content(const std::string& path, const std::string& content,
                  std::vector<Finding>& findings) {
  std::set<std::string> handlers;
  collect_signal_handlers(split_lines(scrub_source(content)), handlers);
  scan_content(path, content, findings, handlers);
}

/// The rule catalog, shared by --list-rules and allowlist validation.
const std::vector<tfl_tools::RuleInfo>& rule_catalog() {
  static const std::vector<tfl_tools::RuleInfo> kRules = {
      {"raw-new-delete", "raw new/delete outside RAII (src/, tests/)"},
      {"banned-random", "rand()/srand()/std::default_random_engine (src/, tests/)"},
      {"unordered-in-chain", "unordered containers in src/chain/ (consensus order)"},
      {"float-equality", "==/!= against float literals in src/game/, src/core/"},
      {"raw-steady-clock", "std::chrono::steady_clock outside src/obs/ and stopwatch.h"},
      {"raw-thread", "std::thread/std::jthread/std::async outside src/common/parallel.*"},
      {"missing-override", "virtual redecl without override in derived classes"},
      {"include-layering", "module include edges outside the layer graph (src/)"},
      {"ad-hoc-retry",
       "for/while wrapped around ->call( outside src/chain/web3.cpp "
       "(use Web3Client::call_with_retry)"},
      {"ad-hoc-persistence",
       "ofstream/fopen in src/ outside the audited writers (snapshot, csv, chain WAL, report)"},
      {"signal-handler-safety",
       "non-async-signal-safe work (allocation, iostreams, locks, throw) in a handler "
       "registered via install_signal_handler"},
  };
  return kRules;
}

std::set<std::string> known_rule_ids() {
  std::set<std::string> ids;
  for (const tfl_tools::RuleInfo& rule : rule_catalog()) ids.insert(rule.id);
  return ids;
}

std::vector<AllowEntry> load_allowlist(const std::string& file) {
  tfl_tools::AllowParse parsed;
  std::string error;
  if (!tfl_tools::load_allow_file(file, known_rule_ids(), /*require_justification=*/false,
                                  parsed, error)) {
    std::cerr << "tfl-lint: " << error << "\n";
    std::exit(2);
  }
  for (const std::string& warning : parsed.warnings) {
    std::cerr << "tfl-lint: allowlist " << file << ": " << warning << "\n";
  }
  return parsed.entries;
}

// ---------------------------------------------------------------------------
// Self-test fixtures: one per rule proving detection, one clean file proving
// no false positives. Paths are virtual but must hit the per-rule dir filters.
// ---------------------------------------------------------------------------
struct Fixture {
  std::string path;
  std::string content;
  std::set<std::string> expected_rules;
};

int run_self_test() {
  const std::vector<Fixture> fixtures = {
      {"src/fl/fixture_new.cpp",
       "void f() {\n"
       "  int* p = new int(3);\n"
       "  delete p;\n"
       "}\n",
       {"raw-new-delete"}},
      {"src/common/fixture_rand.cpp",
       "#include <cstdlib>\n"
       "#include <random>\n"
       "int f() { return rand() % 5; }\n"
       "std::default_random_engine g_engine;\n",
       {"banned-random"}},
      {"src/chain/fixture_unordered.cpp",
       "#include <unordered_map>\n"
       "std::unordered_map<int, int> g_state;\n",
       {"unordered-in-chain"}},
      {"src/game/fixture_float_eq.cpp",
       "bool f(double x) { return x == 0.0; }\n"
       "bool g(double x) { return 1e-9 != x; }\n",
       {"float-equality"}},
      {"src/core/fixture_float_eq_rhs.cpp",
       "bool h(float x) { return x != 2.5f; }\n",
       {"float-equality"}},
      {"src/fl/fixture_override.h",
       "struct Base {\n"
       "  virtual ~Base() = default;\n"
       "  virtual void step();\n"
       "};\n"
       "struct Derived : public Base {\n"
       "  virtual void step();\n"
       "};\n",
       {"missing-override"}},
      {"src/math/fixture_layering.cpp",
       "#include \"fl/tensor.h\"\n"
       "#include \"math/vec.h\"\n",
       {"include-layering"}},
      {"src/core/fixture_clock.cpp",
       "#include <chrono>\n"
       "auto f() { return std::chrono::steady_clock::now(); }\n",
       {"raw-steady-clock"}},
      // The obs layer itself may read the clock directly.
      {"src/obs/fixture_clock_ok.cpp",
       "#include <chrono>\n"
       "auto f() { return std::chrono::steady_clock::now(); }\n",
       {}},
      {"src/fl/fixture_thread.cpp",
       "#include <future>\n"
       "#include <thread>\n"
       "void f() {\n"
       "  std::thread worker([] {});\n"
       "  auto pending = std::async([] { return 1; });\n"
       "  worker.join();\n"
       "}\n",
       {"raw-thread"}},
      // The pool implementation itself is the sanctioned raw-thread owner.
      {"src/common/parallel.cpp",
       "#include <thread>\n"
       "std::thread g_worker;\n",
       {}},
      // std::this_thread is navigation, not thread creation — must not fire.
      {"src/core/fixture_this_thread_ok.cpp",
       "#include <thread>\n"
       "auto f() { return std::this_thread::get_id(); }\n",
       {}},
      {"src/tradefl/fixture_retry_loop.cpp",
       "void f(Client* web3) {\n"
       "  for (int attempt = 0; attempt < 3; ++attempt) {\n"
       "    auto outcome = web3->call(from, to, method, args);\n"
       "    if (outcome.ok()) break;\n"
       "  }\n"
       "}\n",
       {"ad-hoc-retry"}},
      {"src/tradefl/fixture_retry_while.cpp",
       "void f(Client* web3) {\n"
       "  bool done = false;\n"
       "  while (!done) done = web3->call(from, to, method, args).ok();\n"
       "}\n",
       {"ad-hoc-retry"}},
      // The sanctioned retry loop itself (and single calls, even after an
      // unrelated loop) must not fire.
      {"src/chain/web3.cpp",
       "Outcome g(Client* inner) {\n"
       "  for (int attempt = 1;; ++attempt) {\n"
       "    auto receipt = inner->call(from, to, method, args);\n"
       "    if (receipt.ok()) return receipt;\n"
       "  }\n"
       "}\n",
       {}},
      {"src/chain/fixture_single_call_ok.cpp",
       "Outcome g(Client* contract) {\n"
       "  for (int i = 0; i < 3; ++i) prepare(i);\n"
       "  return contract->call(context, method, args);\n"
       "}\n",
       {}},
      {"src/fl/fixture_persist.cpp",
       "#include <fstream>\n"
       "void f() {\n"
       "  std::ofstream out(\"weights.bin\", std::ios::binary);\n"
       "  out << 1;\n"
       "}\n",
       {"ad-hoc-persistence"}},
      {"src/core/fixture_persist_fopen.cpp",
       "#include <cstdio>\n"
       "void f() { std::FILE* file = std::fopen(\"state.bin\", \"wb\"); (void)file; }\n",
       {"ad-hoc-persistence"}},
      // The snapshot layer is the sanctioned owner of raw file handles.
      {"src/common/snapshot.cpp",
       "#include <cstdio>\n"
       "void f() { std::FILE* file = std::fopen(\"x.tmp\", \"wb\"); (void)file; }\n",
       {}},
      // Tests may write scratch files freely; the rule polices src/ only.
      {"tests/fl/fixture_persist_test_ok.cpp",
       "#include <fstream>\n"
       "void f() { std::ofstream out(\"scratch.txt\"); }\n",
       {}},
      // Raw string literals must be scrubbed by their actual grammar: code
      // after the closing `)"` on the same line is still scanned...
      {"src/fl/fixture_rawstring_after.cpp",
       "const char* kJson = R\"({\"a\": 1})\"; int* leak = new int(3);\n",
       {"raw-new-delete"}},
      // ...and banned tokens inside the literal (including on the closing
      // line, with a custom delimiter) must not fire.
      {"src/fl/fixture_rawstring_contents_ok.cpp",
       "const char* kDoc = R\"x(call new int; then\n"
       "delete p; also rand() and \"quoted\" text)x\";\n",
       {}},
      // An escape-like sequence inside a raw string does not escape: the
      // literal ends at `)\"`, and the delete after it is real code.
      {"src/core/fixture_rawstring_noescape.cpp",
       "void f(int* p) { const char* s = R\"(\\\")\"; delete p; }\n",
       {"raw-new-delete"}},
      // Digit separators are not char-literal openers; code after 1'000'000
      // is still scanned.
      {"src/fl/fixture_digit_separator.cpp",
       "void f() {\n"
       "  const long budget = 1'000'000;\n"
       "  int* p = new int(3);\n"
       "  delete p;\n"
       "}\n",
       {"raw-new-delete"}},
      // A registered handler that allocates and touches iostreams — both the
      // string construction and the stream insert must fire.
      {"src/tradefl/fixture_sighandler_alloc.cpp",
       "#include <csignal>\n"
       "#include <iostream>\n"
       "void on_term(int signum) {\n"
       "  std::string note = std::to_string(signum);\n"
       "  std::cout << note;\n"
       "}\n"
       "void install() { install_signal_handler(15, on_term); }\n",
       {"signal-handler-safety"}},
      // A registered handler that takes a lock (registered by address, with
      // namespace qualification — both must be stripped to find the body).
      {"src/tradefl/fixture_sighandler_lock.cpp",
       "#include <mutex>\n"
       "std::mutex g_mutex;\n"
       "void on_usr1(int) {\n"
       "  std::lock_guard<std::mutex> guard(g_mutex);\n"
       "}\n"
       "void install() { install_signal_handler(10, &handlers::on_usr1); }\n",
       {"signal-handler-safety"}},
      // The sanctioned handler shape: one volatile sig_atomic_t write.
      {"src/tradefl/fixture_sighandler_ok.cpp",
       "#include <csignal>\n"
       "volatile std::sig_atomic_t g_flag = 0;\n"
       "void on_term(int signum) { (void)signum; g_flag = 1; }\n"
       "void install() { install_signal_handler(15, on_term); }\n",
       {}},
      // Non-handler functions in a registering file may allocate/log freely;
      // a mutex at file scope (outside any handler body) is also fine.
      {"src/tradefl/fixture_sighandler_other_fn_ok.cpp",
       "#include <iostream>\n"
       "#include <mutex>\n"
       "std::mutex g_state_mutex;\n"
       "volatile std::sig_atomic_t g_flag = 0;\n"
       "void on_term(int signum) { (void)signum; g_flag = 1; }\n"
       "void worker() {\n"
       "  std::string note = describe();\n"
       "  std::cout << note;\n"
       "}\n"
       "void install() { install_signal_handler(15, on_term); }\n",
       {}},
      // A declaration followed by other code must not be mistaken for the
      // handler's body (the walk stops at `;`).
      {"src/tradefl/fixture_sighandler_decl_ok.h",
       "void on_term(int signum);\n"
       "inline void install() { install_signal_handler(15, on_term); }\n"
       "inline void elsewhere() { std::string heap = make(); }\n",
       {}},
      // Clean file: banned words only in comments/strings, tolerance compare,
      // override used properly, allowed include edge. Must produce no findings.
      {"src/game/fixture_clean.cpp",
       "#include \"math/vec.h\"\n"
       "// mentions new and delete and rand() in a comment only\n"
       "const char* kMessage = \"use new delete rand() == 0.0\";\n"
       "bool close(double x) { return std::abs(x - 1.0) < 1e-9; }\n"
       "struct Base { virtual ~Base() = default; virtual void f(); };\n"
       "struct Derived : Base { void f() override; };\n"
       "auto deleted_fn(int) -> int = delete;\n",
       {}},
  };

  int failures = 0;
  for (const Fixture& fixture : fixtures) {
    std::vector<Finding> findings;
    scan_content(fixture.path, fixture.content, findings);
    std::set<std::string> hit;
    for (const Finding& finding : findings) hit.insert(finding.rule);
    for (const std::string& rule : fixture.expected_rules) {
      if (hit.count(rule) == 0) {
        std::cerr << "self-test FAIL: " << fixture.path << " should trigger " << rule << "\n";
        ++failures;
      }
    }
    for (const Finding& finding : findings) {
      if (fixture.expected_rules.count(finding.rule) == 0) {
        std::cerr << "self-test FAIL: " << fixture.path << ":" << finding.line
                  << " unexpected " << finding.rule << " (" << finding.message << ")\n";
        ++failures;
      }
    }
  }
  if (failures == 0) {
    std::cout << "tfl-lint self-test: all " << fixtures.size() << " fixtures behaved\n";
    return 0;
  }
  std::cerr << "tfl-lint self-test: " << failures << " failure(s)\n";
  return 1;
}

void list_rules() { std::cout << tfl_tools::format_rule_table(rule_catalog()); }

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string allow_file;
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--allow") {
      if (i + 1 >= argc) {
        std::cerr << "tfl-lint: --allow needs a file argument\n";
        return 2;
      }
      allow_file = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "tfl-lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }

  if (self_test) return run_self_test();
  if (roots.empty()) {
    std::cerr << "usage: tfl-lint [--allow FILE] [--list-rules] PATH...\n"
              << "       tfl-lint --self-test\n";
    return 2;
  }

  std::vector<AllowEntry> allowlist;
  if (!allow_file.empty()) allowlist = load_allowlist(allow_file);

  std::vector<fs::path> files;
  std::string walk_error;
  if (!tfl_tools::collect_files(roots, files, walk_error)) {
    std::cerr << "tfl-lint: " << walk_error << "\n";
    return 2;
  }

  // Two passes: handler registrations are collected tree-wide first, so a
  // handler registered in one file and defined in another is still audited.
  std::vector<std::pair<std::string, std::string>> sources;  // path, content
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::string content;
    if (!tfl_tools::read_file(file, content)) {
      std::cerr << "tfl-lint: cannot read " << normalize_path(file) << "\n";
      return 2;
    }
    sources.emplace_back(normalize_path(file), std::move(content));
  }
  std::set<std::string> handlers;
  for (const auto& [path, content] : sources) {
    collect_signal_handlers(split_lines(scrub_source(content)), handlers);
  }
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  for (const auto& [path, content] : sources) {
    scan_content(path, content, findings, handlers);
    ++files_scanned;
  }

  std::size_t reported = 0;
  std::size_t suppressed = 0;
  for (const Finding& finding : findings) {
    if (allowed(finding, allowlist)) {
      ++suppressed;
      continue;
    }
    std::cout << finding.path << ":" << finding.line << ": [" << finding.rule << "] "
              << finding.message << "\n";
    ++reported;
  }
  std::cout << "tfl-lint: " << files_scanned << " files, " << reported << " finding(s)";
  if (suppressed > 0) std::cout << ", " << suppressed << " allowlisted";
  std::cout << "\n";
  return reported == 0 ? 0 : 1;
}
