// Bench manifest regression diff — the library behind tools/tfl_bench_diff.cpp
// (built as tfl-bench-diff) and the perf-regression stage in tools/ci_check.sh.
//
// Compares the "metrics" subtree of two BENCH_*.json manifests (the shape
// emitted by src/tradefl/loadgen.h and bench/bench_load.cpp) after flattening
// it to dotted numeric keys. Per-metric policy, classified by key name:
//
//   *_per_sec                      higher-is-better, `threshold` slack
//   *.p50/*seconds                 lower-is-better, `threshold` x
//                                  `latency_multiplier` slack (percentile
//                                  estimates are noisier than throughput)
//   *.p90                          lower-is-better, `threshold` x
//                                  `latency_multiplier` x 4 slack (closer to
//                                  the scheduler-noise tail than p50)
//   *.p99 / *.max                  informational only, never a regression —
//                                  the tail of a small µs-scale sample moves
//                                  with a single scheduler hiccup; the
//                                  gatekeeping signal is p50/p90 + throughput
//   *.count / operations / schema  deterministic — must match exactly; a
//                                  mismatch means the workload changed and the
//                                  baseline needs regenerating
//   everything else                lower-is-better, `threshold` slack
//
// A key present in the baseline but missing from the candidate is a
// regression; a new key in the candidate is informational only (metrics grow
// over time). Standard-library only, like the other repo tools: it must
// build even when src/ is mid-refactor.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tfl_benchdiff {

// ---- minimal JSON ----

/// Parsed JSON value. Objects keep insertion order (manifests are
/// canonically ordered already); numbers are doubles.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> items;                            // kArray

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;  // "<offset>: message" when !ok
  JsonValue value;
};

/// Strict-enough JSON parser for bench manifests: objects, arrays, strings
/// (with the escapes our writers emit), numbers, true/false/null. Rejects
/// trailing garbage.
JsonParseResult parse_json(const std::string& text);

// ---- manifest diff ----

struct DiffOptions {
  double threshold = 0.25;          // relative slack on throughput metrics
  double latency_multiplier = 2.0;  // extra slack factor for latency metrics
};

enum class Direction { kHigherBetter, kLowerBetter, kExact, kInformational };

struct MetricDelta {
  std::string key;  // dotted path under "metrics"
  double old_value = 0.0;
  double new_value = 0.0;
  /// (new - old) / old; +-inf encoded as +-1e9 when old == 0 and new != 0.
  double relative = 0.0;
  Direction direction = Direction::kLowerBetter;
  double allowed = 0.0;  // slack actually applied
  bool regression = false;
};

struct DiffReport {
  std::vector<MetricDelta> deltas;          // baseline-key order
  std::vector<std::string> missing_keys;    // in baseline, absent in candidate
  std::vector<std::string> new_keys;        // in candidate only (informational)

  [[nodiscard]] bool has_regression() const;
  [[nodiscard]] std::size_t regression_count() const;
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

/// Classification used by the diff (exposed for tests).
Direction classify_metric(const std::string& key);

/// Flattens the numeric leaves of `value` into dotted keys (exposed for
/// tests).
std::vector<std::pair<std::string, double>> flatten_metrics(const JsonValue& value);

/// Diffs the "metrics" subtrees of two parsed manifests. Both arguments must
/// be objects containing a "metrics" object — validate with
/// manifest_metrics() before calling.
DiffReport diff_manifests(const JsonValue& baseline, const JsonValue& candidate,
                          const DiffOptions& options);

/// The "metrics" object of a parsed manifest; nullptr when the manifest is
/// malformed (not an object, or no "metrics" object member).
const JsonValue* manifest_metrics(const JsonValue& manifest);

}  // namespace tfl_benchdiff
