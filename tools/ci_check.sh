#!/usr/bin/env bash
# One-shot CI gate: exactly what a PR must pass. CI and the local tier-1
# verify share this entry point so they can never drift apart.
#
#   1. configure + build with warnings-as-errors
#   2. ctest (unit/integration suites plus the tfl-lint tree scan & self-test)
#   3. tfl-analyze semantic gate as its own named stage: self-test proving
#      every rule still detects its fixtures, then the full-tree scan with
#      per-rule finding counts printed (baseline + obs vocabulary applied)
#   4. load bench + perf-regression gate: bench_load fast=1 and bench_serve
#      fast=1, diffed against bench/baselines/bench_load.fast.json,
#      bench_chain.fast.json AND bench_serve.fast.json by tfl-bench-diff
#      (>25% throughput regression or any deterministic-metric drift fails
#      the stage; the serve baseline pins daemon sessions/sec and admission
#      p50/p99; TFL_REGEN_BASELINE=1 refreshes all baselines after
#      intentional changes)
#   4b. serve drain gate: boot the real `tradefl serve` binary, drive it with
#      the bench's client-mode workload over a fifo, SIGTERM it mid-load,
#      and assert a clean drain (exit 0, drained bye line, zero orphaned
#      .tmp files) plus a clean re-attach run over the same state
#   5. optional clang-tidy stage over build/compile_commands.json — advisory,
#      skipped with a notice when clang-tidy is not installed
#   6. tracing-off build (TRADEFL_ENABLE_TRACING=OFF) proving the
#      instrumentation macros compile away cleanly
#   7. ASan+UBSan build of the same suite, zero reports tolerated
#   8. TSan build of the concurrency suites (ThreadPool/Parallel/Gemm/Metrics/
#      Chaos); tfl-bench-diff stays outside the filter — it is single-threaded
#      and never touches the ThreadPool
#   9. chaos suite re-run under ASan+UBSan (fault-injection paths: dropout,
#      corruption quarantine, retry exhaustion, solver recovery) as its own
#      named gate so a filter change can never silently drop it
#  10. kill-and-resume suite re-run under ASan+UBSan (snapshot corruption,
#      chain WAL replay, checkpoint/resume bit-identity, real SIGKILL against
#      the CLI binary) as its own named gate
#
# Usage: tools/ci_check.sh [--no-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."

run_sanitizers=1
for arg in "$@"; do
  case "$arg" in
    --no-sanitizers) run_sanitizers=0 ;;
    *) echo "usage: tools/ci_check.sh [--no-sanitizers]" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "=== ci: configure (warnings-as-errors) ==="
cmake -B build -S . -DTRADEFL_WARNINGS_AS_ERRORS=ON

echo "=== ci: build ==="
cmake --build build -j "$jobs"

echo "=== ci: ctest ==="
ctest --test-dir build --output-on-failure -j "$jobs"

echo "=== ci: tfl-analyze (semantic rules) ==="
# Also run as ctest entries above; repeated here as a named stage so the
# per-rule finding counts land in the CI log even on a green run.
./build/tools/tfl-analyze --self-test
./build/tools/tfl-analyze \
    --baseline tools/tfl_analyze_baseline.txt \
    --vocab tools/obs_vocab.txt \
    src

echo "=== ci: load bench + perf-regression gate ==="
# Fast-mode load bench (sessions + bulk chain transfers), then tfl-bench-diff
# against the checked-in baseline. Deterministic metrics (operations, phase
# counts) must match exactly; throughput may regress at most 25%, p50 latency
# at most 50%, p90 at most 200%; p99/max are informational (tools/bench_diff.h
# documents the per-metric policy).
# After an intentional workload or perf change, regenerate the baseline with:
#   TFL_REGEN_BASELINE=1 tools/ci_check.sh --no-sanitizers
bench_tmp=$(mktemp -d)
trap 'rm -rf "$bench_tmp"' EXIT
# The bench reports best-of-3 passes internally; the retry below additionally
# covers multi-second bursts of machine contention on shared runners. A real
# perf regression fails all three attempts.
bench_gate_ok=0
for attempt in 1 2 3; do
  ./build/bench/bench_load fast=1 out="$bench_tmp" csv="$bench_tmp"
  ./build/bench/bench_serve fast=1 out="$bench_tmp" root="$bench_tmp/serve-state"
  # Byzantine attack sweep: every per-cell metric (correct/attacked/rejected/
  # clipped counts) is deterministic and exact-match gated, so this doubles as
  # a semantic-drift detector for the aggregation rules.
  ./build/bench/bench_fl fast=1 out="$bench_tmp"
  if [ "${TFL_REGEN_BASELINE:-0}" = "1" ]; then
    cp "$bench_tmp/BENCH_load.json" bench/baselines/bench_load.fast.json
    cp "$bench_tmp/BENCH_chain.json" bench/baselines/bench_chain.fast.json
    cp "$bench_tmp/BENCH_serve.json" bench/baselines/bench_serve.fast.json
    cp "$bench_tmp/BENCH_fl.json" bench/baselines/bench_fl.fast.json
    echo "ci_check: regenerated bench/baselines/{bench_load,bench_chain,bench_serve,bench_fl}.fast.json"
  fi
  if ./build/tools/tfl-bench-diff --threshold "${TFL_BENCH_DIFF_THRESHOLD:-0.25}" \
      bench/baselines/bench_load.fast.json "$bench_tmp/BENCH_load.json" &&
     ./build/tools/tfl-bench-diff --threshold "${TFL_BENCH_DIFF_THRESHOLD:-0.25}" \
      bench/baselines/bench_chain.fast.json "$bench_tmp/BENCH_chain.json" &&
     ./build/tools/tfl-bench-diff --threshold "${TFL_BENCH_DIFF_THRESHOLD:-0.25}" \
      bench/baselines/bench_serve.fast.json "$bench_tmp/BENCH_serve.json" &&
     ./build/tools/tfl-bench-diff --threshold "${TFL_BENCH_DIFF_THRESHOLD:-0.25}" \
      bench/baselines/bench_fl.fast.json "$bench_tmp/BENCH_fl.json"; then
    bench_gate_ok=1
    break
  fi
  echo "ci_check: perf gate attempt $attempt failed, retrying"
done
if [ "$bench_gate_ok" -ne 1 ]; then
  echo "ci_check: perf-regression gate failed on all attempts" >&2
  exit 1
fi

echo "=== ci: serve drain gate ==="
# Boot the real daemon, drive it with the bench's client-mode workload, then
# SIGTERM it mid-load. A healthy drain exits 0 (parking whatever was still
# running) and leaves no orphaned temp files — every snapshot landed via the
# atomic tmp+rename path. A second, uninterrupted run must then finish every
# parked session from its checkpoints.
serve_tmp=$(mktemp -d)
serve_state="$serve_tmp/state"
serve_fifo="$serve_tmp/requests.fifo"
mkfifo "$serve_fifo"
# Hold a write end of the fifo open for the whole stage (read-write so the
# open can't block): the daemon never sees EOF, so SIGTERM is the only way
# it can exit — the gate tests the signal path even on a fast host that
# finishes the burst before the kill lands.
exec 9<> "$serve_fifo"
./build/tools/tradefl serve root="$serve_state" workers=2 \
    < "$serve_fifo" > "$serve_tmp/replies.log" 2>&1 &
serve_pid=$!
# Feed the workload slowly enough that the SIGTERM lands mid-load; the fifo
# writer runs in the background and is reaped with the server.
( ./build/bench/bench_serve client=1 fast=1 | while IFS= read -r line; do
    printf '%s\n' "$line"
    sleep 0.01
  done > "$serve_fifo" ) &
feeder_pid=$!
sleep 2
kill -TERM "$serve_pid"
serve_exit=0
wait "$serve_pid" || serve_exit=$?
kill "$feeder_pid" 2>/dev/null || true
wait "$feeder_pid" 2>/dev/null || true
exec 9>&-
if [ "$serve_exit" -ne 0 ]; then
  echo "ci_check: serve did not drain cleanly on SIGTERM (exit $serve_exit)" >&2
  cat "$serve_tmp/replies.log" >&2
  exit 1
fi
orphans=$(find "$serve_state" -name '*.tmp' | wc -l)
if [ "$orphans" -ne 0 ]; then
  echo "ci_check: serve drain left $orphans orphaned .tmp file(s)" >&2
  find "$serve_state" -name '*.tmp' >&2
  exit 1
fi
grep -q '"op": "bye", "drained": true' "$serve_tmp/replies.log" || {
  echo "ci_check: serve drain did not report a drained shutdown" >&2
  cat "$serve_tmp/replies.log" >&2
  exit 1
}
# Restart over the same state: every parked/pending session must complete.
./build/tools/tradefl serve root="$serve_state" workers=2 \
    < /dev/null > "$serve_tmp/resume.log" 2>&1
if grep -qE '"op": "(failed|evicted)"' "$serve_tmp/resume.log"; then
  echo "ci_check: re-attached serve run did not complete cleanly" >&2
  cat "$serve_tmp/resume.log" >&2
  exit 1
fi
rm -rf "$serve_tmp"
echo "ci_check: serve drained on SIGTERM and re-attached cleanly"

echo "=== ci: clang-tidy (optional) ==="
# Advisory generic checks (.clang-tidy) over the compile database that the
# main configure always exports. The repo-specific gates are tfl-lint and
# tfl-analyze above; this stage only runs where clang-tidy is installed.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -quiet -p build "$(pwd)/src" "$(pwd)/tools" || {
    echo "ci_check: clang-tidy reported findings (advisory, not blocking)"
  }
elif command -v clang-tidy >/dev/null 2>&1; then
  find src tools -name '*.cpp' -print0 |
    xargs -0 -n 1 -P "$jobs" clang-tidy -quiet -p build || {
      echo "ci_check: clang-tidy reported findings (advisory, not blocking)"
    }
else
  echo "ci_check: clang-tidy not installed, skipping advisory stage"
fi

echo "=== ci: tracing-off build ==="
cmake -B build-notrace -S . -DTRADEFL_WARNINGS_AS_ERRORS=ON \
      -DTRADEFL_ENABLE_TRACING=OFF -DTRADEFL_BUILD_BENCH=OFF \
      -DTRADEFL_BUILD_EXAMPLES=OFF
cmake --build build-notrace -j "$jobs"
ctest --test-dir build-notrace --output-on-failure -j "$jobs"

if [ "$run_sanitizers" -eq 1 ]; then
  echo "=== ci: sanitizer pass ==="
  tools/run_sanitizers.sh asan-ubsan tsan

  echo "=== ci: chaos suite (asan-ubsan) ==="
  # Fault-injection robustness tests under ASan+UBSan: dropout/quarantine in
  # FL, retry/abort on chain, solver recovery, and the thread-count replay.
  ctest --test-dir build-asan-ubsan --output-on-failure -j "$jobs" \
        -R 'Chaos|Retry|Fault|GbdFaults|Serve'

  echo "=== ci: byzantine-chaos suite (asan-ubsan) ==="
  # Byzantine-resilience gate: robust aggregation semantics and determinism,
  # adversarial fault kinds in FedAvg/FedAsync, the strategic-deviation audit,
  # and the mid-attack checkpoint/resume contract — then one real CLI session
  # under a mixed attack plan with a robust rule, end to end through
  # parse_fault_plan, training, the audit, and on-chain settlement.
  ctest --test-dir build-asan-ubsan --output-on-failure -j "$jobs" \
        -R 'Byzantine|RobustAgg|FedAvgFaults|FedAsyncRobust|DeviationAudit'
  ./build-asan-ubsan/tools/tradefl session orgs=4 seed=3 train=1 rounds=2 \
      sample_scale=0.12 agg=trimmed:1 faults=seed:11,signflip:1,freeride:1 \
      > /dev/null

  echo "=== ci: kill-and-resume suite (asan-ubsan) ==="
  # Durability gate: snapshot corruption fails closed, the chain WAL replays
  # torn tails, FedAvg/FedAsync/CGBD/session resume bit-identically, and the
  # real CLI binary survives injected crashes and a genuine SIGKILL.
  ctest --test-dir build-asan-ubsan --output-on-failure -j "$jobs" \
        -R 'KillResume|Snapshot|ChainWal|ChainState|Checkpoint|Session\.C'
fi

echo "ci_check: all gates passed"
