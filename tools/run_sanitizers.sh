#!/usr/bin/env bash
# Builds the tier-1 test suite under ASan+UBSan (and optionally TSan) and runs
# it with halt-on-error semantics, so any sanitizer report fails the run.
#
# Usage:
#   tools/run_sanitizers.sh              # asan-ubsan preset
#   tools/run_sanitizers.sh tsan         # thread sanitizer preset
#   tools/run_sanitizers.sh asan-ubsan tsan
#
# Presets are defined in CMakePresets.json; each uses its own build tree
# (build-<preset>/) and force-enables the TFL_* contract macros.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(asan-ubsan)
fi

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] ctest ==="
  if [ "$preset" = "tsan" ]; then
    # TSan's value is catching races in the code that actually spawns threads;
    # restricting to the concurrency suites keeps the pass fast enough to gate
    # every PR (the full suite still runs under ASan+UBSan).
    # Chaos is included because its replay test drives the pool at 4 threads
    # under an active fault plan. Mempool + ParallelValidation cover the
    # chain's batch-sealing and parallel validate() paths. Serve covers the
    # daemon: worker/watchdog threads, per-session cancel tokens, the scoped
    # metrics resolver, and the shared reply stream. RobustAgg covers the
    # aggregation rules' thread-count determinism contract (the scratch pool
    # and ordered reductions run on the worker pool at 4 threads).
    ctest --preset "$preset" -R 'Parallel|ThreadPool|Gemm|Metrics|Chaos|Mempool|ParallelValidation|Serve|RobustAgg'
  else
    ctest --preset "$preset"
  fi
  echo "=== [$preset] clean ==="
done

echo "run_sanitizers: all presets passed (${presets[*]})"
