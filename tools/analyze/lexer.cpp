#include "analyze/lexer.h"

#include <cctype>
#include <cstring>

namespace tfl_analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// True when the identifier spelling is a valid string/char encoding prefix.
bool encoding_prefix(const std::string& s) {
  return s == "u8" || s == "u" || s == "U" || s == "L";
}

/// True when the identifier spelling is a raw-string prefix (ends in R with an
/// optional encoding prefix before it).
bool raw_prefix(const std::string& s) {
  return s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR";
}

/// Phase 1+2: remove line splices (backslash-newline) while preserving the
/// original line number of every surviving character. Raw string literals are
/// copied verbatim — splices do not apply inside them.
void splice(const std::string& text, std::string& out, std::vector<std::size_t>& line_of) {
  std::size_t line = 1;
  std::size_t i = 0;
  // Last identifier run, used to decide whether a `"` opens a raw string.
  auto raw_string_at = [&](std::size_t at) -> std::size_t {
    // Returns the length of the raw-string prefix ending just before `at`
    // (the `"`), or 0 when this is not a raw string opener. Checks against
    // `out`, which holds everything emitted so far.
    if (out.empty() || out.back() != 'R') return 0;
    std::size_t start = out.size() - 1;
    if (start >= 2 && out[start - 2] == 'u' && out[start - 1] == '8') {
      start -= 2;
    } else if (start >= 1 &&
               (out[start - 1] == 'u' || out[start - 1] == 'U' || out[start - 1] == 'L')) {
      start -= 1;
    }
    if (start > 0 && ident_char(out[start - 1])) return 0;
    (void)at;
    return out.size() - start;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size() &&
        (text[i + 1] == '\n' || (text[i + 1] == '\r' && i + 2 < text.size() &&
                                 text[i + 2] == '\n'))) {
      // Line splice: drop it, advance the physical line counter.
      i += text[i + 1] == '\r' ? 3 : 2;
      ++line;
      continue;
    }
    if (c == '"' && raw_string_at(i) > 0) {
      // Raw string: copy verbatim through `)delim"`; splices stay literal.
      std::size_t delim_end = i + 1;
      while (delim_end < text.size() && text[delim_end] != '(' && text[delim_end] != '\n' &&
             delim_end - i - 1 <= 16) {
        ++delim_end;
      }
      if (delim_end < text.size() && text[delim_end] == '(') {
        const std::string closer = ")" + text.substr(i + 1, delim_end - i - 1) + "\"";
        std::size_t close = text.find(closer, delim_end + 1);
        const std::size_t end =
            close == std::string::npos ? text.size() : close + closer.size();
        for (; i < end; ++i) {
          out.push_back(text[i]);
          line_of.push_back(line);
          if (text[i] == '\n') ++line;
        }
        continue;
      }
    }
    out.push_back(c);
    line_of.push_back(line);
    if (c == '\n') ++line;
    ++i;
  }
}

}  // namespace

bool is_punct(const Token& token, const char* spelling) {
  return token.kind == Tok::kPunct && token.text == spelling;
}

bool is_ident(const Token& token, const char* spelling) {
  return token.kind == Tok::kIdent && token.text == spelling;
}

std::vector<Token> lex(const std::string& text) {
  std::string s;
  std::vector<std::size_t> line_of;
  s.reserve(text.size());
  line_of.reserve(text.size());
  splice(text, s, line_of);

  std::vector<Token> tokens;
  std::size_t i = 0;
  bool line_start = true;  // only whitespace seen so far on this line

  auto line_at = [&](std::size_t pos) -> std::size_t {
    return pos < line_of.size() ? line_of[pos] : (line_of.empty() ? 1 : line_of.back());
  };

  // Consumes a quoted literal starting at the opening quote; returns contents.
  auto quoted = [&](char quote) -> std::string {
    std::string value;
    ++i;  // opening quote
    while (i < s.size() && s[i] != quote) {
      if (s[i] == '\\' && i + 1 < s.size()) {
        value.push_back(s[i]);
        value.push_back(s[i + 1]);
        i += 2;
      } else if (s[i] == '\n') {
        break;  // unterminated; stop at end of line
      } else {
        value.push_back(s[i]);
        ++i;
      }
    }
    if (i < s.size() && s[i] == quote) ++i;  // closing quote
    return value;
  };

  while (i < s.size()) {
    const char c = s[i];
    if (c == '\n') {
      line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#' && line_start) {
      // Preprocessor directive: splices are already merged, so it ends at \n.
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    line_start = false;
    const std::size_t start = i;
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      while (i < s.size() && s[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      i += 2;
      while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) ++i;
      i = i + 1 < s.size() ? i + 2 : s.size();
      continue;
    }
    if (ident_start(c)) {
      std::size_t end = i;
      while (end < s.size() && ident_char(s[end])) ++end;
      const std::string word = s.substr(i, end - i);
      // String/char literal prefixes: R"( ... , u8"...", L'x', ...
      if (end < s.size() && s[end] == '"' && raw_prefix(word)) {
        // Raw string literal.
        std::size_t delim_end = end + 1;
        while (delim_end < s.size() && s[delim_end] != '(' && s[delim_end] != '\n' &&
               delim_end - end - 1 <= 16) {
          ++delim_end;
        }
        if (delim_end < s.size() && s[delim_end] == '(') {
          const std::string closer = ")" + s.substr(end + 1, delim_end - end - 1) + "\"";
          const std::size_t close = s.find(closer, delim_end + 1);
          const std::size_t lit_end =
              close == std::string::npos ? s.size() : close;
          tokens.push_back(
              {Tok::kString, s.substr(delim_end + 1, lit_end - delim_end - 1), line_at(start)});
          i = close == std::string::npos ? s.size() : close + closer.size();
          continue;
        }
      }
      if (end < s.size() && s[end] == '"' && (encoding_prefix(word))) {
        i = end;
        tokens.push_back({Tok::kString, quoted('"'), line_at(start)});
        continue;
      }
      if (end < s.size() && s[end] == '\'' && encoding_prefix(word)) {
        i = end;
        tokens.push_back({Tok::kChar, quoted('\''), line_at(start)});
        continue;
      }
      tokens.push_back({Tok::kIdent, word, line_at(start)});
      i = end;
      continue;
    }
    if (digit(c) || (c == '.' && i + 1 < s.size() && digit(s[i + 1]))) {
      std::size_t end = i + 1;
      while (end < s.size()) {
        const char d = s[end];
        if (ident_char(d) || d == '.') {
          ++end;
        } else if (d == '\'' && end + 1 < s.size() && ident_char(s[end + 1])) {
          ++end;  // digit separator
        } else if ((d == '+' || d == '-') &&
                   (s[end - 1] == 'e' || s[end - 1] == 'E' || s[end - 1] == 'p' ||
                    s[end - 1] == 'P')) {
          ++end;  // exponent sign
        } else {
          break;
        }
      }
      tokens.push_back({Tok::kNumber, s.substr(i, end - i), line_at(start)});
      i = end;
      continue;
    }
    if (c == '"') {
      tokens.push_back({Tok::kString, quoted('"'), line_at(start)});
      continue;
    }
    if (c == '\'') {
      tokens.push_back({Tok::kChar, quoted('\''), line_at(start)});
      continue;
    }
    // Punctuators, maximal munch.
    static const char* kThree[] = {"<<=", ">>=", "...", "->*"};
    static const char* kTwo[] = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
                                 "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
                                 "|=", "^=", ".*", "##"};
    std::size_t len = 1;
    for (const char* p : kThree) {
      if (s.compare(i, 3, p) == 0) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (const char* p : kTwo) {
        if (s.compare(i, 2, p) == 0) {
          len = 2;
          break;
        }
      }
    }
    tokens.push_back({Tok::kPunct, s.substr(i, len), line_at(start)});
    i += len;
  }
  return tokens;
}

}  // namespace tfl_analyze
