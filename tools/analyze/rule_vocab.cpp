// obs-vocab / obs-orphan: every metric/span name used at a TFL_* macro site
// must appear in the registered vocabulary (tools/obs_vocab.txt), and every
// vocabulary entry must correspond to at least one site — so the docs, the
// dashboards, and the code can never silently disagree about what exists.
//
// Vocabulary grammar: one dotted name per line, `#` comments. A `*` segment
// matches exactly one site segment, which is how dynamically-suffixed names
// (`"contract." + method`) are registered: the site contributes the literal
// prefix plus `*`.
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.h"

namespace tfl_analyze {

namespace {

using tfl_tools::Finding;

const std::set<std::string>& name_taking_macros() {
  static const std::set<std::string> kMacros = {
      "TFL_COUNTER_INC", "TFL_COUNTER_ADD",    "TFL_GAUGE_SET",     "TFL_OBSERVE",
      "TFL_OBSERVE_BUCKETS", "TFL_SERIES_APPEND", "TFL_SPAN",       "TFL_SCOPED_TIMER",
      "TFL_LATENCY_TIMER", "TFL_LEDGER_PHASE",  "TFL_LEDGER_EVENT",
  };
  return kMacros;
}

std::vector<std::string> segments(const std::string& name) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : name) {
    if (c == '.') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

/// Entry/site match: same segment count; an entry `*` matches any one site
/// segment; a site `*` (dynamic suffix) requires the entry to hold `*` there.
bool matches(const std::vector<std::string>& entry, const std::vector<std::string>& site) {
  if (entry.size() != site.size()) return false;
  for (std::size_t i = 0; i < entry.size(); ++i) {
    if (entry[i] == "*") continue;
    if (site[i] == "*" || entry[i] != site[i]) return false;
  }
  return true;
}

struct VocabEntry {
  std::string name;
  std::vector<std::string> parts;
  std::size_t line = 0;
  bool used = false;
};

struct Site {
  std::string name;  // literal name, possibly ending in a `*` segment
  std::string file;
  std::size_t line = 0;
  std::string macro;
};

}  // namespace

void check_vocab(const std::vector<LexedFile>& files, const Options& options,
                 std::vector<tfl_tools::Finding>& findings) {
  if (options.vocab_lines.empty()) return;

  std::vector<VocabEntry> vocab;
  for (std::size_t i = 0; i < options.vocab_lines.size(); ++i) {
    std::string line = options.vocab_lines[i];
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    std::size_t end = line.find_last_not_of(" \t\r");
    const std::string name = line.substr(begin, end - begin + 1);
    if (name.find(' ') != std::string::npos) continue;  // malformed; ignore
    vocab.push_back({name, segments(name), i + 1, false});
  }

  std::vector<Site> sites;
  for (const LexedFile& file : files) {
    const std::vector<Token>& tokens = file.tokens;
    // Skip the macro definitions themselves.
    if (tfl_tools::path_ends_with(file.path, "obs/obs.h")) continue;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind != Tok::kIdent || name_taking_macros().count(tokens[i].text) == 0) {
        continue;
      }
      if (!is_punct(tokens[i + 1], "(")) continue;
      const std::size_t close = match_forward(tokens, i + 1);
      const auto args = split_args(tokens, i + 1, close);
      if (args.empty()) continue;
      const auto [first, last] = args.front();
      if (first >= last || tokens[first].kind != Tok::kString) continue;  // non-literal name
      std::string name = tokens[first].text;
      // `"prefix." + dynamic` registers as `prefix.*`.
      if (first + 1 < last && is_punct(tokens[first + 1], "+")) {
        if (!name.empty() && name.back() == '.') {
          name += "*";
        } else {
          name += ".*";
        }
      }
      sites.push_back({name, file.path, tokens[i].line, tokens[i].text});
    }
  }

  for (const Site& site : sites) {
    const std::vector<std::string> parts = segments(site.name);
    bool found = false;
    for (VocabEntry& entry : vocab) {
      if (matches(entry.parts, parts)) {
        entry.used = true;
        found = true;
      }
    }
    if (!found) {
      findings.push_back({site.file, site.line, "obs-vocab",
                          site.macro + " name `" + site.name +
                              "` is not in the registered vocabulary — add it to " +
                              (options.vocab_path.empty() ? "the vocabulary file"
                                                          : options.vocab_path) +
                              " and docs/OBSERVABILITY.md, or fix the typo"});
    }
  }

  for (const VocabEntry& entry : vocab) {
    if (entry.used) continue;
    findings.push_back({options.vocab_path.empty() ? "<vocab>" : options.vocab_path, entry.line,
                        "obs-orphan",
                        "vocabulary entry `" + entry.name +
                            "` matches no TFL_* site in the scanned tree — remove it or "
                            "restore the instrumentation"});
  }
}

}  // namespace tfl_analyze
