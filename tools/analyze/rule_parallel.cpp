// parallel-capture / parallel-rng / unordered-hash-iter: flow-aware checks on
// lambdas handed to the parallel execution layer (src/common/parallel.h) and
// on iteration over unordered containers.
//
// The determinism discipline these rules enforce:
//   - a parallel lambda may write only to locals, its parameters, or a
//     distinct slot of a shared array indexed by something derived from its
//     chunk/worker parameters (the disjoint-slot pattern);
//   - random draws inside a parallel body must come from a per-chunk stream
//     (Rng::derive_stream_seed or a *_rng stream factory), never a shared or
//     ad-hoc-seeded Rng;
//   - unordered container iteration must never feed hashing/serialization,
//     because the visit order is implementation-defined.
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.h"

namespace tfl_analyze {

namespace {

using tfl_tools::Finding;

const std::set<std::string>& rng_draw_methods() {
  static const std::set<std::string> kDraws = {
      "next_u64", "uniform01",        "uniform",   "uniform_int", "normal",
      "bernoulli", "truncated_normal", "permutation", "shuffle",   "split",
  };
  return kDraws;
}

const std::set<std::string>& mutating_methods() {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "insert", "erase", "clear", "resize", "pop_back",
  };
  return kMutators;
}

bool assign_punct(const Token& t) {
  if (t.kind != Tok::kPunct) return false;
  return t.text == "=" || t.text == "+=" || t.text == "-=" || t.text == "*=" ||
         t.text == "/=" || t.text == "%=" || t.text == "&=" || t.text == "|=" ||
         t.text == "^=" || t.text == "<<=" || t.text == ">>=";
}

/// Walks an lvalue chain starting at the base identifier `i`:
///   base (.ident | ->ident | [expr])*
/// Fills the token index just past the chain, whether any subscript appeared,
/// and the subscript index ranges.
struct Chain {
  std::size_t end = 0;  // first token after the chain
  bool subscripted = false;
  std::vector<std::pair<std::size_t, std::size_t>> indices;
  std::string last_member;  // trailing `.member` name if the chain ends there
};

Chain walk_chain(const std::vector<Token>& tokens, std::size_t i, std::size_t last) {
  Chain chain;
  std::size_t j = i + 1;
  while (j < last) {
    if ((is_punct(tokens[j], ".") || is_punct(tokens[j], "->")) && j + 1 < last &&
        tokens[j + 1].kind == Tok::kIdent) {
      chain.last_member = tokens[j + 1].text;
      j += 2;
    } else if (is_punct(tokens[j], "[")) {
      const std::size_t close = match_forward(tokens, j);
      if (close >= last) break;
      chain.subscripted = true;
      chain.indices.push_back({j + 1, close});
      chain.last_member.clear();
      j = close + 1;
    } else {
      break;
    }
  }
  chain.end = j;
  return chain;
}

bool range_mentions(const std::vector<Token>& tokens, std::size_t first, std::size_t last,
                    const std::set<std::string>& names) {
  for (std::size_t i = first; i < last && i < tokens.size(); ++i) {
    if (tokens[i].kind == Tok::kIdent && names.count(tokens[i].text) != 0) return true;
  }
  return false;
}

/// True when the initializer range sanctions a local Rng for parallel use:
/// it derives a per-chunk stream (`Rng::derive_stream_seed(...)`) or calls a
/// stream factory whose name ends in `_rng` (e.g. faults->corruption_rng).
bool sanctioned_rng_init(const std::vector<Token>& tokens,
                         std::pair<std::size_t, std::size_t> init) {
  for (std::size_t i = init.first; i < init.second && i < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kIdent) continue;
    if (tokens[i].text == "derive_stream_seed") return true;
    const std::string& name = tokens[i].text;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, "_rng") == 0 && i + 1 < tokens.size() &&
        is_punct(tokens[i + 1], "(")) {
      return true;
    }
  }
  return false;
}

struct Lambda {
  std::size_t capture_open = 0;  // index of `[`
  std::size_t body_first = 0;    // first token inside `{`
  std::size_t body_last = 0;     // index of matching `}`
  bool valid = false;
  std::set<std::string> params;
};

Lambda parse_lambda(const std::vector<Token>& tokens, std::size_t open_bracket) {
  Lambda lambda;
  lambda.capture_open = open_bracket;
  const std::size_t capture_close = match_forward(tokens, open_bracket);
  if (capture_close >= tokens.size()) return lambda;
  std::size_t j = capture_close + 1;
  if (j < tokens.size() && is_punct(tokens[j], "(")) {
    const std::size_t params_close = match_forward(tokens, j);
    for (const auto& [first, last] : split_args(tokens, j, params_close)) {
      // Parameter name: the last identifier in the range (skips the type).
      for (std::size_t k = last; k > first; --k) {
        if (tokens[k - 1].kind == Tok::kIdent) {
          lambda.params.insert(tokens[k - 1].text);
          break;
        }
      }
    }
    j = params_close + 1;
  }
  // Skip specifiers / trailing return type up to the body brace.
  while (j < tokens.size() && !is_punct(tokens[j], "{")) ++j;
  if (j >= tokens.size()) return lambda;
  lambda.body_first = j + 1;
  lambda.body_last = match_forward(tokens, j);
  lambda.valid = lambda.body_last < tokens.size();
  return lambda;
}

void analyze_parallel_lambda(const LexedFile& file, const Lambda& lambda,
                             std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = file.tokens;
  Locals locals = collect_locals(tokens, lambda.body_first, lambda.body_last);
  auto is_safe_name = [&](const std::string& name) {
    return lambda.params.count(name) != 0 || locals.contains(name);
  };
  std::set<std::string> safe_names(lambda.params.begin(), lambda.params.end());
  for (const std::string& name : locals.names) safe_names.insert(name);

  for (std::size_t i = lambda.body_first; i < lambda.body_last; ++i) {
    const Token& t = tokens[i];
    // Prefix increment/decrement: ++target.
    if (t.kind == Tok::kPunct && (t.text == "++" || t.text == "--") && i + 1 < lambda.body_last &&
        tokens[i + 1].kind == Tok::kIdent) {
      const std::string& name = tokens[i + 1].text;
      if (!is_safe_name(name)) {
        findings.push_back({file.path, tokens[i + 1].line, "parallel-capture",
                            "increment of captured non-local `" + name +
                                "` inside a parallel lambda — accumulate per-chunk and fold "
                                "with ordered_reduce"});
      }
      continue;
    }
    if (t.kind != Tok::kIdent) continue;
    // Skip identifiers that are mid-chain (preceded by . -> or ::).
    if (i > 0 && (is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->") ||
                  is_punct(tokens[i - 1], "::"))) {
      continue;
    }
    const Chain chain = walk_chain(tokens, i, lambda.body_last);
    const std::string& base = t.text;

    // Rng draws: base.method( where method is a draw.
    if (!chain.last_member.empty() && rng_draw_methods().count(chain.last_member) != 0 &&
        chain.end < lambda.body_last && is_punct(tokens[chain.end], "(")) {
      bool sanctioned = lambda.params.count(base) != 0;
      if (!sanctioned) {
        const auto* init = locals.init_of(base);
        sanctioned = init != nullptr && sanctioned_rng_init(tokens, *init);
      }
      if (!sanctioned) {
        findings.push_back({file.path, t.line, "parallel-rng",
                            "`" + base + "." + chain.last_member +
                                "` draws inside a parallel lambda from a stream not derived "
                                "per-chunk — seed a local Rng via Rng::derive_stream_seed or a "
                                "*_rng factory"});
      }
      continue;
    }

    // Mutating container method on a captured object.
    if (!chain.last_member.empty() && mutating_methods().count(chain.last_member) != 0 &&
        chain.end < lambda.body_last && is_punct(tokens[chain.end], "(") &&
        !is_safe_name(base) && !chain.subscripted) {
      findings.push_back({file.path, t.line, "parallel-capture",
                          "`" + base + "." + chain.last_member +
                              "(...)` mutates captured non-local state inside a parallel "
                              "lambda — collect per-chunk results and merge serially"});
      continue;
    }

    // Assignments: target chain followed by an assignment operator (or ++/--).
    const bool assigns =
        chain.end < lambda.body_last &&
        (assign_punct(tokens[chain.end]) || is_punct(tokens[chain.end], "++") ||
         is_punct(tokens[chain.end], "--"));
    if (!assigns) continue;
    if (is_safe_name(base)) continue;
    if (chain.subscripted) {
      // Disjoint-slot pattern: writing arr[i] where the index is derived from
      // a lambda parameter or a body local is the sanctioned way to produce
      // parallel output. A subscript mentioning neither is a shared slot.
      bool derived = false;
      for (const auto& index : chain.indices) {
        if (range_mentions(tokens, index.first, index.second, safe_names)) derived = true;
      }
      if (derived) continue;
      findings.push_back({file.path, t.line, "parallel-capture",
                          "write to `" + base +
                              "[...]` with an index not derived from the lambda's parameters — "
                              "threads may collide on one slot"});
      continue;
    }
    findings.push_back({file.path, t.line, "parallel-capture",
                        "write to by-reference-captured `" + base +
                            "` inside a parallel lambda — race; write to a per-chunk slot or "
                            "fold with ordered_reduce"});
  }
}

/// File-local named lambdas: `name = [ ... ] ... { ... }` at any scope, so a
/// lambda defined once and handed to run_chunks by name is still analyzed.
std::size_t named_lambda_bracket(const std::vector<Token>& tokens, const std::string& name) {
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind == Tok::kIdent && tokens[i].text == name &&
        is_punct(tokens[i + 1], "=") && is_punct(tokens[i + 2], "[")) {
      return i + 2;
    }
  }
  return tokens.size();
}

void check_parallel_calls(const LexedFile& file, std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = file.tokens;
  std::set<std::size_t> analyzed;  // capture-open indices already handled
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kIdent) continue;
    const std::string& callee = tokens[i].text;
    const bool entry = callee == "parallel_for" || callee == "run_chunks" ||
                       callee == "ordered_reduce";
    if (!entry || !is_punct(tokens[i + 1], "(")) continue;
    const std::size_t close = match_forward(tokens, i + 1);
    if (close >= tokens.size()) continue;
    const auto args = split_args(tokens, i + 1, close);
    for (std::size_t a = 0; a < args.size(); ++a) {
      // ordered_reduce's final argument is the reduce step, which runs
      // serially in chunk order — captured accumulation there is the point.
      if (callee == "ordered_reduce" && a + 1 == args.size()) continue;
      const auto [first, last] = args[a];
      std::size_t bracket = tokens.size();
      if (first < last && is_punct(tokens[first], "[")) {
        bracket = first;
      } else if (last == first + 1 && tokens[first].kind == Tok::kIdent) {
        bracket = named_lambda_bracket(tokens, tokens[first].text);
      }
      if (bracket >= tokens.size() || !analyzed.insert(bracket).second) continue;
      const Lambda lambda = parse_lambda(tokens, bracket);
      if (lambda.valid) analyze_parallel_lambda(file, lambda, findings);
    }
  }
}

void check_unordered_iteration(const LexedFile& file, std::vector<Finding>& findings) {
  const std::vector<Token>& tokens = file.tokens;
  // Names declared with an unordered container type anywhere in the file.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kIdent) continue;
    const std::string& t = tokens[i].text;
    if (t != "unordered_map" && t != "unordered_set" && t != "unordered_multimap" &&
        t != "unordered_multiset") {
      continue;
    }
    if (!is_punct(tokens[i + 1], "<")) continue;
    // Find the matching `>` by angle counting (tolerates `>>`).
    int angle = 0;
    std::size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].kind != Tok::kPunct) continue;
      if (tokens[j].text == "<") ++angle;
      if (tokens[j].text == ">") --angle;
      if (tokens[j].text == ">>") angle -= 2;
      if (angle <= 0) break;
    }
    if (j + 1 < tokens.size() && tokens[j + 1].kind == Tok::kIdent) {
      unordered_names.insert(tokens[j + 1].text);
    }
  }
  if (unordered_names.empty()) return;

  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "for") || !is_punct(tokens[i + 1], "(")) continue;
    const std::size_t close = match_forward(tokens, i + 1);
    if (close >= tokens.size()) continue;
    // Range-for: a top-level `:` inside the parens.
    std::size_t colon = tokens.size();
    int depth = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (tokens[j].kind != Tok::kPunct) continue;
      const std::string& p = tokens[j].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") --depth;
      if (p == ":" && depth == 0 && !(j > 0 && is_punct(tokens[j - 1], ":"))) {
        colon = j;
        break;
      }
    }
    if (colon >= tokens.size()) continue;
    if (!range_mentions(tokens, colon + 1, close, unordered_names)) continue;
    // Body: `{ ... }` or a single statement up to `;`.
    std::size_t body_first = close + 1;
    std::size_t body_last = body_first;
    if (body_first < tokens.size() && is_punct(tokens[body_first], "{")) {
      body_last = match_forward(tokens, body_first);
      ++body_first;
    } else {
      while (body_last < tokens.size() && !is_punct(tokens[body_last], ";")) ++body_last;
    }
    for (std::size_t j = body_first; j < body_last && j < tokens.size(); ++j) {
      if (tokens[j].kind != Tok::kIdent) continue;
      const std::string& name = tokens[j].text;
      const bool hashes = name == "sha256" || name == "crc32" || name == "hash_combine" ||
                          name == "serialize" || name.rfind("put_", 0) == 0;
      if (hashes && j + 1 < tokens.size() &&
          (is_punct(tokens[j + 1], "(") ||
           (j > 0 && (is_punct(tokens[j - 1], ".") || is_punct(tokens[j - 1], "->"))))) {
        findings.push_back(
            {file.path, tokens[i].line, "unordered-hash-iter",
             "iteration over unordered container reaches `" + name +
                 "` — visit order is implementation-defined and would fork any hash or "
                 "serialized stream; use std::map/std::set or sort first"});
        break;
      }
    }
  }
}

}  // namespace

void check_parallel(const LexedFile& file, std::vector<Finding>& findings) {
  check_parallel_calls(file, findings);
  check_unordered_iteration(file, findings);
}

}  // namespace tfl_analyze
