// tfl-analyze core: shared token-walking helpers and the three semantic rule
// passes. See docs/STATIC_ANALYSIS.md for the rule catalog.
//
// The analyzer is a library (tfl_analyze_lib) so the test suite can run the
// passes in-process against both embedded fixtures and the real src/ tree —
// in particular the schema-drift mutation test, which rewrites one codec op
// in a copied file set and asserts the pass notices.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/lexer.h"
#include "lint_common.h"

namespace tradefl {
class ThreadPool;
}

namespace tfl_analyze {

struct SourceFile {
  std::string path;     // normalized, forward slashes
  std::string content;  // full file text
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
};

// ---------------------------------------------------------------------------
// Token-walking helpers shared by the rule passes.
// ---------------------------------------------------------------------------

/// Index of the token matching the opener at `open` (one of ( [ {), treating
/// the three bracket kinds as one balanced family. Returns tokens.size() when
/// unbalanced.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open);

/// Splits the top-level comma-separated ranges inside (open, close). Each
/// element is a [first, last) token index pair.
std::vector<std::pair<std::size_t, std::size_t>> split_args(const std::vector<Token>& tokens,
                                                            std::size_t open, std::size_t close);

/// Local bindings declared inside a token range (declaration heuristics:
/// `Type name = ...`, `Type name;`, `Type name(...)`, `auto& name : ...`
/// range-for bindings, lambda parameters must be added by the caller).
struct Locals {
  std::vector<std::string> names;
  /// Initializer token range for each name ([0,0) when none).
  std::vector<std::pair<std::size_t, std::size_t>> inits;

  bool contains(const std::string& name) const;
  /// Initializer range of `name`, or nullptr.
  const std::pair<std::size_t, std::size_t>* init_of(const std::string& name) const;
};

/// Scans [first, last) for local declarations.
Locals collect_locals(const std::vector<Token>& tokens, std::size_t first, std::size_t last);

// ---------------------------------------------------------------------------
// Schema pass data model, exported so tests can assert codec-pair coverage
// and drive the mutation check.
// ---------------------------------------------------------------------------

struct CodecOp {
  std::string type;      // primitive: u8, u32, u64, i64, bool, f32, f64,
                         // string, bytes, f32s, f64s, u64s
  int depth = 0;         // enclosing loop depth at the call site (+ expansion)
  std::string file;      // file of the primitive call (may be a helper's file)
  std::size_t line = 0;  // line of the primitive call
};

struct CodecPair {
  std::string writer_name;
  std::string reader_name;
  std::string writer_file;
  std::string reader_file;
  std::size_t writer_line = 0;
  std::size_t reader_line = 0;
  std::vector<CodecOp> writer_ops;  // fully expanded primitive sequence
  std::vector<CodecOp> reader_ops;
};

struct Options {
  /// Vocabulary file contents split into lines; empty disables the obs rules.
  std::vector<std::string> vocab_lines;
  /// Path reported for obs-orphan findings (the vocabulary file itself).
  std::string vocab_path;
};

struct Analysis {
  std::vector<tfl_tools::Finding> findings;
  std::vector<CodecPair> pairs;  // every compared writer/reader pair
};

// ---------------------------------------------------------------------------
// Rule passes. check_parallel is per-file; check_schema and check_vocab are
// cross-TU (they see every scanned file at once).
// ---------------------------------------------------------------------------

/// parallel-capture, parallel-rng, unordered-hash-iter.
void check_parallel(const LexedFile& file, std::vector<tfl_tools::Finding>& findings);

/// schema-drift, schema-unpaired. Appends every compared pair to out.pairs.
void check_schema(const std::vector<LexedFile>& files, Analysis& out);

/// obs-vocab, obs-orphan. No-op when options.vocab_lines is empty.
void check_vocab(const std::vector<LexedFile>& files, const Options& options,
                 std::vector<tfl_tools::Finding>& findings);

/// Full analysis: lexes every file (in parallel when `pool` is non-null,
/// deterministically either way) and runs all passes. Findings come back
/// sorted by (path, line, rule).
Analysis analyze(const std::vector<SourceFile>& files, const Options& options,
                 tradefl::ThreadPool* pool = nullptr);

/// The tfl-analyze rule catalog (shared by --list-rules and baseline
/// validation).
const std::vector<tfl_tools::RuleInfo>& rule_catalog();

}  // namespace tfl_analyze
