// A real (if deliberately small) C++ lexer for tfl-analyze. Unlike
// tfl-lint's line scrubber, this produces a token stream the semantic rules
// can walk: identifiers, numbers, string/char literals, and punctuators, with
// 1-based source lines attached. It handles the lexical corners that break
// regex tools:
//
//   - backslash-newline line splices (removed before tokenization, with the
//     original line numbers preserved),
//   - raw string literals `R"delim( ... )delim"` with encoding prefixes
//     (splices do NOT apply inside them, per the standard's phase-1 revert),
//   - digit separators (1'000'000) vs char literals,
//   - preprocessor directives (skipped wholesale; rules only see real code),
//   - comments.
//
// It does not attempt preprocessing or template-angle-bracket disambiguation;
// the rules that need brackets track them heuristically.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tfl_analyze {

enum class Tok {
  kIdent,    // identifiers and keywords
  kNumber,   // integer / floating literals, separators and suffixes included
  kString,   // string literal; text holds the raw contents (no quotes)
  kChar,     // char literal; text holds the raw contents (no quotes)
  kPunct,    // operators and punctuation, maximal munch (`::`, `->`, ...)
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based line of the token's first character
};

/// Tokenizes `text`. Never fails: ill-formed input degrades to best-effort
/// single-character punctuator tokens.
std::vector<Token> lex(const std::string& text);

/// Convenience predicates used throughout the rule passes.
bool is_punct(const Token& token, const char* spelling);
bool is_ident(const Token& token, const char* spelling);

}  // namespace tfl_analyze
