#include "analyze/analyzer.h"

#include <algorithm>
#include <set>

#include "common/parallel.h"

namespace tfl_analyze {

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kPunct) continue;
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

std::vector<std::pair<std::size_t, std::size_t>> split_args(const std::vector<Token>& tokens,
                                                            std::size_t open, std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  if (open + 1 >= close) return args;
  std::size_t first = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (tokens[i].kind != Tok::kPunct) continue;
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}") {
      --depth;
    } else if (t == "," && depth == 0) {
      args.push_back({first, i});
      first = i + 1;
    }
  }
  args.push_back({first, close});
  return args;
}

bool Locals::contains(const std::string& name) const {
  return std::find(names.begin(), names.end(), name) != names.end();
}

const std::pair<std::size_t, std::size_t>* Locals::init_of(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return &inits[i];
  }
  return nullptr;
}

namespace {

const std::set<std::string>& non_type_keywords() {
  static const std::set<std::string> kWords = {
      "return", "if",     "else",   "for",      "while",  "do",     "switch", "case",
      "break",  "continue", "goto", "new",      "delete", "throw",  "sizeof", "typedef",
      "using",  "namespace", "class", "struct", "enum",   "public", "private", "protected",
      "true",   "false",  "nullptr", "this",    "operator", "template", "typename",
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast", "co_return",
      "co_await", "co_yield", "default",
  };
  return kWords;
}

/// Tokens that may appear inside a declaration's type part.
bool type_component(const Token& t) {
  if (t.kind == Tok::kIdent) return non_type_keywords().count(t.text) == 0;
  if (t.kind != Tok::kPunct) return false;
  return t.text == "::" || t.text == "<" || t.text == ">" || t.text == "," || t.text == "*" ||
         t.text == "&" || t.text == "&&" || t.text == ">>";
}

}  // namespace

Locals collect_locals(const std::vector<Token>& tokens, std::size_t first, std::size_t last) {
  Locals locals;
  bool stmt_start = true;
  for (std::size_t i = first; i < last; ++i) {
    const Token& t = tokens[i];
    if (t.kind == Tok::kPunct && (t.text == ";" || t.text == "{" || t.text == "}")) {
      stmt_start = true;
      continue;
    }
    // Range-for binding: `for ( <type> name : range )` — register name.
    if (is_ident(t, "for") && i + 1 < last && is_punct(tokens[i + 1], "(")) {
      const std::size_t close = match_forward(tokens, i + 1);
      std::size_t colon = tokens.size();
      int depth = 0;
      for (std::size_t j = i + 2; j < close && j < last; ++j) {
        if (tokens[j].kind != Tok::kPunct) continue;
        if (tokens[j].text == "(" || tokens[j].text == "[" || tokens[j].text == "{") ++depth;
        if (tokens[j].text == ")" || tokens[j].text == "]" || tokens[j].text == "}") --depth;
        if (tokens[j].text == ":" && depth == 0) {
          colon = j;
          break;
        }
      }
      if (colon < tokens.size() && colon > i + 2 && tokens[colon - 1].kind == Tok::kIdent) {
        locals.names.push_back(tokens[colon - 1].text);
        locals.inits.push_back({colon + 1, std::min(close, last)});
      }
      continue;
    }
    // A control-statement header opens a declaration context: classic
    // `for (std::size_t i = lo; ...)` and `if (auto x = f())` declare names.
    if (t.kind == Tok::kPunct && t.text == "(" && i > first &&
        tokens[i - 1].kind == Tok::kIdent &&
        (tokens[i - 1].text == "for" || tokens[i - 1].text == "while" ||
         tokens[i - 1].text == "if" || tokens[i - 1].text == "switch")) {
      stmt_start = true;
      continue;
    }
    if (!stmt_start) continue;
    if (t.kind != Tok::kIdent || non_type_keywords().count(t.text) != 0) {
      if (!(t.kind == Tok::kIdent && (t.text == "const" || t.text == "constexpr" ||
                                      t.text == "auto" || t.text == "unsigned" ||
                                      t.text == "signed" || t.text == "long" ||
                                      t.text == "short"))) {
        stmt_start = false;
      }
      continue;
    }
    // Possible declaration: consume a type-ish run, then expect `name` with a
    // declarator-ish follower.
    std::size_t j = i;
    int angle = 0;
    while (j < last && (type_component(tokens[j]) ||
                        (tokens[j].kind == Tok::kIdent &&
                         (tokens[j].text == "const" || tokens[j].text == "auto" ||
                          tokens[j].text == "unsigned" || tokens[j].text == "signed" ||
                          tokens[j].text == "long" || tokens[j].text == "short")))) {
      if (tokens[j].kind == Tok::kPunct) {
        if (tokens[j].text == "<") ++angle;
        if (tokens[j].text == ">") --angle;
        if (tokens[j].text == ">>") angle -= 2;
        if (tokens[j].text == "," && angle <= 0) break;
      }
      ++j;
    }
    // j now points past the candidate run; the declared name is the last
    // identifier in the run, and it must be preceded by at least one other
    // type token and followed by = ; ( { or , (multi-declarator).
    if (j > i + 1 && j <= last && tokens[j - 1].kind == Tok::kIdent && angle <= 0 &&
        j < last && tokens[j].kind == Tok::kPunct &&
        (tokens[j].text == "=" || tokens[j].text == ";" || tokens[j].text == "(" ||
         tokens[j].text == "{" || tokens[j].text == ",")) {
      // Declarator chain: `float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f;`
      // declares every name separated by a top-level comma. Registration
      // walks the whole chain here; the outer scan then resumes at the
      // follower so declarations inside initializers (nested lambda bodies)
      // are still visited.
      std::size_t name_idx = j - 1;
      while (name_idx < last && tokens[name_idx].kind == Tok::kIdent) {
        const std::string name = tokens[name_idx].text;
        const std::size_t follow = name_idx + 1;
        std::size_t init_first = 0;
        std::size_t init_last = 0;
        std::size_t after = follow;  // `,` or `;` ending this declarator
        if (follow < last && is_punct(tokens[follow], "=")) {
          init_first = follow + 1;
          int depth = 0;
          std::size_t k = follow + 1;
          while (k < last) {
            if (tokens[k].kind == Tok::kPunct) {
              const std::string& p = tokens[k].text;
              if (p == "(" || p == "[" || p == "{") ++depth;
              if (p == ")" || p == "]" || p == "}") --depth;
              if ((p == ";" || p == ",") && depth == 0) break;
            }
            ++k;
          }
          init_last = k;
          after = k;
        } else if (follow < last &&
                   (is_punct(tokens[follow], "(") || is_punct(tokens[follow], "{"))) {
          const std::size_t close = match_forward(tokens, follow);
          init_first = follow + 1;
          init_last = std::min(close, last);
          after = std::min(close + 1, last);
        }
        locals.names.push_back(name);
        locals.inits.push_back({init_first, init_last});
        if (after < last && is_punct(tokens[after], ",") && after + 1 < last &&
            tokens[after + 1].kind == Tok::kIdent) {
          name_idx = after + 1;
          continue;
        }
        break;
      }
      i = j;  // resume just past the first declarator's name
    }
    stmt_start = false;
  }
  return locals;
}

const std::vector<tfl_tools::RuleInfo>& rule_catalog() {
  static const std::vector<tfl_tools::RuleInfo> kRules = {
      {"parallel-capture",
       "write to by-reference-captured non-local state inside a parallel lambda "
       "(parallel_for/run_chunks/ordered_reduce map)"},
      {"parallel-rng",
       "Rng draw inside a parallel lambda without Rng::derive_stream_seed or a "
       "*_rng stream factory"},
      {"unordered-hash-iter",
       "iteration over std::unordered_* whose body feeds hashing/serialization"},
      {"schema-drift",
       "paired snapshot writer/reader op sequences disagree (count/type/order)"},
      {"schema-unpaired", "codec writer or reader with no counterpart to check against"},
      {"obs-vocab", "TFL_* metric/span name missing from the registered vocabulary"},
      {"obs-orphan", "vocabulary entry matching no TFL_* site in the scanned tree"},
  };
  return kRules;
}

Analysis analyze(const std::vector<SourceFile>& files, const Options& options,
                 tradefl::ThreadPool* pool) {
  std::vector<LexedFile> lexed(files.size());
  std::vector<std::vector<tfl_tools::Finding>> per_file(files.size());
  // Lexing and the per-file pass are embarrassingly parallel; results land in
  // per-index slots, so the merge below is deterministic for any pool size.
  tradefl::parallel_for(pool, 0, files.size(), 1,
                        [&](std::size_t lo, std::size_t hi, std::size_t) {
                          for (std::size_t i = lo; i < hi; ++i) {
                            lexed[i].path = files[i].path;
                            lexed[i].tokens = lex(files[i].content);
                            check_parallel(lexed[i], per_file[i]);
                          }
                        });

  Analysis out;
  for (std::vector<tfl_tools::Finding>& findings : per_file) {
    out.findings.insert(out.findings.end(), findings.begin(), findings.end());
  }
  check_schema(lexed, out);
  check_vocab(lexed, options, out.findings);
  std::sort(out.findings.begin(), out.findings.end(), tfl_tools::finding_before);
  return out;
}

}  // namespace tfl_analyze
