// schema-drift / schema-unpaired: cross-TU snapshot codec checking.
//
// Every function or lambda whose body touches a codec (SnapshotWriter /
// SnapshotReader / ByteWriter / ByteReader put_*/get_* primitives, or calls
// to other codec helpers) becomes a "unit". Units expand recursively —
// helper calls are replaced by the helper's primitive sequence, with loop
// depth accumulated — so a writer and its paired reader can be compared as
// flat (primitive type, loop depth) sequences even when they factor their
// helpers differently.
//
// Pairing:
//   1. by name: put_X/get_X, write_X/read_X, save_X/restore_X|load_X,
//      serialize_X/decode_X|deserialize_X, encode_X/decode_X — same file
//      preferred, else a unique global match;
//   2. leftover pure writers/readers with direct primitive ops, not absorbed
//      into an already-paired unit, are order-paired within their file
//      (covers checkpoint writers paired with anonymous decode_snapshot
//      lambdas).
// Anything still unpaired is reported as schema-unpaired.
//
// Digest-only writers (the unit hashes its own payload — `crc32(...)` over
// `.payload()` — rather than persisting it) have no read side by design and
// are exempt.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyzer.h"

namespace tfl_analyze {

namespace {

using tfl_tools::Finding;

const std::set<std::string>& primitive_types() {
  static const std::set<std::string> kTypes = {
      "u8", "u32", "u64", "i64", "bool", "f32", "f64", "string", "bytes",
      "f32s", "f64s", "u64s",
  };
  return kTypes;
}

bool codec_callee_name(const std::string& name) {
  static const char* kPrefixes[] = {"put_",  "get_",       "write_",     "read_",
                                    "save_", "restore_",   "load_",      "encode_",
                                    "decode_", "serialize", "deserialize"};
  for (const char* prefix : kPrefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

/// put_u32 -> ("u32", put=true); returns empty type for non-primitives.
std::pair<std::string, bool> primitive_of(const std::string& name) {
  if (name.rfind("put_", 0) == 0 && primitive_types().count(name.substr(4)) != 0) {
    return {name.substr(4), true};
  }
  if (name.rfind("get_", 0) == 0 && primitive_types().count(name.substr(4)) != 0) {
    return {name.substr(4), false};
  }
  return {"", false};
}

struct Event {
  bool is_call = false;
  // primitive
  std::string type;
  bool is_put = false;
  std::size_t line = 0;
  // call
  std::string callee;
  int depth = 0;
};

struct Unit {
  std::string name;
  std::string file;
  std::size_t line = 0;
  bool is_lambda = false;
  std::vector<Event> events;
  bool digest = false;       // hashes its own payload; write-only by design
  std::size_t direct_prims = 0;

  // Filled by expansion.
  std::vector<CodecOp> ops;
  int puts = 0;
  int gets = 0;
  bool expanded = false;
  bool expanding = false;
  std::vector<Unit*> resolved;  // units this one calls
  bool paired = false;
};

struct Range {
  std::size_t first = 0;
  std::size_t last = 0;
};

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",   "while", "switch",        "catch",  "return", "sizeof",
      "do",     "else",  "new",   "delete",        "assert", "throw",  "decltype",
      "alignof", "case", "goto",  "static_assert", "co_return",
  };
  return kWords;
}

/// Could the token appear between a function's `)` and its body `{`
/// (specifiers, trailing return type, ctor init list)?
bool header_tail_token(const Token& t) {
  if (t.kind == Tok::kIdent) return true;  // const, noexcept, type names, try
  if (t.kind == Tok::kNumber) return true;  // noexcept(...) arguments etc.
  if (t.kind != Tok::kPunct) return false;
  return t.text == "->" || t.text == "::" || t.text == "<" || t.text == ">" ||
         t.text == ">>" || t.text == "&" || t.text == "&&" || t.text == "*" ||
         t.text == "," || t.text == ":" || t.text == "(" || t.text == ")" ||
         t.text == "[" || t.text == "]" || t.text == "{" || t.text == "}" || t.text == "...";
}

/// True when `[` at `i` opens a lambda introducer (vs subscript/attribute).
bool lambda_intro(const std::vector<Token>& tokens, std::size_t i) {
  if (i + 1 < tokens.size() && is_punct(tokens[i + 1], "[")) return false;  // [[attr]]
  if (i > 0 && is_punct(tokens[i - 1], "[")) return false;
  if (i == 0) return true;
  const Token& prev = tokens[i - 1];
  if (prev.kind == Tok::kIdent) return prev.text == "return" || prev.text == "co_return";
  if (prev.kind != Tok::kPunct) return false;  // number/string ["..."[0]]
  const std::string& p = prev.text;
  return p == "(" || p == "," || p == "=" || p == "{" || p == ";" || p == ":" || p == "?" ||
         p == "&&" || p == "||" || p == "!" || p == "}";
}

struct LambdaDef {
  Range body;
  std::string name;  // assigned name for `ident = [...]`, else synthetic
  std::size_t line = 0;
};

/// Finds every lambda body in the file. Used both to register lambda units
/// and to carve lambda ranges out of their enclosing function's body.
std::vector<LambdaDef> find_lambdas(const std::vector<Token>& tokens) {
  std::vector<LambdaDef> lambdas;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_punct(tokens[i], "[") || !lambda_intro(tokens, i)) continue;
    const std::size_t capture_close = match_forward(tokens, i);
    if (capture_close >= tokens.size()) continue;
    std::size_t j = capture_close + 1;
    if (j < tokens.size() && is_punct(tokens[j], "(")) j = match_forward(tokens, j) + 1;
    // Specifiers / trailing return type, bounded so a misdetected subscript
    // cannot swallow the file.
    bool ok = true;
    std::size_t guard = 0;
    while (j < tokens.size() && !is_punct(tokens[j], "{")) {
      if (is_punct(tokens[j], "(")) {
        j = match_forward(tokens, j) + 1;
      } else if (header_tail_token(tokens[j]) && !is_punct(tokens[j], "{") &&
                 !is_punct(tokens[j], "}")) {
        ++j;
      } else {
        ok = false;
        break;
      }
      if (++guard > 32) {
        ok = false;
        break;
      }
    }
    if (!ok || j >= tokens.size()) continue;
    const std::size_t body_close = match_forward(tokens, j);
    if (body_close >= tokens.size()) continue;
    LambdaDef def;
    def.body = {j + 1, body_close};
    def.line = tokens[i].line;
    if (i >= 2 && is_punct(tokens[i - 1], "=") && tokens[i - 2].kind == Tok::kIdent) {
      def.name = tokens[i - 2].text;
    } else {
      def.name = "<lambda:" + std::to_string(tokens[i].line) + ">";
    }
    lambdas.push_back(def);
  }
  return lambdas;
}

struct FnDef {
  Range body;
  std::string name;
  std::size_t line = 0;
};

std::vector<FnDef> find_functions(const std::vector<Token>& tokens) {
  std::vector<FnDef> fns;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kIdent || !is_punct(tokens[i + 1], "(")) continue;
    if (control_keywords().count(tokens[i].text) != 0) continue;
    if (i > 0 && (is_punct(tokens[i - 1], ".") || is_punct(tokens[i - 1], "->"))) continue;
    const std::size_t params_close = match_forward(tokens, i + 1);
    if (params_close >= tokens.size()) continue;
    // Walk the header tail; a real definition reaches `{` through specifier /
    // init-list / trailing-return tokens only.
    std::size_t j = params_close + 1;
    bool ok = true;
    std::size_t guard = 0;
    while (j < tokens.size() && !is_punct(tokens[j], "{")) {
      if (is_punct(tokens[j], ";") || is_punct(tokens[j], "=") || is_punct(tokens[j], "}")) {
        ok = false;  // declaration, call statement, or deleted/defaulted
        break;
      }
      if (is_punct(tokens[j], "(")) {
        j = match_forward(tokens, j) + 1;  // ctor init-list element
      } else if (header_tail_token(tokens[j])) {
        ++j;
      } else {
        ok = false;
        break;
      }
      if (++guard > 64) {
        ok = false;
        break;
      }
    }
    if (!ok || j >= tokens.size()) continue;
    const std::size_t body_close = match_forward(tokens, j);
    if (body_close >= tokens.size()) continue;
    fns.push_back({{j + 1, body_close}, tokens[i].text, tokens[i].line});
  }
  return fns;
}

/// Tracks enclosing loop depth while iterating a token range in order.
class LoopTracker {
 public:
  LoopTracker(const std::vector<Token>& tokens, std::size_t last)
      : tokens_(tokens), last_(last) {}

  /// Call with monotonically increasing i before inspecting tokens[i].
  void advance(std::size_t i) {
    while (!ends_.empty() && i >= ends_.back()) ends_.pop_back();
    const Token& t = tokens_[i];
    if (t.kind != Tok::kIdent) return;
    if (t.text == "do" && i + 1 < last_ && is_punct(tokens_[i + 1], "{")) {
      ends_.push_back(match_forward(tokens_, i + 1));
      return;
    }
    if ((t.text != "for" && t.text != "while") || i + 1 >= last_ ||
        !is_punct(tokens_[i + 1], "(")) {
      return;
    }
    const std::size_t header_close = match_forward(tokens_, i + 1);
    if (header_close >= last_) return;
    std::size_t body = header_close + 1;
    if (body < last_ && is_punct(tokens_[body], "{")) {
      ends_.push_back(match_forward(tokens_, body));
    } else {
      // Braceless body: runs to the next `;` at bracket depth 0.
      int depth = 0;
      std::size_t k = body;
      while (k < last_) {
        if (tokens_[k].kind == Tok::kPunct) {
          const std::string& p = tokens_[k].text;
          if (p == "(" || p == "[" || p == "{") ++depth;
          if (p == ")" || p == "]" || p == "}") --depth;
          if (p == ";" && depth == 0) break;
        }
        ++k;
      }
      ends_.push_back(k + 1);
    }
  }

  int depth() const { return static_cast<int>(ends_.size()); }

 private:
  const std::vector<Token>& tokens_;
  std::size_t last_;
  std::vector<std::size_t> ends_;
};

/// Extracts the ordered primitive/call events of a body range, skipping any
/// nested lambda ranges (they are their own units).
void extract_events(const std::vector<Token>& tokens, const Range& body,
                    const std::vector<Range>& skip, Unit& unit) {
  LoopTracker loops(tokens, body.last);
  bool saw_crc = false;
  bool saw_payload = false;
  for (std::size_t i = body.first; i < body.last; ++i) {
    bool skipped = false;
    for (const Range& range : skip) {
      if (i >= range.first && i < range.last && range.first > body.first &&
          range.last <= body.last) {
        i = range.last - 1;  // jump past the nested lambda body
        skipped = true;
        break;
      }
    }
    if (skipped) continue;
    loops.advance(i);
    const Token& t = tokens[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "crc32" || t.text == "sha256") saw_crc = true;
    if (t.text == "payload") saw_payload = true;
    if (i + 1 >= body.last || !is_punct(tokens[i + 1], "(")) continue;
    const auto [prim, is_put] = primitive_of(t.text);
    if (!prim.empty()) {
      // A schema read consumes the stream and takes no arguments; a keyed
      // config getter (`options.get_string("scheme", "dbr")`) is not a codec
      // read despite the name.
      if (!is_put && !(i + 2 < body.last && is_punct(tokens[i + 2], ")"))) continue;
      Event event;
      event.type = prim;
      event.is_put = is_put;
      event.line = t.line;
      event.depth = loops.depth();
      unit.events.push_back(event);
      ++unit.direct_prims;
      continue;
    }
    if (codec_callee_name(t.text)) {
      // Framed sub-payload, reader shape: `decode_block(reader.get_bytes())`
      // reads the frame first, then decodes it. Canonicalize to
      // bytes-then-call so it aligns with the writer's
      // `put_bytes(serialize_block(block))` token order.
      const std::size_t close = match_forward(tokens, i + 1);
      std::size_t framed_bytes = 0;
      for (std::size_t k = i + 2; k + 2 < close; ++k) {
        if (tokens[k].kind == Tok::kIdent && tokens[k].text == "get_bytes" &&
            is_punct(tokens[k + 1], "(") && is_punct(tokens[k + 2], ")")) {
          framed_bytes = k;
          break;
        }
      }
      if (framed_bytes != 0) {
        Event frame;
        frame.type = "bytes";
        frame.is_put = false;
        frame.line = tokens[framed_bytes].line;
        frame.depth = loops.depth();
        unit.events.push_back(frame);
        ++unit.direct_prims;
      }
      Event event;
      event.is_call = true;
      event.callee = t.text;
      event.line = t.line;
      event.depth = loops.depth();
      unit.events.push_back(event);
      if (framed_bytes != 0) i = close;  // args already represented
    }
  }
  unit.digest = saw_crc && saw_payload;
}

/// Codec primitive implementations — not schemas, so never units.
bool engine_file(const std::string& path) {
  return tfl_tools::path_ends_with(path, "common/snapshot.h") ||
         tfl_tools::path_ends_with(path, "common/snapshot.cpp") ||
         tfl_tools::path_ends_with(path, "chain/bytes.h") ||
         tfl_tools::path_ends_with(path, "chain/bytes.cpp");
}

/// Name with its codec prefix stripped: put_item -> item, decode_block ->
/// block. Empty when no prefix applies.
std::string codec_stem(const std::string& name) {
  static const char* kPrefixes[] = {"put_",     "get_",        "write_",  "read_",
                                    "save_",    "restore_",    "load_",   "encode_",
                                    "decode_",  "serialize_",  "deserialize_"};
  for (const char* prefix : kPrefixes) {
    const std::string p = prefix;
    if (name.size() > p.size() && name.rfind(p, 0) == 0) return name.substr(p.size());
  }
  return "";
}

/// Counterpart unit names for a codec helper, in either direction:
/// put_item -> get_item, decode_block -> {serialize_block, encode_block}, ...
std::vector<std::string> counterpart_names(const std::string& name) {
  static const std::pair<const char*, const char*> kPairs[] = {
      {"put_", "get_"},          {"write_", "read_"},       {"save_", "restore_"},
      {"save_", "load_"},        {"serialize_", "decode_"}, {"serialize_", "deserialize_"},
      {"encode_", "decode_"},
  };
  std::vector<std::string> out;
  for (const auto& [writer, reader] : kPairs) {
    const std::string w = writer;
    const std::string r = reader;
    if (name.rfind(w, 0) == 0) out.push_back(r + name.substr(w.size()));
    if (name.rfind(r, 0) == 0) out.push_back(w + name.substr(r.size()));
  }
  return out;
}

void expand(Unit& unit, const std::map<std::string, std::vector<Unit*>>& by_name) {
  if (unit.expanded || unit.expanding) return;
  unit.expanding = true;
  for (const Event& event : unit.events) {
    if (!event.is_call) {
      unit.ops.push_back({event.type, event.depth, unit.file, event.line});
      if (event.is_put) {
        ++unit.puts;
      } else {
        ++unit.gets;
      }
      continue;
    }
    const auto it = by_name.find(event.callee);
    if (it == by_name.end()) continue;
    Unit* callee = nullptr;
    for (Unit* candidate : it->second) {
      if (candidate->file == unit.file) {
        callee = candidate;
        break;
      }
    }
    if (callee == nullptr && it->second.size() == 1) callee = it->second.front();
    if (callee == nullptr || callee == &unit) continue;
    expand(*callee, by_name);
    // A callee with a name-paired counterpart is verified once, as its own
    // pair; callers see it as a single opaque op so a drift (or a baselined
    // exemption, like the abi variant codec) never propagates upward. Both
    // sides of the caller pair collapse to the same `#stem`, e.g.
    // serialize_block / decode_block -> #block.
    bool has_counterpart = false;
    for (const std::string& candidate : counterpart_names(callee->name)) {
      const auto candidates = by_name.find(candidate);
      if (candidates == by_name.end()) continue;
      // The counterpart must live in the callee's own file — a same-named
      // helper elsewhere (session.cpp's put_address vs blockchain.cpp's
      // raw-bytes get_address) is a different codec.
      for (const Unit* match : candidates->second) {
        if (match->file == callee->file) {
          has_counterpart = true;
          break;
        }
      }
      if (has_counterpart) break;
    }
    if (has_counterpart) {
      unit.ops.push_back({"#" + codec_stem(callee->name), event.depth, unit.file, event.line});
    } else {
      for (const CodecOp& op : callee->ops) {
        unit.ops.push_back({op.type, op.depth + event.depth, op.file, op.line});
      }
    }
    unit.puts += callee->puts;
    unit.gets += callee->gets;
    unit.resolved.push_back(callee);
  }
  unit.expanding = false;
  unit.expanded = true;
}

/// Reader-name candidates for a writer unit name, best first.
std::vector<std::string> reader_candidates(const std::string& writer) {
  struct Mapping {
    const char* writer_prefix;
    const char* reader_prefix;
  };
  static const Mapping kMaps[] = {
      {"put_", "get_"},          {"write_", "read_"},      {"save_", "restore_"},
      {"save_", "load_"},        {"serialize_", "decode_"}, {"serialize_", "deserialize_"},
      {"encode_", "decode_"},
  };
  std::vector<std::string> candidates;
  for (const Mapping& map : kMaps) {
    const std::string prefix = map.writer_prefix;
    if (writer.rfind(prefix, 0) == 0) {
      candidates.push_back(map.reader_prefix + writer.substr(prefix.size()));
    }
  }
  return candidates;
}

std::string describe_op(const CodecOp& op) {
  return op.type + "@" + op.file + ":" + std::to_string(op.line) + " (loop depth " +
         std::to_string(op.depth) + ")";
}

void compare_pair(Unit& writer, Unit& reader, Analysis& out) {
  writer.paired = true;
  reader.paired = true;
  CodecPair pair;
  pair.writer_name = writer.name;
  pair.reader_name = reader.name;
  pair.writer_file = writer.file;
  pair.reader_file = reader.file;
  pair.writer_line = writer.line;
  pair.reader_line = reader.line;
  pair.writer_ops = writer.ops;
  pair.reader_ops = reader.ops;
  out.pairs.push_back(pair);

  const std::size_t n = std::min(writer.ops.size(), reader.ops.size());
  for (std::size_t i = 0; i < n; ++i) {
    const CodecOp& w = writer.ops[i];
    const CodecOp& r = reader.ops[i];
    if (w.type != r.type || w.depth != r.depth) {
      out.findings.push_back(
          {writer.file, writer.line, "schema-drift",
           "codec pair `" + writer.name + "` / `" + reader.name + "`: op #" +
               std::to_string(i + 1) + " writes " + describe_op(w) + " but reads " +
               describe_op(r)});
      return;
    }
  }
  if (writer.ops.size() != reader.ops.size()) {
    const bool writer_longer = writer.ops.size() > reader.ops.size();
    const CodecOp& extra = writer_longer ? writer.ops[n] : reader.ops[n];
    out.findings.push_back(
        {writer.file, writer.line, "schema-drift",
         "codec pair `" + writer.name + "` / `" + reader.name + "`: writer has " +
             std::to_string(writer.ops.size()) + " ops, reader has " +
             std::to_string(reader.ops.size()) + " — first unmatched is " +
             (writer_longer ? "written " : "read ") + describe_op(extra)});
  }
}

}  // namespace

void check_schema(const std::vector<LexedFile>& files, Analysis& out) {
  std::vector<Unit> units;
  for (const LexedFile& file : files) {
    if (engine_file(file.path)) continue;
    const std::vector<LambdaDef> lambdas = find_lambdas(file.tokens);
    std::vector<Range> lambda_ranges;
    lambda_ranges.reserve(lambdas.size());
    for (const LambdaDef& def : lambdas) lambda_ranges.push_back(def.body);

    for (const FnDef& fn : find_functions(file.tokens)) {
      Unit unit;
      unit.name = fn.name;
      unit.file = file.path;
      unit.line = fn.line;
      extract_events(file.tokens, fn.body, lambda_ranges, unit);
      if (!unit.events.empty()) units.push_back(std::move(unit));
    }
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      Unit unit;
      unit.name = lambdas[i].name;
      unit.file = file.path;
      unit.line = lambdas[i].line;
      unit.is_lambda = true;
      // A lambda's own nested lambdas are separate units too.
      std::vector<Range> nested;
      for (std::size_t j = 0; j < lambdas.size(); ++j) {
        if (j != i && lambdas[j].body.first > lambdas[i].body.first &&
            lambdas[j].body.last <= lambdas[i].body.last) {
          nested.push_back(lambdas[j].body);
        }
      }
      extract_events(file.tokens, lambdas[i].body, nested, unit);
      if (!unit.events.empty()) units.push_back(std::move(unit));
    }
  }

  std::map<std::string, std::vector<Unit*>> by_name;
  for (Unit& unit : units) {
    if (!unit.is_lambda || unit.name[0] != '<') by_name[unit.name].push_back(&unit);
  }
  for (Unit& unit : units) expand(unit, by_name);

  auto pure_writer = [](const Unit& u) { return u.puts > 0 && u.gets == 0 && !u.digest; };
  auto pure_reader = [](const Unit& u) { return u.gets > 0 && u.puts == 0 && !u.digest; };

  // Phase 1: name pairing.
  for (Unit& writer : units) {
    if (!pure_writer(writer) || writer.paired) continue;
    for (const std::string& candidate : reader_candidates(writer.name)) {
      const auto it = by_name.find(candidate);
      if (it == by_name.end()) continue;
      Unit* reader = nullptr;
      for (Unit* u : it->second) {
        if (u->file == writer.file && pure_reader(*u) && !u->paired) {
          reader = u;
          break;
        }
      }
      if (reader == nullptr) {
        for (Unit* u : it->second) {
          if (pure_reader(*u) && !u->paired) {
            reader = reader == nullptr ? u : reader;
          }
        }
      }
      if (reader != nullptr) {
        compare_pair(writer, *reader, out);
        break;
      }
    }
  }

  // Absorption: helpers reachable from a paired unit are already covered by
  // their caller's expanded comparison.
  auto absorbed_closure = [&units]() {
    std::set<const Unit*> absorbed;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Unit& unit : units) {
        if (!unit.paired && absorbed.count(&unit) == 0) continue;
        for (const Unit* callee : unit.resolved) {
          if (absorbed.insert(callee).second) changed = true;
        }
      }
    }
    return absorbed;
  };
  std::set<const Unit*> absorbed = absorbed_closure();

  // Phase 2: order-pair the remaining root codecs within each file. This is
  // what links a named checkpoint writer to its anonymous decode_snapshot
  // reader lambda.
  std::map<std::string, std::vector<Unit*>> leftover_writers;
  std::map<std::string, std::vector<Unit*>> leftover_readers;
  for (Unit& unit : units) {
    if (unit.paired || absorbed.count(&unit) != 0 || unit.direct_prims == 0) continue;
    if (pure_writer(unit)) leftover_writers[unit.file].push_back(&unit);
    if (pure_reader(unit)) leftover_readers[unit.file].push_back(&unit);
  }
  for (auto& [file, writers] : leftover_writers) {
    std::vector<Unit*>& readers = leftover_readers[file];
    const std::size_t n = std::min(writers.size(), readers.size());
    for (std::size_t i = 0; i < n; ++i) compare_pair(*writers[i], *readers[i], out);
  }

  // Phase 3: anything still standing has no counterpart at all.
  absorbed = absorbed_closure();
  for (const Unit& unit : units) {
    if (unit.paired || absorbed.count(&unit) != 0 || unit.direct_prims == 0 || unit.digest) {
      continue;
    }
    if (pure_writer(unit)) {
      out.findings.push_back({unit.file, unit.line, "schema-unpaired",
                              "codec writer `" + unit.name +
                                  "` has no paired reader (no get_/read_/restore_/load_/"
                                  "decode_ counterpart, and no same-file order match)"});
    } else if (pure_reader(unit)) {
      out.findings.push_back({unit.file, unit.line, "schema-unpaired",
                              "codec reader `" + unit.name +
                                  "` has no paired writer (no put_/write_/save_/serialize_/"
                                  "encode_ counterpart, and no same-file order match)"});
    }
  }
}

}  // namespace tfl_analyze
