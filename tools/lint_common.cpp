#include "lint_common.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace tfl_tools {

namespace fs = std::filesystem;

bool finding_before(const Finding& a, const Finding& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  return a.rule < b.rule;
}

std::string format_rule_table(const std::vector<RuleInfo>& rules) {
  std::size_t width = 0;
  for (const RuleInfo& rule : rules) width = std::max(width, rule.id.size());
  std::ostringstream out;
  for (const RuleInfo& rule : rules) {
    out << rule.id << std::string(width - rule.id.size() + 2, ' ') << rule.summary << "\n";
  }
  return out.str();
}

namespace {

/// True when text[at] starts a raw-string literal (the opening `"` of R"...).
/// `at` points at the quote; the R (with optional encoding prefix) sits just
/// before it.
bool raw_string_quote(const std::string& text, std::size_t at) {
  if (at == 0 || text[at] != '"') return false;
  if (text[at - 1] != 'R') return false;
  // The R must begin the prefix token: R, u8R, uR, UR, LR. Whatever precedes
  // the prefix must not be an identifier character.
  std::size_t start = at - 1;
  if (start >= 2 && text[start - 2] == 'u' && text[start - 1] == '8') {
    start -= 2;
  } else if (start >= 1 &&
             (text[start - 1] == 'u' || text[start - 1] == 'U' || text[start - 1] == 'L')) {
    start -= 1;
  }
  return start == 0 || !is_ident_char(text[start - 1]);
}

}  // namespace

std::string scrub_source(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"' && raw_string_quote(out, i)) {
          // Raw string literal: find the delimiter, then the real terminator
          // `)delim"`. No escapes apply inside. Blank everything from the R
          // prefix through the closing quote (newlines preserved) so neither
          // the contents nor the delimiters can match a rule, and code after
          // the literal on the same line is scanned normally.
          std::size_t delim_end = i + 1;
          while (delim_end < out.size() && out[delim_end] != '(' && out[delim_end] != '\n' &&
                 delim_end - i - 1 <= 16) {
            ++delim_end;
          }
          if (delim_end >= out.size() || out[delim_end] != '(') break;  // ill-formed; bail
          const std::string closer =
              ")" + out.substr(i + 1, delim_end - i - 1) + "\"";
          std::size_t close_at = out.find(closer, delim_end + 1);
          const std::size_t literal_end =
              close_at == std::string::npos ? out.size() : close_at + closer.size();
          // Blank the prefix characters (R and any u8/u/U/L) too.
          std::size_t from = i - 1;
          while (from > 0 && is_ident_char(out[from - 1])) --from;
          for (std::size_t k = from; k < literal_end; ++k) {
            if (out[k] != '\n') out[k] = ' ';
          }
          i = literal_end == 0 ? 0 : literal_end - 1;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !is_ident_char(out[i - 1]))) {
          // A quote directly after an identifier/digit is a digit separator
          // (1'000'000) or a literal suffix — not a char literal.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_token(const std::string& line, const std::string& word, std::size_t* position) {
  std::size_t from = 0;
  while (true) {
    const std::size_t at = line.find(word, from);
    if (at == std::string::npos) return false;
    const bool left_ok = at == 0 || !is_ident_char(line[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) {
      if (position != nullptr) *position = at;
      return true;
    }
    from = at + 1;
  }
}

std::string normalize_path(const fs::path& path) {
  std::string s = path.generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

bool path_in(const std::string& path, const std::string& dir_fragment) {
  return path.find(dir_fragment) != std::string::npos;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool lintable_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".cc" || ext == ".hpp";
}

bool collect_files(const std::vector<std::string>& roots, std::vector<fs::path>& files,
                   std::string& error) {
  for (const std::string& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable_file(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      error = "no such path " + root;
      return false;
    }
  }
  std::sort(files.begin(), files.end());
  return true;
}

bool read_file(const fs::path& path, std::string& content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  content = buffer.str();
  return true;
}

namespace {

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return text.substr(begin, end - begin);
}

}  // namespace

AllowParse parse_allow_text(const std::string& text, const std::set<std::string>& known_rules,
                            bool require_justification) {
  AllowParse result;
  std::set<std::pair<std::string, std::string>> seen;
  const std::vector<std::string> lines = split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    std::string justification;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      justification = trim(line.substr(hash + 1));
      line.erase(hash);
    }
    std::istringstream parts(line);
    AllowEntry entry;
    entry.line = i + 1;
    entry.justification = justification;
    if (!(parts >> entry.rule >> entry.path_suffix)) {
      if (!trim(line).empty()) {
        result.warnings.push_back("line " + std::to_string(i + 1) +
                                  ": expected `<rule-id> <path-suffix>`, got '" + trim(line) +
                                  "'");
      }
      continue;  // blank or comment-only line
    }
    std::string extra;
    if (parts >> extra) {
      result.warnings.push_back("line " + std::to_string(i + 1) + ": trailing tokens after '" +
                                entry.path_suffix + "' ignored");
    }
    if (!known_rules.empty() && known_rules.count(entry.rule) == 0) {
      result.warnings.push_back("line " + std::to_string(i + 1) + ": unknown rule id '" +
                                entry.rule + "'");
    }
    if (!seen.insert({entry.rule, entry.path_suffix}).second) {
      result.warnings.push_back("line " + std::to_string(i + 1) + ": duplicate entry `" +
                                entry.rule + " " + entry.path_suffix + "`");
      continue;
    }
    if (require_justification && entry.justification.empty()) {
      result.errors.push_back("line " + std::to_string(i + 1) + ": baseline entry `" +
                              entry.rule + " " + entry.path_suffix +
                              "` needs a same-line `# justification` comment");
      continue;
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

bool load_allow_file(const std::string& file, const std::set<std::string>& known_rules,
                     bool require_justification, AllowParse& out, std::string& error) {
  std::string content;
  if (!read_file(file, content)) {
    error = "cannot open " + file;
    return false;
  }
  out = parse_allow_text(content, known_rules, require_justification);
  return true;
}

bool allowed(const Finding& finding, const std::vector<AllowEntry>& allowlist) {
  for (const AllowEntry& entry : allowlist) {
    if (entry.rule != finding.rule) continue;
    if (path_ends_with(finding.path, entry.path_suffix)) return true;
  }
  return false;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tfl_tools
