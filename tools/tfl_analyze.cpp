// tfl-analyze: semantic determinism & schema-drift analyzer for the TradeFL
// tree. Where tfl-lint pattern-matches scrubbed lines, tfl-analyze lexes real
// C++ (raw strings, splices, preprocessor awareness) and runs flow-aware
// passes that need scopes, captures, and cross-file pairing:
//
//   parallel-capture    writes to by-ref-captured non-local state inside
//                       parallel_for/run_chunks/ordered_reduce-map lambdas
//   parallel-rng        Rng draws in parallel lambdas without a per-chunk
//                       stream (Rng::derive_stream_seed or a *_rng factory)
//   unordered-hash-iter iteration over std::unordered_* feeding hashing or
//                       serialization
//   schema-drift        paired snapshot writer/reader op sequences disagree
//   schema-unpaired     codec writer/reader with no counterpart
//   obs-vocab           TFL_* names missing from tools/obs_vocab.txt
//   obs-orphan          vocabulary entries matching no site
//
// Usage:
//   tfl-analyze [--baseline FILE] [--vocab FILE] [--format text|json|sarif]
//               [--list-rules] PATH...
//   tfl-analyze --self-test
//
// Baseline entries (`<rule-id> <path-suffix>  # justification`) suppress
// known findings; unlike tfl-lint's allowlist, the justification comment is
// mandatory. Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage.
#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analyze/analyzer.h"
#include "common/parallel.h"
#include "lint_common.h"

namespace {

using tfl_analyze::Analysis;
using tfl_analyze::Options;
using tfl_analyze::SourceFile;
using tfl_tools::Finding;

std::set<std::string> known_rule_ids() {
  std::set<std::string> ids;
  for (const tfl_tools::RuleInfo& rule : tfl_analyze::rule_catalog()) ids.insert(rule.id);
  return ids;
}

// ---------------------------------------------------------------------------
// Self-test fixtures. Each fixture is a miniature multi-file tree; `expected`
// is the multiset of rule ids the analysis must produce, and `exercises`
// names the rules the fixture deliberately stresses without firing (its
// negative coverage). The summary enforces >= 2 positives and >= 2 negatives
// per rule.
// ---------------------------------------------------------------------------
struct Fixture {
  std::string name;
  std::vector<SourceFile> files;
  std::vector<std::string> vocab;
  std::vector<std::string> expected;   // rule id per expected finding
  std::vector<std::string> exercises;  // rules exercised negatively
};

const std::vector<Fixture>& fixtures() {
  static const std::vector<Fixture> kFixtures = {
      // ----- parallel-capture ------------------------------------------------
      {"capture-accumulate-race",
       {{"fix/capture_pos1.cpp",
         "void f(tradefl::ThreadPool* pool, std::vector<double>& weights) {\n"
         "  double total = 0.0;\n"
         "  parallel_for(pool, 0, weights.size(), 64,\n"
         "               [&](std::size_t lo, std::size_t hi, std::size_t) {\n"
         "    for (std::size_t i = lo; i < hi; ++i) total += weights[i];\n"
         "  });\n"
         "}\n"}},
       {},
       {"parallel-capture"},
       {}},
      {"capture-container-mutation",
       {{"fix/capture_pos2.cpp",
         "void g(tradefl::ThreadPool* pool, std::vector<int>& results, int rounds) {\n"
         "  run_chunks(pool, 8, [&](std::size_t chunk, std::size_t) {\n"
         "    results.push_back(static_cast<int>(chunk));\n"
         "    ++rounds;\n"
         "  });\n"
         "}\n"}},
       {},
       {"parallel-capture", "parallel-capture"},
       {}},
      {"capture-disjoint-slot-ok",
       {{"fix/capture_neg1.cpp",
         "void f(tradefl::ThreadPool* pool, std::vector<double>& out,\n"
         "       const std::vector<double>& in) {\n"
         "  parallel_for(pool, 0, out.size(), 32,\n"
         "               [&](std::size_t lo, std::size_t hi, std::size_t worker) {\n"
         "    double scale = 2.0;\n"
         "    for (std::size_t i = lo; i < hi; ++i) out[i] = in[i] * scale;\n"
         "  });\n"
         "}\n"}},
       {},
       {},
       {"parallel-capture"}},
      {"capture-ordered-reduce-fold-ok",
       {{"fix/capture_neg2.cpp",
         "double f(tradefl::ThreadPool* pool, std::size_t chunks) {\n"
         "  double folded = 0.0;\n"
         "  folded = ordered_reduce(pool, chunks, 0.0,\n"
         "      [&](std::size_t chunk, std::size_t) { return static_cast<double>(chunk); },\n"
         "      [&](double& acc, double value) { acc += value; folded = acc; });\n"
         "  return folded;\n"
         "}\n"}},
       {},
       {},
       {"parallel-capture"}},
      {"capture-named-lambda-flagged",
       {{"fix/capture_pos3.cpp",
         "void f(tradefl::ThreadPool* pool, std::vector<double>& grid, double bias) {\n"
         "  const auto scan_chunk = [&](std::size_t chunk, std::size_t) {\n"
         "    bias = grid[chunk];\n"
         "  };\n"
         "  run_chunks(pool, grid.size(), scan_chunk);\n"
         "}\n"}},
       {},
       {"parallel-capture"},
       {}},
      // ----- parallel-rng ----------------------------------------------------
      {"rng-captured-stream",
       {{"fix/rng_pos1.cpp",
         "void f(tradefl::ThreadPool* pool, std::vector<double>& noise, std::uint64_t seed) {\n"
         "  tradefl::Rng rng(seed);\n"
         "  parallel_for(pool, 0, noise.size(), 16,\n"
         "               [&](std::size_t lo, std::size_t hi, std::size_t) {\n"
         "    for (std::size_t i = lo; i < hi; ++i) noise[i] = rng.normal(0.0, 1.0);\n"
         "  });\n"
         "}\n"}},
       {},
       {"parallel-rng"},
       {}},
      {"rng-ad-hoc-local-seed",
       {{"fix/rng_pos2.cpp",
         "void g(tradefl::ThreadPool* pool, std::vector<double>& draws, std::uint64_t seed) {\n"
         "  run_chunks(pool, draws.size(), [&](std::size_t chunk, std::size_t) {\n"
         "    tradefl::Rng local(seed + chunk);\n"
         "    draws[chunk] = local.uniform01();\n"
         "  });\n"
         "}\n"}},
       {},
       {"parallel-rng"},
       {}},
      {"rng-derived-stream-ok",
       {{"fix/rng_neg1.cpp",
         "void f(tradefl::ThreadPool* pool, std::vector<double>& out, std::uint64_t seed) {\n"
         "  run_chunks(pool, out.size(), [&](std::size_t chunk, std::size_t) {\n"
         "    tradefl::Rng stream(tradefl::Rng::derive_stream_seed(seed, chunk));\n"
         "    out[chunk] = stream.uniform01();\n"
         "  });\n"
         "}\n"}},
       {},
       {},
       {"parallel-rng"}},
      {"rng-stream-factory-ok",
       {{"fix/rng_neg2.cpp",
         "void g(tradefl::ThreadPool* pool, FaultPlan* faults, std::vector<double>& vals,\n"
         "       std::size_t round) {\n"
         "  run_chunks(pool, vals.size(), [&](std::size_t chunk, std::size_t) {\n"
         "    tradefl::Rng noise = faults->corruption_rng(round, chunk);\n"
         "    vals[chunk] = noise.normal(0.0, 1.0);\n"
         "  });\n"
         "}\n"}},
       {},
       {},
       {"parallel-rng"}},
      // ----- unordered-hash-iter ---------------------------------------------
      {"unordered-feeds-writer",
       {{"fix/unordered_pos1.cpp",
         "std::unordered_map<std::string, std::uint64_t> g_balances;\n"
         "void tally(std::uint64_t& h) {\n"
         "  for (const auto& entry : g_balances) {\n"
         "    hash_combine(h, entry.second);\n"
         "  }\n"
         "}\n"}},
       {},
       {"unordered-hash-iter"},
       {}},
      {"unordered-feeds-sha256",
       {{"fix/unordered_pos2.cpp",
         "std::unordered_set<std::string> g_members;\n"
         "Hash256 membership_root() {\n"
         "  Bytes all;\n"
         "  for (const std::string& member : g_members) append(all, sha256(member));\n"
         "  return sha256(all);\n"
         "}\n"}},
       {},
       {"unordered-hash-iter"},
       {}},
      {"ordered-map-serialization-ok",
       {{"fix/unordered_neg1.cpp",
         "std::map<std::string, std::uint64_t> g_ledger;\n"
         "void write_ledger(SnapshotWriter& writer) {\n"
         "  writer.put_u64(g_ledger.size());\n"
         "  for (const auto& entry : g_ledger) {\n"
         "    writer.put_string(entry.first);\n"
         "    writer.put_u64(entry.second);\n"
         "  }\n"
         "}\n"
         "void read_ledger(SnapshotReader& reader) {\n"
         "  g_ledger.clear();\n"
         "  const std::uint64_t n = reader.get_u64();\n"
         "  for (std::uint64_t i = 0; i < n; ++i) {\n"
         "    const std::string key = reader.get_string();\n"
         "    g_ledger[key] = reader.get_u64();\n"
         "  }\n"
         "}\n"}},
       {},
       {},
       {"unordered-hash-iter", "schema-drift", "schema-unpaired"}},
      {"unordered-plain-accumulation-ok",
       {{"fix/unordered_neg2.cpp",
         "std::unordered_map<int, int> g_counts;\n"
         "int total() {\n"
         "  int sum = 0;\n"
         "  for (const auto& kv : g_counts) sum += kv.second;\n"
         "  return sum;\n"
         "}\n"}},
       {},
       {},
       {"unordered-hash-iter"}},
      // ----- schema-drift ----------------------------------------------------
      {"schema-type-mismatch-cross-file",
       {{"fix/schema_writer.cpp",
         "void put_profile(SnapshotWriter& writer, const Profile& profile) {\n"
         "  writer.put_u64(profile.id);\n"
         "  writer.put_f32(profile.score);\n"
         "}\n"},
        {"fix/schema_reader.cpp",
         "Profile get_profile(SnapshotReader& reader) {\n"
         "  Profile profile;\n"
         "  profile.id = reader.get_u64();\n"
         "  profile.score = reader.get_f64();\n"
         "  return profile;\n"
         "}\n"}},
       {},
       {"schema-drift"},
       {}},
      {"schema-missing-field-with-helpers",
       {{"fix/schema_history.cpp",
         "void put_item(SnapshotWriter& writer, const Item& item) {\n"
         "  writer.put_u32(item.kind);\n"
         "  writer.put_f64(item.value);\n"
         "}\n"
         "Item get_item(SnapshotReader& reader) {\n"
         "  Item item;\n"
         "  item.kind = reader.get_u32();\n"
         "  item.value = reader.get_f64();\n"
         "  return item;\n"
         "}\n"
         "void write_history(SnapshotWriter& writer, const History& history) {\n"
         "  writer.put_u64(history.items.size());\n"
         "  for (const Item& item : history.items) put_item(writer, item);\n"
         "  writer.put_bool(history.sealed);\n"
         "}\n"
         "History read_history(SnapshotReader& reader) {\n"
         "  History history;\n"
         "  const std::uint64_t n = reader.get_u64();\n"
         "  for (std::uint64_t i = 0; i < n; ++i) history.items.push_back(get_item(reader));\n"
         "  return history;\n"
         "}\n"}},
       {},
       {"schema-drift"},
       {}},
      {"schema-loop-depth-mismatch",
       {{"fix/schema_depth.cpp",
         "void write_grid(SnapshotWriter& writer, const Grid& grid) {\n"
         "  writer.put_u64(grid.rows.size());\n"
         "  for (const Row& row : grid.rows) {\n"
         "    writer.put_u64(row.cells.size());\n"
         "    for (double cell : row.cells) writer.put_f64(cell);\n"
         "  }\n"
         "}\n"
         "Grid read_grid(SnapshotReader& reader) {\n"
         "  Grid grid;\n"
         "  const std::uint64_t rows = reader.get_u64();\n"
         "  const std::uint64_t cells = reader.get_u64();\n"
         "  for (std::uint64_t i = 0; i < rows * cells; ++i) grid.flat.push_back(reader.get_f64());\n"
         "  return grid;\n"
         "}\n"}},
       {},
       {"schema-drift"},
       {}},
      {"schema-conditional-block-ok",
       {{"fix/schema_cond.cpp",
         "void put_training(SnapshotWriter& writer, const Training& training) {\n"
         "  writer.put_f64s(training.weights);\n"
         "}\n"
         "Training get_training(SnapshotReader& reader) {\n"
         "  Training training;\n"
         "  training.weights = reader.get_f64s();\n"
         "  return training;\n"
         "}\n"
         "void write_session(SnapshotWriter& writer, const Session& session) {\n"
         "  writer.put_u32(1);\n"
         "  writer.put_bool(session.training.has_value());\n"
         "  if (session.training.has_value()) put_training(writer, *session.training);\n"
         "}\n"
         "Session read_session(SnapshotReader& reader) {\n"
         "  Session session;\n"
         "  if (reader.get_u32() != 1) return session;\n"
         "  if (reader.get_bool()) session.training = get_training(reader);\n"
         "  return session;\n"
         "}\n"}},
       {},
       {},
       {"schema-drift", "schema-unpaired"}},
      {"schema-anonymous-reader-lambda-ok",
       {{"fix/schema_lambda.cpp",
         "void write_solver_checkpoint(SnapshotWriter& writer, const Solver& solver) {\n"
         "  writer.put_u64(solver.n);\n"
         "  writer.put_f64(solver.bound);\n"
         "}\n"
         "bool resume(const Bytes& payload, Solver& solver) {\n"
         "  return decode_snapshot<bool>(payload, [&](SnapshotReader& reader) {\n"
         "    solver.n = reader.get_u64();\n"
         "    solver.bound = reader.get_f64();\n"
         "    return true;\n"
         "  });\n"
         "}\n"}},
       {},
       {},
       {"schema-drift", "schema-unpaired"}},
      // ----- schema-unpaired -------------------------------------------------
      {"schema-writer-without-reader",
       {{"fix/schema_unpaired_w.cpp",
         "void write_audit(SnapshotWriter& writer, const Audit& audit) {\n"
         "  writer.put_u64(audit.seq);\n"
         "  writer.put_string(audit.actor);\n"
         "}\n"}},
       {},
       {"schema-unpaired"},
       {}},
      {"schema-reader-without-writer",
       {{"fix/schema_unpaired_r.cpp",
         "Legacy get_legacy(SnapshotReader& reader) {\n"
         "  Legacy legacy;\n"
         "  legacy.version = reader.get_u32();\n"
         "  return legacy;\n"
         "}\n"}},
       {},
       {"schema-unpaired"},
       {}},
      {"schema-digest-only-exempt",
       {{"fix/schema_digest.cpp",
         "std::uint64_t config_fingerprint(const Config& config) {\n"
         "  SnapshotWriter hasher;\n"
         "  hasher.put_u64(config.n);\n"
         "  hasher.put_f64(config.tolerance);\n"
         "  return crc32(hasher.payload());\n"
         "}\n"}},
       {},
       {},
       {"schema-unpaired"}},
      // ----- obs-vocab / obs-orphan ------------------------------------------
      {"vocab-unknown-name",
       {{"fix/vocab_pos1.cpp",
         "void f() {\n"
         "  TFL_COUNTER_INC(\"fl.rounds\");\n"
         "  TFL_SPAN(\"fl.round\");\n"
         "}\n"}},
       {"fl.round"},
       {"obs-vocab"},
       {}},
      {"vocab-dynamic-needs-wildcard",
       {{"fix/vocab_pos2.cpp",
         "void call(const std::string& method) {\n"
         "  TFL_SPAN(\"contract.\" + method);\n"
         "  TFL_COUNTER_INC(\"contract.calls\");\n"
         "}\n"}},
       {"contract.calls"},
       {"obs-vocab"},
       {}},
      {"vocab-exact-and-wildcard-ok",
       {{"fix/vocab_neg1.cpp",
         "void call(const std::string& method) {\n"
         "  TFL_COUNTER_INC(\"fl.round\");\n"
         "  TFL_SPAN(\"contract.\" + method);\n"
         "}\n"}},
       {"fl.round", "contract.*"},
       {},
       {"obs-vocab", "obs-orphan"}},
      {"vocab-non-literal-skipped",
       {{"fix/vocab_neg2.cpp",
         "void f(const char* dynamic_name, double depth) {\n"
         "  TFL_GAUGE_SET(dynamic_name, depth);\n"
         "  TFL_GAUGE_SET(\"queue.depth\", depth);\n"
         "}\n"}},
       {"queue.depth"},
       {},
       {"obs-vocab", "obs-orphan"}},
      {"vocab-orphan-entry",
       {{"fix/orphan_pos1.cpp",
         "void f() { TFL_COUNTER_INC(\"fl.round\"); }\n"}},
       {"fl.round", "solver.retired"},
       {"obs-orphan"},
       {}},
      {"vocab-orphan-wildcard",
       {{"fix/orphan_pos2.cpp",
         "void f() { TFL_SPAN(\"session.run\"); }\n"}},
       {"session.run", "contract.*"},
       {"obs-orphan"},
       {}},
      // ----- lexer corners exercised through the rules -----------------------
      {"lexer-raw-string-and-splice-ok",
       {{"fix/lexer_neg1.cpp",
         "const char* kDoc = R\"x(run_chunks(pool, 8, [&](std::size_t c, std::size_t) {\n"
         "  total += c; }); also \"quoted\" rand() )x\";\n"
         "#define WIDE_MACRO(x) do { \\\n"
         "  TFL_COUNTER_INC(\"not.checked.in.directives\"); \\\n"
         "} while (false)\n"
         "void f() { TFL_SPAN(\"fl.round\"); }\n"}},
       {"fl.round"},
       {},
       {"parallel-capture", "obs-vocab"}},
      {"lexer-raw-string-then-code",
       {{"fix/lexer_pos1.cpp",
         "void f(tradefl::ThreadPool* pool, const char** out, double& acc) {\n"
         "  *out = R\"(text with \"quotes\" inside)\"; run_chunks(pool, 4,\n"
         "      [&](std::size_t chunk, std::size_t) { acc += chunk; });\n"
         "}\n"}},
       {},
       {"parallel-capture"},
       {}},
  };
  return kFixtures;
}

int run_self_test() {
  int failures = 0;
  std::map<std::string, int> positives;
  std::map<std::string, int> negatives;
  for (const Fixture& fixture : fixtures()) {
    Options options;
    options.vocab_lines = fixture.vocab;
    options.vocab_path = "fix/vocab.txt";
    const Analysis analysis = tfl_analyze::analyze(fixture.files, options, nullptr);
    std::vector<std::string> got;
    for (const Finding& finding : analysis.findings) got.push_back(finding.rule);
    std::vector<std::string> want = fixture.expected;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      std::cerr << "self-test FAIL: " << fixture.name << ": expected [";
      for (const std::string& rule : want) std::cerr << " " << rule;
      std::cerr << " ] got [";
      for (const Finding& finding : analysis.findings) {
        std::cerr << " " << finding.rule << "(" << finding.path << ":" << finding.line << ")";
      }
      std::cerr << " ]\n";
      ++failures;
    }
    for (const std::string& rule : fixture.expected) ++positives[rule];
    for (const std::string& rule : fixture.exercises) ++negatives[rule];
  }
  // The acceptance bar: every semantic rule proven by at least two positive
  // and two negative fixtures.
  for (const tfl_tools::RuleInfo& rule : tfl_analyze::rule_catalog()) {
    if (positives[rule.id] < 2 || negatives[rule.id] < 2) {
      std::cerr << "self-test FAIL: rule " << rule.id << " has " << positives[rule.id]
                << " positive / " << negatives[rule.id] << " negative fixtures (need >= 2/2)\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "tfl-analyze self-test: all " << fixtures().size() << " fixtures behaved (";
    bool first = true;
    for (const tfl_tools::RuleInfo& rule : tfl_analyze::rule_catalog()) {
      std::cout << (first ? "" : ", ") << rule.id << " " << positives[rule.id] << "+/"
                << negatives[rule.id] << "-";
      first = false;
    }
    std::cout << ")\n";
    return 0;
  }
  std::cerr << "tfl-analyze self-test: " << failures << " failure(s)\n";
  return 1;
}

// ---------------------------------------------------------------------------
// Output formats
// ---------------------------------------------------------------------------

void print_text(const std::vector<Finding>& findings, std::size_t files_scanned,
                std::size_t suppressed) {
  std::map<std::string, std::size_t> per_rule;
  for (const Finding& finding : findings) {
    std::cout << finding.path << ":" << finding.line << ": [" << finding.rule << "] "
              << finding.message << "\n";
    ++per_rule[finding.rule];
  }
  std::cout << "tfl-analyze: " << files_scanned << " files, " << findings.size()
            << " finding(s)";
  if (suppressed > 0) std::cout << ", " << suppressed << " baselined";
  std::cout << "\n";
  // Per-rule counts keep the CI gate's output diffable.
  for (const tfl_tools::RuleInfo& rule : tfl_analyze::rule_catalog()) {
    const auto it = per_rule.find(rule.id);
    std::cout << "  " << rule.id << ": " << (it == per_rule.end() ? 0 : it->second) << "\n";
  }
}

void print_json(const std::vector<Finding>& findings, std::size_t files_scanned,
                std::size_t suppressed) {
  using tfl_tools::json_escape;
  std::cout << "{\n  \"files\": " << files_scanned << ",\n  \"suppressed\": " << suppressed
            << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << (i == 0 ? "" : ",") << "\n    {\"path\": \"" << json_escape(f.path)
              << "\", \"line\": " << f.line << ", \"rule\": \"" << json_escape(f.rule)
              << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "" : "\n  ") << "]\n}\n";
}

void print_sarif(const std::vector<Finding>& findings) {
  using tfl_tools::json_escape;
  std::cout << "{\n"
            << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
            << "  \"version\": \"2.1.0\",\n"
            << "  \"runs\": [{\n"
            << "    \"tool\": {\"driver\": {\"name\": \"tfl-analyze\", \"rules\": [";
  const auto& rules = tfl_analyze::rule_catalog();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::cout << (i == 0 ? "" : ",") << "\n      {\"id\": \"" << json_escape(rules[i].id)
              << "\", \"shortDescription\": {\"text\": \"" << json_escape(rules[i].summary)
              << "\"}}";
  }
  std::cout << "\n    ]}},\n    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << (i == 0 ? "" : ",") << "\n      {\"ruleId\": \"" << json_escape(f.rule)
              << "\", \"level\": \"error\", \"message\": {\"text\": \""
              << json_escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
              << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.path)
              << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}";
  }
  std::cout << (findings.empty() ? "" : "\n    ") << "]\n  }]\n}\n";
}

void list_rules() { std::cout << tfl_tools::format_rule_table(tfl_analyze::rule_catalog()); }

int usage() {
  std::cerr << "usage: tfl-analyze [--baseline FILE] [--vocab FILE] "
               "[--format text|json|sarif] [--list-rules] PATH...\n"
            << "       tfl-analyze --self-test\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string baseline_file;
  std::string vocab_file;
  std::string format = "text";
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--baseline" || arg == "--vocab" || arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "tfl-analyze: " << arg << " needs an argument\n";
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--baseline") baseline_file = value;
      if (arg == "--vocab") vocab_file = value;
      if (arg == "--format") format = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "tfl-analyze: unknown flag " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (self_test) return run_self_test();
  if (roots.empty()) return usage();
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "tfl-analyze: unknown format " << format << "\n";
    return 2;
  }

  std::vector<tfl_tools::AllowEntry> baseline;
  if (!baseline_file.empty()) {
    tfl_tools::AllowParse parsed;
    std::string error;
    if (!tfl_tools::load_allow_file(baseline_file, known_rule_ids(),
                                    /*require_justification=*/true, parsed, error)) {
      std::cerr << "tfl-analyze: " << error << "\n";
      return 2;
    }
    for (const std::string& warning : parsed.warnings) {
      std::cerr << "tfl-analyze: baseline " << baseline_file << ": " << warning << "\n";
    }
    if (!parsed.errors.empty()) {
      for (const std::string& err : parsed.errors) {
        std::cerr << "tfl-analyze: baseline " << baseline_file << ": " << err << "\n";
      }
      return 2;
    }
    baseline = parsed.entries;
  }

  Options options;
  options.vocab_path = vocab_file;
  if (!vocab_file.empty()) {
    std::string content;
    if (!tfl_tools::read_file(vocab_file, content)) {
      std::cerr << "tfl-analyze: cannot open vocab file " << vocab_file << "\n";
      return 2;
    }
    options.vocab_lines = tfl_tools::split_lines(content);
  }

  std::vector<std::filesystem::path> paths;
  std::string walk_error;
  if (!tfl_tools::collect_files(roots, paths, walk_error)) {
    std::cerr << "tfl-analyze: " << walk_error << "\n";
    return 2;
  }
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::filesystem::path& path : paths) {
    std::string content;
    if (!tfl_tools::read_file(path, content)) {
      std::cerr << "tfl-analyze: cannot read " << tfl_tools::normalize_path(path) << "\n";
      return 2;
    }
    files.push_back({tfl_tools::normalize_path(path), std::move(content)});
  }

  // Scan in parallel through the repo's own deterministic pool; results are
  // merged in file order, so the output never depends on thread count.
  const std::size_t threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  tradefl::ThreadPool pool(threads);
  const Analysis analysis = tfl_analyze::analyze(files, options, &pool);

  std::vector<Finding> reported;
  std::size_t suppressed = 0;
  for (const Finding& finding : analysis.findings) {
    if (tfl_tools::allowed(finding, baseline)) {
      ++suppressed;
    } else {
      reported.push_back(finding);
    }
  }
  if (format == "json") {
    print_json(reported, files.size(), suppressed);
  } else if (format == "sarif") {
    print_sarif(reported);
  } else {
    print_text(reported, files.size(), suppressed);
  }
  return reported.empty() ? 0 : 1;
}
