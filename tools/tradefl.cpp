// The `tradefl` command-line tool. All logic lives in src/tradefl/cli.* so
// it can be unit tested; this translation unit only adapts argv and streams.
#include <iostream>
#include <string>
#include <vector>

#include "tradefl/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  const auto invocation = tradefl::cli::parse(args);
  if (!invocation.ok()) {
    std::cerr << invocation.error().to_string() << "\n" << tradefl::cli::usage();
    return 2;
  }
  try {
    return tradefl::cli::run(invocation.value(), std::cout);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
