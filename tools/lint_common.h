// Shared plumbing for the repo's two static checkers, tfl-lint (line/pattern
// rules) and tfl-analyze (token/flow rules): finding records, the
// comment/string scrubber, allowlist & baseline parsing, path normalization,
// source-tree walking, and the --list-rules table formatter.
//
// This header (and lint_common.cpp) must stay dependency-free beyond the
// standard library: tfl-lint builds against it with no tradefl libraries so
// the linter keeps working even when src/ is mid-refactor.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

namespace tfl_tools {

struct Finding {
  std::string path;  // normalized with forward slashes, relative if input was
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Orders findings for stable output: path, then line, then rule.
bool finding_before(const Finding& a, const Finding& b);

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Formats the rule catalog as aligned `id  summary` lines for --list-rules.
std::string format_rule_table(const std::vector<RuleInfo>& rules);

// ---------------------------------------------------------------------------
// Source scrubbing (line-oriented tools). Blanks out comments and
// string/char-literal contents while preserving line structure, so pattern
// rules never fire inside either. Raw string literals — `R"( ... )"` and
// custom-delimiter forms like `R"x( ... )x"` — are scrubbed by their actual
// grammar: no escape processing inside, closed only by `)delim"`. A `'`
// following an identifier/digit character is treated as a digit separator
// (1'000'000), not a char literal.
// ---------------------------------------------------------------------------
std::string scrub_source(const std::string& text);

std::vector<std::string> split_lines(const std::string& text);

bool is_ident_char(char c);

/// True when `word` occurs in `line` as a whole identifier token. Writes the
/// match offset to `position` when provided.
bool contains_token(const std::string& line, const std::string& word,
                    std::size_t* position = nullptr);

// ---------------------------------------------------------------------------
// Paths and tree walking
// ---------------------------------------------------------------------------
std::string normalize_path(const std::filesystem::path& path);
bool path_in(const std::string& path, const std::string& dir_fragment);
bool path_ends_with(const std::string& path, const std::string& suffix);

/// True for the C++ extensions the checkers scan (.cpp/.h/.cc/.hpp).
bool lintable_file(const std::filesystem::path& path);

/// Expands directories (recursively) and regular files into a sorted file
/// list. Returns false and sets `error` when a root does not exist.
bool collect_files(const std::vector<std::string>& roots,
                   std::vector<std::filesystem::path>& files, std::string& error);

/// Reads a whole file in binary mode. Returns false when unreadable.
bool read_file(const std::filesystem::path& path, std::string& content);

// ---------------------------------------------------------------------------
// Allowlist / baseline files. Shared grammar, one entry per line:
//
//   <rule-id> <path-suffix>         # justification
//
// `#` starts a comment; blank lines and comment-only lines are skipped.
// Findings whose rule matches and whose path ends with the suffix are
// suppressed. Baselines (tfl-analyze) additionally require every entry to
// carry a non-empty same-line justification comment.
// ---------------------------------------------------------------------------
struct AllowEntry {
  std::string rule;
  std::string path_suffix;
  std::string justification;  // same-line comment text, may be empty
  std::size_t line = 0;       // 1-based line in the allow/baseline file
};

struct AllowParse {
  std::vector<AllowEntry> entries;       // deduplicated, in file order
  std::vector<std::string> warnings;     // unknown rules, duplicates, extras
  std::vector<std::string> errors;       // fatal: missing justification, etc.
};

/// Parses allowlist text. `known_rules` non-empty enables unknown-rule-id
/// warnings; `require_justification` turns entries without a same-line
/// `# reason` comment into errors (the baseline policy).
AllowParse parse_allow_text(const std::string& text, const std::set<std::string>& known_rules,
                            bool require_justification);

/// File wrapper around parse_allow_text. Returns false (with `error` set)
/// when the file cannot be opened.
bool load_allow_file(const std::string& file, const std::set<std::string>& known_rules,
                     bool require_justification, AllowParse& out, std::string& error);

/// True when `finding` matches an allow/baseline entry (rule equal, path
/// suffix match).
bool allowed(const Finding& finding, const std::vector<AllowEntry>& allowlist);

/// Minimal JSON string escaping for the machine-readable outputs.
std::string json_escape(const std::string& text);

}  // namespace tfl_tools
