// tfl-bench-diff — perf-regression gate over BENCH_*.json manifests.
//
//   tfl-bench-diff [--threshold F] [--latency-multiplier F] [--format text|json]
//                  BASELINE CANDIDATE
//
// Exit codes: 0 = no regressions, 1 = at least one regression (or a baseline
// metric missing from the candidate), 2 = usage / unreadable file / malformed
// manifest. Policy lives in tools/bench_diff.h; the CI stage in
// tools/ci_check.sh runs this against bench/baselines/bench_load.fast.json.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_diff.h"

namespace {

int usage() {
  std::cerr << "usage: tfl-bench-diff [--threshold F] [--latency-multiplier F]"
               " [--format text|json] BASELINE CANDIDATE\n"
               "exit codes: 0 no regressions, 1 regressions, 2 bad input\n";
  return 2;
}

/// Reads + parses one manifest; exits 2 via `ok=false` on any failure.
bool load_manifest(const std::string& path, tfl_benchdiff::JsonValue& out) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "tfl-bench-diff: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  tfl_benchdiff::JsonParseResult parsed = tfl_benchdiff::parse_json(buffer.str());
  if (!parsed.ok) {
    std::cerr << "tfl-bench-diff: " << path << ": malformed JSON at offset " << parsed.error
              << "\n";
    return false;
  }
  if (tfl_benchdiff::manifest_metrics(parsed.value) == nullptr) {
    std::cerr << "tfl-bench-diff: " << path << ": not a bench manifest (no \"metrics\" object)\n";
    return false;
  }
  out = std::move(parsed.value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tfl_benchdiff::DiffOptions options;
  std::string format = "text";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--threshold") {
      const char* value = next();
      if (value == nullptr) return usage();
      options.threshold = std::strtod(value, nullptr);
    } else if (arg == "--latency-multiplier") {
      const char* value = next();
      if (value == nullptr) return usage();
      options.latency_multiplier = std::strtod(value, nullptr);
    } else if (arg == "--format") {
      const char* value = next();
      if (value == nullptr || (std::string(value) != "text" && std::string(value) != "json")) {
        return usage();
      }
      format = value;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2 || options.threshold < 0.0 || options.latency_multiplier < 0.0) {
    return usage();
  }

  tfl_benchdiff::JsonValue baseline;
  tfl_benchdiff::JsonValue candidate;
  if (!load_manifest(paths[0], baseline) || !load_manifest(paths[1], candidate)) return 2;

  const tfl_benchdiff::DiffReport report =
      tfl_benchdiff::diff_manifests(baseline, candidate, options);
  std::fputs((format == "json" ? report.to_json() : report.to_text()).c_str(), stdout);
  return report.has_regression() ? 1 : 0;
}
