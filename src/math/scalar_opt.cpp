#include "math/scalar_opt.h"

#include <cmath>
#include <stdexcept>

namespace tradefl::math {

ScalarMaximum golden_section_maximize(const std::function<double(double)>& f,
                                      double lo, double hi, double tol,
                                      int max_iterations) {
  if (!(lo <= hi)) throw std::invalid_argument("golden_section: lo > hi");
  static const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;        // 1/phi
  static const double kInvPhi2 = (3.0 - std::sqrt(5.0)) / 2.0;       // 1/phi^2

  double a = lo, b = hi;
  double h = b - a;
  ScalarMaximum result;
  if (h <= tol) {
    result.x = (a + b) / 2.0;
    result.value = f(result.x);
    return result;
  }
  double c = a + kInvPhi2 * h;
  double d = a + kInvPhi * h;
  double fc = f(c);
  double fd = f(d);
  int iterations = 0;
  while (h > tol && iterations < max_iterations) {
    ++iterations;
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      h = b - a;
      c = a + kInvPhi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      h = b - a;
      d = a + kInvPhi * h;
      fd = f(d);
    }
  }
  result.x = (a + b) / 2.0;
  result.value = f(result.x);
  result.iterations = iterations;
  // A concave function can still peak exactly at an endpoint of the original
  // interval; compare to be safe.
  const double f_lo = f(lo);
  const double f_hi = f(hi);
  if (f_lo > result.value) {
    result.x = lo;
    result.value = f_lo;
  }
  if (f_hi > result.value) {
    result.x = hi;
    result.value = f_hi;
  }
  return result;
}

ScalarMaximum concave_maximize_with_derivative(
    const std::function<double(double)>& f,
    const std::function<double(double)>& derivative,
    double lo, double hi, double tol, int max_iterations) {
  if (!(lo <= hi)) throw std::invalid_argument("concave_maximize: lo > hi");
  ScalarMaximum result;
  const double g_lo = derivative(lo);
  const double g_hi = derivative(hi);
  if (g_lo <= 0.0) {  // decreasing everywhere (concavity) -> maximum at lo
    result.x = lo;
  } else if (g_hi >= 0.0) {  // increasing everywhere -> maximum at hi
    result.x = hi;
  } else {
    double a = lo, b = hi;
    int iterations = 0;
    while (b - a > tol && iterations < max_iterations) {
      ++iterations;
      const double mid = (a + b) / 2.0;
      if (derivative(mid) > 0.0) a = mid;
      else b = mid;
    }
    result.x = (a + b) / 2.0;
    result.iterations = iterations;
  }
  result.value = f(result.x);
  return result;
}

double bisect_root(const std::function<double(double)>& f, double lo, double hi,
                   double tol, int max_iterations) {
  double f_lo = f(lo);
  double f_hi = f(hi);
  if (f_lo == 0.0) return lo;
  if (f_hi == 0.0) return hi;
  if ((f_lo > 0.0) == (f_hi > 0.0)) {
    throw std::invalid_argument("bisect_root: f(lo) and f(hi) have the same sign");
  }
  double a = lo, b = hi;
  for (int i = 0; i < max_iterations && b - a > tol; ++i) {
    const double mid = (a + b) / 2.0;
    const double f_mid = f(mid);
    if (f_mid == 0.0) return mid;
    if ((f_mid > 0.0) == (f_lo > 0.0)) {
      a = mid;
      f_lo = f_mid;
    } else {
      b = mid;
    }
  }
  return (a + b) / 2.0;
}

}  // namespace tradefl::math
