// Small dense row-major matrix with the two factorizations the interior
// point solver needs: LU with partial pivoting for general Newton systems
// and Cholesky (with diagonal regularization) for SPD systems.
#pragma once

#include <vector>

#include "math/vec.h"

namespace tradefl::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix identity(std::size_t n);
  /// Rank-one matrix factor * v v^T (the Hessian shape of P(sum w_i d_i)).
  static Matrix outer(const Vec& v, double factor);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Matrix& add_in_place(const Matrix& other);
  Matrix& add_diagonal(double value);
  Matrix& add_diagonal(const Vec& values);
  [[nodiscard]] Matrix scaled(double factor) const;
  [[nodiscard]] Matrix transposed() const;

  [[nodiscard]] Vec multiply(const Vec& x) const;
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// Solves A x = b via LU with partial pivoting. Throws on singularity.
  [[nodiscard]] Vec solve(const Vec& b) const;

  /// Solves A x = b assuming A SPD via Cholesky; adds `ridge` * I to the
  /// diagonal before factoring (Newton damping). Throws if still not SPD.
  [[nodiscard]] Vec solve_spd(const Vec& b, double ridge = 0.0) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tradefl::math
