// One-dimensional optimization. The DBR best response maximizes a concave
// payoff over d_i in a closed interval per discrete f level; we provide
// golden-section search (derivative-free) and bisection on the derivative
// (when d/dx is available), plus Brent-style root finding used in tests.
#pragma once

#include <functional>

namespace tradefl::math {

struct ScalarMaximum {
  double x = 0.0;
  double value = 0.0;
  int iterations = 0;
};

/// Golden-section search for the maximum of a unimodal function on [lo, hi].
/// Always converges to an interval of width <= tol; exact for concave f.
ScalarMaximum golden_section_maximize(const std::function<double(double)>& f,
                                      double lo, double hi, double tol = 1e-10,
                                      int max_iterations = 200);

/// Maximizes a differentiable concave function on [lo, hi] by bisecting the
/// derivative; falls back to the boundary when the derivative does not change
/// sign (monotone objective).
ScalarMaximum concave_maximize_with_derivative(
    const std::function<double(double)>& f,
    const std::function<double(double)>& derivative,
    double lo, double hi, double tol = 1e-12, int max_iterations = 200);

/// Finds a root of `f` on [lo, hi] assuming f(lo) and f(hi) have opposite
/// signs (plain bisection; robust, used by tests and fitting).
double bisect_root(const std::function<double(double)>& f, double lo, double hi,
                   double tol = 1e-12, int max_iterations = 200);

}  // namespace tradefl::math
