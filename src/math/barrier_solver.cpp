#include "math/barrier_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.h"
#include "common/logging.h"
#include "obs/obs.h"

namespace tradefl::math {
namespace {

constexpr double kFeasibilityMargin = 1e-9;

/// Barrier value of phi_t at d; +inf when d leaves the strict interior.
double barrier_phi(const SmoothObjective& objective, const BoxBounds& box,
                   const LinearInequalities& ineq, const Vec& d, double t) {
  // Check strict feasibility BEFORE touching the objective: line-search
  // candidates may leave the domain where the objective is defined.
  double barrier_terms = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double low_slack = d[i] - box.lower[i];
    const double high_slack = box.upper[i] - d[i];
    if (low_slack <= 0.0 || high_slack <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    barrier_terms -= std::log(low_slack) + std::log(high_slack);
  }
  if (ineq.count() > 0) {
    const Vec ad = ineq.a.multiply(d);
    for (std::size_t i = 0; i < ineq.count(); ++i) {
      const double slack = ineq.b[i] - ad[i];
      if (slack <= 0.0) return std::numeric_limits<double>::infinity();
      barrier_terms -= std::log(slack);
    }
  }
  return -t * objective.value(d) + barrier_terms;
}

}  // namespace

BarrierResult maximize_with_barrier(const SmoothObjective& objective,
                                    const BoxBounds& box,
                                    const LinearInequalities& inequalities,
                                    Vec start,
                                    const BarrierOptions& options) {
  TFL_SPAN("barrier.solve");
  const std::size_t dim = start.size();
  if (box.lower.size() != dim || box.upper.size() != dim) {
    throw std::invalid_argument("barrier: box dimension mismatch");
  }
  for (std::size_t i = 0; i < dim; ++i) {
    if (!(box.lower[i] < box.upper[i])) {
      throw std::invalid_argument("barrier: need lower < upper per coordinate");
    }
  }
  if (inequalities.count() > 0 &&
      (inequalities.a.rows() != inequalities.count() || inequalities.a.cols() != dim)) {
    throw std::invalid_argument("barrier: inequality shape mismatch");
  }

  // Pull the start strictly inside the box.
  for (std::size_t i = 0; i < dim; ++i) {
    const double width = box.upper[i] - box.lower[i];
    const double margin = std::min(kFeasibilityMargin, width / 4.0);
    start[i] = std::clamp(start[i], box.lower[i] + margin, box.upper[i] - margin);
  }
  // Verify strict feasibility wrt the linear constraints; if violated, walk
  // toward the box's lower corner (our GBD constraints are monotone in d, so
  // the lower corner is the most feasible point; fail if even that violates).
  if (inequalities.count() > 0) {
    auto strictly_feasible = [&](const Vec& d) {
      const Vec ad = inequalities.a.multiply(d);
      for (std::size_t i = 0; i < inequalities.count(); ++i) {
        if (!(ad[i] < inequalities.b[i])) return false;
      }
      return true;
    };
    if (!strictly_feasible(start)) {
      Vec corner(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        corner[i] = box.lower[i] + std::min(kFeasibilityMargin,
                                            (box.upper[i] - box.lower[i]) / 4.0);
      }
      bool found = false;
      for (double blend = 0.5; blend > 1e-12; blend *= 0.5) {
        Vec candidate(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          candidate[i] = corner[i] + blend * (start[i] - corner[i]);
        }
        if (strictly_feasible(candidate)) {
          start = candidate;
          found = true;
          break;
        }
      }
      if (!found) {
        if (!strictly_feasible(corner)) {
          throw std::invalid_argument("barrier: no strictly feasible start exists");
        }
        start = corner;
      }
    }
  }

  const std::size_t constraint_count = 2 * dim + inequalities.count();
  BarrierResult result;
  result.x = start;
  double t = options.initial_t;
  int total_newton = 0;

  for (int stage = 0; stage < options.max_stages; ++stage) {
    // --- Newton's method on phi_t. ---
    for (int it = 0; it < options.max_newton_per_stage; ++it) {
      ++total_newton;
      const Vec& d = result.x;
      Vec grad = objective.gradient(d);
      Matrix hess = objective.hessian(d);
      // A NaN here silently corrupts the Newton system; sum() propagates any
      // NaN/Inf element (norm_inf would mask NaN via std::max ordering).
      TFL_FINITE(sum(grad));
      // phi gradient: -t*g' + barrier terms.
      Vec phi_grad(dim);
      Matrix phi_hess = hess.scaled(-t);
      for (std::size_t i = 0; i < dim; ++i) {
        const double low_slack = d[i] - box.lower[i];
        const double high_slack = box.upper[i] - d[i];
        phi_grad[i] = -t * grad[i] - 1.0 / low_slack + 1.0 / high_slack;
        phi_hess.at(i, i) += 1.0 / (low_slack * low_slack) + 1.0 / (high_slack * high_slack);
      }
      if (inequalities.count() > 0) {
        const Vec ad = inequalities.a.multiply(d);
        for (std::size_t r = 0; r < inequalities.count(); ++r) {
          const double slack = inequalities.b[r] - ad[r];
          const double inv = 1.0 / slack;
          for (std::size_t i = 0; i < dim; ++i) {
            const double ari = inequalities.a.at(r, i);
            if (ari == 0.0) continue;
            phi_grad[i] += ari * inv;
            for (std::size_t j = 0; j < dim; ++j) {
              const double arj = inequalities.a.at(r, j);
              if (arj != 0.0) phi_hess.at(i, j) += ari * arj * inv * inv;
            }
          }
        }
      }

      // Newton step with progressive ridge regularization.
      Vec step;
      bool solved = false;
      {
        TFL_SCOPED_TIMER("solver.factorize.seconds");
        for (double ridge = 0.0; ridge < 1e9;
             ridge = (ridge == 0.0 ? 1e-10 : ridge * 100.0)) {
          try {
            step = phi_hess.solve_spd(scale(phi_grad, -1.0), ridge);
            solved = true;
            break;
          } catch (const std::runtime_error&) {
            continue;
          }
        }
      }
      if (!solved) throw std::runtime_error("barrier: Newton system unsolvable");
      TFL_FINITE(sum(step));

      // Newton decrement^2 = grad^T H^-1 grad = -step . grad (step = -H^-1 grad).
      const double lambda_sq = -dot(step, phi_grad);
      if (lambda_sq / 2.0 <= options.newton_tol) break;

      // Backtracking line search keeping strict feasibility.
      const double phi_now = barrier_phi(objective, box, inequalities, d, t);
      double step_size = 1.0;
      Vec candidate(dim);
      int backtracks = 0;
      for (; backtracks < 80; ++backtracks) {
        for (std::size_t i = 0; i < dim; ++i) candidate[i] = d[i] + step_size * step[i];
        const double phi_candidate = barrier_phi(objective, box, inequalities, candidate, t);
        if (phi_candidate <=
            phi_now + options.line_search_slope * step_size * dot(phi_grad, step)) {
          break;
        }
        step_size *= options.line_search_backtrack;
      }
      TFL_COUNTER_ADD("solver.linesearch.backtracks", backtracks);
      const double movement = step_size * norm_inf(step);
      result.x = candidate;
      if (movement < 1e-15) break;
    }

    result.duality_gap = static_cast<double>(constraint_count) / t;
    if (result.duality_gap < options.duality_gap_tol) {
      result.converged = true;
      break;
    }
    t *= options.t_growth;
  }

  result.newton_iterations = total_newton;
  TFL_COUNTER_ADD("solver.newton.iterations", total_newton);
  result.value = objective.value(result.x);
  // Always-on exit contract: a NaN objective/gradient corrupts the iterate
  // silently (NaN fails the `diag <= 0.0` SPD test inside solve_spd, so the
  // factorization "succeeds" and the poisoned step is accepted). Every
  // downstream quantity — cuts, payoffs, welfare — would inherit the NaN.
  TFL_CHECK(std::isfinite(sum(result.x)) && std::isfinite(result.value),
            "barrier solver produced a non-finite iterate (value ", result.value,
            "); objective/gradient returned NaN or Inf inside the feasible region");
  // Multiplier recovery for the linear constraints at the final t.
  if (inequalities.count() > 0) {
    result.multipliers.assign(inequalities.count(), 0.0);
    const Vec ad = inequalities.a.multiply(result.x);
    for (std::size_t r = 0; r < inequalities.count(); ++r) {
      const double slack = inequalities.b[r] - ad[r];
      result.multipliers[r] = 1.0 / (t * std::max(slack, 1e-300));
    }
  }
  if (!result.converged) {
    TFL_DEBUG << "barrier: stopped at duality gap " << result.duality_gap;
  }
  return result;
}

}  // namespace tradefl::math
