// Dense vector helpers over std::vector<double>. Deliberately free functions
// instead of an expression-template vector class: every problem in this repo
// is tiny (|N| <= a few dozen organizations), so clarity wins over BLAS.
#pragma once

#include <vector>

namespace tradefl::math {

using Vec = std::vector<double>;

Vec zeros(std::size_t n);
Vec constant(std::size_t n, double value);

double dot(const Vec& a, const Vec& b);
double norm2(const Vec& a);
double norm_inf(const Vec& a);
double sum(const Vec& a);

Vec add(const Vec& a, const Vec& b);
Vec subtract(const Vec& a, const Vec& b);
Vec scale(const Vec& a, double factor);

/// a += factor * b
void axpy(Vec& a, double factor, const Vec& b);

/// Componentwise clamp into [lower, upper].
Vec clamp(const Vec& a, const Vec& lower, const Vec& upper);

/// Largest |a_i - b_i|.
double max_abs_diff(const Vec& a, const Vec& b);

}  // namespace tradefl::math
