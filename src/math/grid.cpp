#include "math/grid.h"

#include <cmath>
#include <stdexcept>

namespace tradefl::math {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("linspace: n must be >= 1");
  std::vector<double> out(n);
  if (n == 1) {
    out[0] = lo;
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0 || hi <= 0.0) throw std::invalid_argument("logspace: bounds must be positive");
  const std::vector<double> exponents = linspace(std::log10(lo), std::log10(hi), n);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = std::pow(10.0, exponents[i]);
  return out;
}

std::uint64_t cartesian_size(const std::vector<std::size_t>& radices) {
  std::uint64_t total = 1;
  for (std::size_t radix : radices) {
    if (radix == 0) return 0;
    if (total > (1ULL << 62) / radix) {
      throw std::overflow_error("cartesian_size: product exceeds 2^62");
    }
    total *= radix;
  }
  return total;
}

std::uint64_t enumerate_cartesian(
    const std::vector<std::size_t>& radices,
    const std::function<bool(const std::vector<std::size_t>&)>& visit) {
  for (std::size_t radix : radices) {
    if (radix == 0) return 0;
  }
  std::vector<std::size_t> tuple(radices.size(), 0);
  std::uint64_t visited = 0;
  while (true) {
    ++visited;
    if (!visit(tuple)) return visited;
    // Mixed-radix increment (least significant digit first).
    std::size_t digit = 0;
    while (digit < radices.size()) {
      if (++tuple[digit] < radices[digit]) break;
      tuple[digit] = 0;
      ++digit;
    }
    if (digit == radices.size()) return visited;
  }
}

}  // namespace tradefl::math
