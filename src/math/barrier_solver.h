// Log-barrier interior-point method for smooth concave maximization over a
// box intersected with linear inequality constraints A d <= b. This is the
// "IP method" of Sec. V-B: it solves the GBD primal problem (19) (concave by
// Lemma 1) and recovers the Lagrange multipliers u of the deadline
// constraints, which parameterize the Benders optimality cuts (Eq. 20).
//
// Method: for increasing barrier weight t, Newton-minimize
//     phi_t(d) = -t * g(d) - sum log(d - l) - sum log(u - d) - sum log(b - Ad)
// with backtracking line search; multipliers are recovered as
//     u_i = 1 / (t * (b_i - a_i^T d)).
// The duality gap of the barrier method bounds suboptimality by
// (#constraints)/t, which is the delta of Lemma 3.
#pragma once

#include <functional>

#include "math/matrix.h"
#include "math/vec.h"

namespace tradefl::math {

/// A twice-differentiable objective. `hessian` must return the (symmetric)
/// Hessian of g; the solver negates internally for maximization.
struct SmoothObjective {
  std::function<double(const Vec&)> value;
  std::function<Vec(const Vec&)> gradient;
  std::function<Matrix(const Vec&)> hessian;
};

/// Box bounds l <= d <= u (componentwise; l_i < u_i required, equal bounds
/// should be handled by the caller by eliminating the variable).
struct BoxBounds {
  Vec lower;
  Vec upper;
};

/// Linear inequality constraints A d <= b. May be empty (rows() == 0).
struct LinearInequalities {
  Matrix a;  // rows = #constraints, cols = dim
  Vec b;

  [[nodiscard]] std::size_t count() const { return b.size(); }
};

struct BarrierOptions {
  double initial_t = 1.0;
  double t_growth = 20.0;          // mu in Boyd & Vandenberghe's notation
  double duality_gap_tol = 1e-9;   // delta: stop when #constraints / t < tol
  double newton_tol = 1e-10;       // Newton decrement^2 / 2 threshold
  int max_newton_per_stage = 80;
  int max_stages = 64;
  double line_search_backtrack = 0.5;
  double line_search_slope = 0.25;
};

struct BarrierResult {
  Vec x;                 // solution (strictly feasible)
  double value = 0.0;    // g(x)
  Vec multipliers;       // one per row of A (>= 0); empty when no constraints
  bool converged = false;
  int newton_iterations = 0;
  double duality_gap = 0.0;
};

/// Maximizes `objective` over {l <= d <= u} ∩ {A d <= b}.
///
/// `start` must be strictly feasible; if it is not, the solver nudges it into
/// the strict interior of the box and throws std::invalid_argument when no
/// strictly feasible point exists for the linear constraints along the way.
BarrierResult maximize_with_barrier(const SmoothObjective& objective,
                                    const BoxBounds& box,
                                    const LinearInequalities& inequalities,
                                    Vec start,
                                    const BarrierOptions& options = {});

}  // namespace tradefl::math
