#include "math/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace tradefl::math {
namespace {

/// Debug-tier check that a matrix claimed SPD is at least symmetric; the
/// positive-definite half is established by the Cholesky factorization itself.
[[maybe_unused]] bool nearly_symmetric(const Matrix& m, double tol) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = r + 1; c < m.cols(); ++c) {
      const double scale = std::max({1.0, std::abs(m.at(r, c)), std::abs(m.at(c, r))});
      if (std::abs(m.at(r, c) - m.at(c, r)) > tol * scale) return false;
    }
  }
  return true;
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::outer(const Vec& v, double factor) {
  Matrix m(v.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = 0; j < v.size(); ++j) m.at(i, j) = factor * v[i] * v[j];
  }
  return m;
}

Matrix& Matrix::add_in_place(const Matrix& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("matrix: shape mismatch in add");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::add_diagonal(double value) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) at(i, i) += value;
  return *this;
}

Matrix& Matrix::add_diagonal(const Vec& values) {
  const std::size_t n = std::min(rows_, cols_);
  if (values.size() != n) throw std::invalid_argument("matrix: diagonal size mismatch");
  for (std::size_t i = 0; i < n; ++i) at(i, i) += values[i];
  return *this;
}

Matrix Matrix::scaled(double factor) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Vec Matrix::multiply(const Vec& x) const {
  if (x.size() != cols_) throw std::invalid_argument("matrix: multiply size mismatch");
  Vec out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) total += at(r, c) * x[c];
    out[r] = total;
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (other.rows_ != cols_) throw std::invalid_argument("matrix: multiply shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) out.at(r, c) += a * other.at(k, c);
    }
  }
  return out;
}

Vec Matrix::solve(const Vec& b) const {
  if (rows_ != cols_ || b.size() != rows_) throw std::invalid_argument("matrix: solve shape");
  const std::size_t n = rows_;
  Matrix lu = *this;
  Vec x = b;
  std::vector<std::size_t> pivot(n);
  for (std::size_t i = 0; i < n; ++i) pivot[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t best = col;
    double best_abs = std::abs(lu.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double candidate = std::abs(lu.at(r, col));
      if (candidate > best_abs) {
        best = r;
        best_abs = candidate;
      }
    }
    if (best_abs < 1e-300) throw std::runtime_error("matrix: singular in solve");
    if (best != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu.at(best, c), lu.at(col, c));
      std::swap(x[best], x[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu.at(r, col) / lu.at(col, col);
      lu.at(r, col) = 0.0;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) lu.at(r, c) -= factor * lu.at(col, c);
      x[r] -= factor * x[col];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double total = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) total -= lu.at(ri, c) * x[c];
    x[ri] = total / lu.at(ri, ri);
    TFL_FINITE(x[ri]);
  }
  return x;
}

Vec Matrix::solve_spd(const Vec& b, double ridge) const {
  if (rows_ != cols_ || b.size() != rows_) throw std::invalid_argument("matrix: solve shape");
  TFL_ASSERT(nearly_symmetric(*this, 1e-8),
             "solve_spd requires a symmetric matrix (", rows_, "x", cols_, ")");
  TFL_ASSERT(ridge >= 0.0, "negative ridge ", ridge);
  const std::size_t n = rows_;
  Matrix chol = *this;
  chol.add_diagonal(ridge);
  // In-place lower Cholesky.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = chol.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= chol.at(j, k) * chol.at(j, k);
    if (diag <= 0.0) throw std::runtime_error("matrix: not SPD in solve_spd");
    const double root = std::sqrt(diag);
    chol.at(j, j) = root;
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = chol.at(i, j);
      for (std::size_t k = 0; k < j; ++k) value -= chol.at(i, k) * chol.at(j, k);
      chol.at(i, j) = value / root;
    }
  }
  // Forward then backward substitution.
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double total = b[i];
    for (std::size_t k = 0; k < i; ++k) total -= chol.at(i, k) * y[k];
    y[i] = total / chol.at(i, i);
  }
  Vec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double total = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) total -= chol.at(k, ii) * x[k];
    x[ii] = total / chol.at(ii, ii);
    TFL_FINITE(x[ii]);
  }
  return x;
}

}  // namespace tradefl::math
