#include "math/vec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace tradefl::math {
namespace {
void require_same(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vec: size mismatch");
}
}  // namespace

Vec zeros(std::size_t n) { return Vec(n, 0.0); }
Vec constant(std::size_t n, double value) { return Vec(n, value); }

double dot(const Vec& a, const Vec& b) {
  require_same(a, b);
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  TFL_FINITE(total);
  return total;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vec& a) {
  double best = 0.0;
  for (double v : a) best = std::max(best, std::abs(v));
  return best;
}

double sum(const Vec& a) {
  double total = 0.0;
  for (double v : a) total += v;
  return total;
}

Vec add(const Vec& a, const Vec& b) {
  require_same(a, b);
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec subtract(const Vec& a, const Vec& b) {
  require_same(a, b);
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec scale(const Vec& a, double factor) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * factor;
  return out;
}

void axpy(Vec& a, double factor, const Vec& b) {
  require_same(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += factor * b[i];
}

Vec clamp(const Vec& a, const Vec& lower, const Vec& upper) {
  require_same(a, lower);
  require_same(a, upper);
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::clamp(a[i], lower[i], upper[i]);
  return out;
}

double max_abs_diff(const Vec& a, const Vec& b) {
  require_same(a, b);
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) best = std::max(best, std::abs(a[i] - b[i]));
  return best;
}

}  // namespace tradefl::math
