// Grid utilities: linear/log spacing for parameter sweeps and mixed-radix
// cartesian enumeration, used by the GBD master-problem traversal (the paper
// enumerates all feasible f assignments) and by the FIP baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace tradefl::math {

/// n evenly spaced points from lo to hi inclusive (n >= 1; n == 1 -> {lo}).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// n log-spaced points from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Number of tuples in the cartesian product of the given radices; throws on
/// overflow past 2^62 (the traversal would never finish anyway).
std::uint64_t cartesian_size(const std::vector<std::size_t>& radices);

/// Enumerates every index tuple in the mixed-radix space `radices`, calling
/// `visit(tuple)`. Returns the number of tuples visited; `visit` may return
/// false to stop early.
std::uint64_t enumerate_cartesian(const std::vector<std::size_t>& radices,
                                  const std::function<bool(const std::vector<std::size_t>&)>& visit);

}  // namespace tradefl::math
