// Deterministic load generator behind bench/bench_load.cpp: drives repeated
// TradingSessions and bulk plain-value chain transfers, then reports
// sustained throughput (sessions/s, tx/s) and per-phase latency percentiles
// pulled from the SLO latency histograms (session.latency.seconds,
// chain.settle.seconds, chain.transfer.seconds, ...).
//
// The driver loop is serial — parallelism lives inside the pipelines
// (threads= sizes the shared pool) — so the op sequence, the resulting chain,
// and the run-ledger events are identical for any thread count; only the
// timing numbers move. Lives in src/ rather than bench/ so the bench.load.*
// macro sites stay inside the tfl-analyze-scanned tree and the reports are
// unit-testable in-process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tradefl::loadgen {

struct LoadOptions {
  // Session load: full solve -> deploy -> settle pipelines.
  std::size_t sessions = 256;
  std::size_t orgs = 6;
  // Chain load: plain 1-wei transfers round-robin over funded accounts.
  std::size_t transfers = 16384;
  std::size_t accounts = 16;
  std::size_t seal_every = 128;  // chain batch sealing: seal a block every N txs

  std::uint64_t seed = 42;

  /// Timed passes per load; the reported numbers are the best pass (standard
  /// best-of-N benchmarking — transient machine load slows a whole pass, so
  /// the minimum-interference pass is the reproducible one).
  std::size_t repeats = 3;

  /// Shrunk workload for smoke runs and the CI regression gate — still sized
  /// so each timed section runs tens of milliseconds, keeping the >25%
  /// regression gate out of scheduler-noise territory.
  [[nodiscard]] LoadOptions fast() const;
};

/// Load shape for the serve-daemon bench (bench/bench_serve.cpp): drives a
/// burst of session requests through an in-process Server over the wire
/// protocol and reports sessions/sec plus the admission/session latency
/// percentiles from the server.* histograms.
struct ServeLoadOptions {
  std::size_t sessions = 64;  // requests pushed through the daemon per pass
  std::size_t orgs = 4;
  std::size_t workers = 4;    // concurrent session workers in the daemon
  std::uint64_t seed = 42;
  std::size_t repeats = 3;    // best-of-N passes (see LoadOptions::repeats)
  /// Scratch state root; wiped before every pass so each pass admits fresh.
  std::string root = "serve-load-state";

  /// Shrunk workload for smoke runs and the CI regression gate.
  [[nodiscard]] ServeLoadOptions fast() const;
};

/// Quantiles of one latency histogram recorded during the load run.
struct PhaseStats {
  std::string name;
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct LoadReport {
  std::string name;  // "session" | "chain"
  std::uint64_t operations = 0;
  double wall_seconds = 0.0;
  double ops_per_sec = 0.0;
  /// Every `*.seconds` latency histogram that recorded at least one
  /// observation, sorted by name.
  std::vector<PhaseStats> phases;
};

/// Runs `sessions` full trading sessions (DBR scheme, no training) on seeded
/// Table-II games, `repeats` times; reports the best pass. Resets the metrics
/// registry per pass so the percentiles cover exactly the reported pass;
/// throws on a session that fails to settle.
LoadReport run_session_load(const LoadOptions& options);

/// Runs `transfers` plain value transfers over `accounts` funded accounts
/// with chain-level batch sealing every `seal_every` txs, `repeats` times;
/// reports the best pass. Resets the metrics registry per pass; throws when
/// the resulting chain fails validation.
LoadReport run_chain_load(const LoadOptions& options);

/// The request lines run_serve_load pushes through the daemon, one flat JSON
/// object per line. Exposed so `bench_serve client=1` can print the exact
/// same workload for driving a REAL serve process over a pipe (the CI drain
/// stage), keeping in-process and subprocess runs comparable.
std::vector<std::string> serve_request_lines(const ServeLoadOptions& options);

/// Boots an in-process Server per pass and pushes `sessions` requests at it,
/// `repeats` times; reports the best pass. Phases cover the unscoped server.*
/// histograms only (per-session `session=<id>/...` twins are deliberately
/// excluded — the bench gates daemon behaviour, not any single session).
/// Throws when a pass completes fewer sessions than it admitted.
LoadReport run_serve_load(const ServeLoadOptions& options);

/// Canonical manifest JSON for the serve report (BENCH_serve.json), diffed
/// against bench/baselines/bench_serve.fast.json by the CI gate.
std::string serve_manifest_json(const LoadReport& report, const ServeLoadOptions& options);

/// Canonical manifest JSON for one report (BENCH_session.json /
/// BENCH_chain.json): config + throughput + per-phase percentiles.
std::string manifest_json(const LoadReport& report, const LoadOptions& options);

/// Combined manifest holding both reports under "metrics": {"session": ...,
/// "chain": ...} — the shape the CI regression baseline
/// (bench/baselines/bench_load.fast.json) is diffed against.
std::string combined_manifest_json(const LoadReport& session_report,
                                   const LoadReport& chain_report,
                                   const LoadOptions& options);

}  // namespace tradefl::loadgen
