// `tradefl serve` — a long-lived daemon hosting many concurrent
// TradingSessions behind the framed JSON-lines protocol in wire.h (one
// request/reply per stdin/stdout line). Robustness surface:
//
//   * admission control — a bounded pending queue; when it is full the
//     request is load-shed with a typed {"error": "overloaded"} reply instead
//     of queueing unboundedly;
//   * per-session watchdog — sessions running past `watchdog_seconds` get
//     their cooperative cancel token fired and are evicted; the token is
//     checked at every phase boundary (and inside CGBD iterations / FedAvg
//     rounds), so eviction lands after the last completed phase's checkpoint
//     is durable and the session stays resumable;
//   * containment — each session runs inside a CrashContainmentScope, so
//     `crash:N` fault plans take down the session (reported as a resumable
//     "crashed" reply), never the daemon;
//   * graceful drain — SIGTERM (through the async-signal-safe shim below) or
//     the "drain" op stops admissions, cancels in-flight sessions after their
//     current phase checkpoint, parks the rest, flushes the registry, and
//     exits 0;
//   * restart survivability — a CRC-framed registry snapshot
//     (kind "tradefl.server.registry") records every admitted session's
//     config and state; a restarted server re-attaches to the per-session
//     checkpoint directories and finishes pending sessions bit-identically
//     to an uninterrupted run (hang/crash fault events are stripped on
//     re-attach: the crash already happened, and a hang would re-fire
//     forever).
//
// Thread budgets: the server carves `threads=` across its session workers
// (PoolBudgetScope), so a session sees the same deterministic results it
// would solo — PR 3's thread-count invariance makes the carve safe.
//
// Introspection: server.* metrics (sessions.active, admissions, rejections,
// evictions, crashes.contained, reattached, parked, drain.seconds,
// admission.seconds) plus per-session scoped metrics via obs::MetricScope
// ("session=<id>/..."). See docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/result.h"

namespace tradefl::server {

struct ServeOptions {
  /// State root. Holds registry.snap plus sessions/<id>/ checkpoint dirs.
  std::string root = "serve-state";
  /// Concurrent session workers.
  std::size_t workers = 2;
  /// Bounded pending queue; a "session" request arriving with this many
  /// undispatched jobs is load-shed ({"error": "overloaded"}).
  std::size_t queue_limit = 8;
  /// Per-session wall-clock deadline in seconds; 0 disables the watchdog.
  double watchdog_seconds = 0.0;
  /// Total worker-thread budget carved evenly across session workers
  /// (each gets max(1, threads/workers)); 0 leaves the global pool alone.
  std::size_t threads = 0;
  /// Re-attach to an existing registry under root (pending sessions resume
  /// from their checkpoints before new requests are read).
  bool resume = true;
};

/// Builds ServeOptions from the CLI vocabulary: root= workers= queue_limit=
/// watchdog_seconds= threads= resume=. Bounds-checks counts (>= 1 workers,
/// >= 1 queue slots).
Result<ServeOptions> serve_options_from_config(const Config& options);

/// What one Server::run observed, for tests and the final "bye" reply.
struct ServeSummary {
  std::uint64_t admitted = 0;     // accepted "session" requests
  std::uint64_t reattached = 0;   // pending registry entries resumed at boot
  std::uint64_t completed = 0;    // sessions that finished with a valid report
  std::uint64_t failed = 0;       // sessions that errored (non-resumable)
  std::uint64_t rejected = 0;     // load-shed or post-drain "session" requests
  std::uint64_t evicted = 0;      // watchdog deadline cancellations
  std::uint64_t crashed = 0;      // contained injected crashes (resumable)
  std::uint64_t parked = 0;       // drain-time cancellations / unstarted jobs
  bool drained = false;           // SIGTERM or "drain" ended the run
  int exit_code = 0;              // 0 on clean EOF-completion or clean drain
};

/// How one read attempt against a line source ended. kInterrupted surfaces
/// EINTR from a signal (the drain path) without losing buffered bytes.
enum class ReadStatus : std::uint8_t { kLine, kEof, kInterrupted };

/// Blocking source of protocol lines. The server owns the loop; sources own
/// buffering and interruption semantics.
class LineSource {
 public:
  virtual ~LineSource() = default;
  virtual ReadStatus next(std::string& line) = 0;
};

/// istream-backed source for tests and in-process benches. std::getline
/// cannot be interrupted by signals, so callers use the "drain" op instead.
class StreamLineSource : public LineSource {
 public:
  explicit StreamLineSource(std::istream& in) : in_(&in) {}
  ReadStatus next(std::string& line) override;

 private:
  std::istream* in_;
};

/// Raw-fd source for the real daemon's stdin. Reads are EINTR-aware: a
/// SIGTERM delivered through install_signal_handler (no SA_RESTART) makes the
/// blocked read return, next() reports kInterrupted, and the server checks
/// the drain flag. Partial lines survive interruptions.
class FdLineSource : public LineSource {
 public:
  explicit FdLineSource(int fd) : fd_(fd) {}
  ReadStatus next(std::string& line) override;

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Signal handler type for the shim below.
using SignalHandler = void (*)(int);

/// The server's only sanctioned way to register a signal handler: sigaction
/// WITHOUT SA_RESTART so blocked reads return EINTR and the drain flag gets
/// noticed promptly. tfl-lint's signal-handler-safety rule audits every
/// handler passed here: the body may only touch volatile std::sig_atomic_t
/// flags (no allocation, no iostreams, no locks, no throw — the
/// async-signal-safe subset).
void install_signal_handler(int signum, SignalHandler handler);

/// Async-signal-safe drain handler (writes one sig_atomic_t flag). Register
/// via install_signal_handler(SIGTERM, request_drain).
void request_drain(int signum);

/// True once request_drain ran (or a "drain" op arrived — the server routes
/// both through the same flag).
bool drain_requested();

/// Clears the drain flag. Tests (and each Server::run) start from a clean
/// flag so one drained run cannot bleed into the next.
void clear_drain_request();

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until EOF (complete all admitted work, exit 0) or drain (stop
  /// admitting, cancel+park in-flight work after its current checkpoint,
  /// exit 0). Replies — one JSON line each — go to `out`.
  ServeSummary run(LineSource& input, std::ostream& out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tradefl::server
