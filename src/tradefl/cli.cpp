#include "tradefl/cli.h"

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "common/parallel.h"
#include "common/snapshot.h"
#include "common/string_util.h"
#include "common/table.h"
#include "math/grid.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tradefl/report.h"
#include "tradefl/server.h"
#include "tradefl/session.h"

namespace tradefl::cli {
namespace {

const char* const kCommands[] = {"solve",   "compare", "sweep", "metrics",
                                 "session", "chain",   "serve", "help"};

/// Applies checkpoint=DIR checkpoint_every=N resume=1 to a CGBD solve.
/// resume with no snapshot yet is a cold start (the kill may predate the
/// first durable checkpoint); a present-but-corrupt snapshot fails closed.
void wire_solver_checkpoint(const Config& options, core::CgbdOptions& cgbd) {
  const auto dir = options.get("checkpoint");
  if (!dir) return;
  std::error_code ec;
  std::filesystem::create_directories(*dir, ec);
  cgbd.checkpoint_path = *dir + "/cgbd.snap";
  cgbd.checkpoint_every =
      static_cast<std::size_t>(options.get_int("checkpoint_every", 1));
  cgbd.resume = options.get_bool("resume", false) && snapshot_exists(cgbd.checkpoint_path);
}

int run_solve(const Config& options, std::ostream& out) {
  const auto scheme = parse_scheme(options.get_string("scheme", "dbr"));
  if (!scheme.ok()) {
    out << scheme.error().to_string() << "\n";
    return 2;
  }
  const auto game = game_from_options(options);
  core::SchemeOptions scheme_options;
  wire_solver_checkpoint(options, scheme_options.cgbd);
  FaultInjector injector;
  if (const auto spec = options.get("faults")) {
    const auto plan = parse_fault_plan(*spec);
    if (!plan.ok()) {
      out << plan.error().to_string() << "\n";
      return 2;
    }
    injector = FaultInjector(plan.value());
    if (injector.enabled()) scheme_options.cgbd.faults = &injector;
    out << "fault plan: " << plan.value().summary() << "\n";
  }
  const auto result = core::run_scheme(game, scheme.value(), scheme_options);
  out << describe_mechanism(game, result);
  out << "properties: " << core::verify_properties(game, result).summary() << "\n";
  return 0;
}

int run_compare(const Config& options, std::ostream& out) {
  const auto game = game_from_options(options);
  AsciiTable table({"scheme", "welfare", "potential", "damage", "Sum d_i", "P(Omega)",
                    "iterations"});
  for (core::Scheme scheme : core::all_schemes()) {
    const auto result = core::run_scheme(game, scheme);
    table.add_labeled_row(core::scheme_name(scheme),
                          {result.welfare, result.potential, result.total_damage,
                           result.total_data_fraction, result.performance,
                           static_cast<double>(result.solution.iterations)},
                          6);
  }
  out << table.render();
  return 0;
}

int run_sweep(const Config& options, std::ostream& out) {
  const auto scheme = parse_scheme(options.get_string("scheme", "dbr"));
  if (!scheme.ok()) {
    out << scheme.error().to_string() << "\n";
    return 2;
  }
  const double lo = options.get_double("gamma_lo", 1e-10);
  const double hi = options.get_double("gamma_hi", 1e-7);
  const std::size_t points = static_cast<std::size_t>(options.get_int("points", 9));
  AsciiTable table({"gamma", "welfare", "damage", "Sum d_i"});
  for (double gamma : math::logspace(lo, hi, points)) {
    Config point = options;
    point.set("gamma", format_double(gamma, 12));
    const auto game = game_from_options(point);
    const auto result = core::run_scheme(game, scheme.value());
    table.add_row_doubles({gamma, result.welfare, result.total_damage,
                           result.total_data_fraction},
                          6);
  }
  out << table.render();
  return 0;
}

int run_session(const Config& options, std::ostream& out) {
  const auto game = game_from_options(options);
  TradingSession session(game);
  auto built = session_options_from_config(options);
  if (!built.ok()) {
    out << built.error().to_string() << "\n";
    return 2;
  }
  SessionOptions session_options = std::move(built).take();
  if (!session_options.faults.empty()) {
    out << "fault plan: " << session_options.faults.summary() << "\n";
  }
  if (const auto dir = options.get("checkpoint")) {
    session_options.checkpoint_dir = *dir;
    session_options.checkpoint_every =
        static_cast<std::size_t>(options.get_int("checkpoint_every", 1));
    session_options.resume = options.get_bool("resume", false);
  }
  const SessionResult result = session.run(session_options);
  out << describe_session(game, result);
  if (const auto report_path = options.get("report")) {
    const Status written = write_session_report(*report_path, game, result);
    if (!written.ok()) {
      out << written.error().to_string() << "\n";
      return 1;
    }
    out << "report written to " << *report_path << "\n";
  }
  return result.chain_valid && result.settlement_sum == 0 ? 0 : 1;
}

int run_metrics(const Config& options, std::ostream& out) {
  // Runs one solve purely for its telemetry; the caller (run) prints the
  // registry snapshot afterwards.
  const auto scheme = parse_scheme(options.get_string("scheme", "cgbd"));
  if (!scheme.ok()) {
    out << scheme.error().to_string() << "\n";
    return 2;
  }
  const auto game = game_from_options(options);
  const auto result = core::run_scheme(game, scheme.value());
  out << "scheme " << core::scheme_name(scheme.value()) << ": welfare "
      << format_double(result.welfare, 6) << ", iterations " << result.solution.iterations
      << ", " << format_double(result.solution.solve_seconds, 4) << "s\n";
  return 0;
}

int run_chain(const Config& options, std::ostream& out) {
  const auto game = game_from_options(options);
  TradingSession session(game);
  const SessionResult result = session.run();
  chain::Blockchain& chain = session.blockchain();
  out << "contract " << result.contract_address.to_hex() << "\n";
  AsciiTable blocks({"block", "txs", "hash (prefix)"});
  for (std::size_t b = 0; b < chain.block_count(); ++b) {
    blocks.add_row({std::to_string(b), std::to_string(chain.block(b).transactions.size()),
                    chain::hash_to_hex(chain.block(b).header.hash()).substr(0, 16)});
  }
  out << blocks.render();
  AsciiTable events({"#", "event", "block"});
  for (std::size_t e = 0; e < chain.events().size(); ++e) {
    events.add_row({std::to_string(e), chain.events()[e].name,
                    std::to_string(chain.events()[e].block_index)});
  }
  out << events.render();
  const auto validation = chain.validate();
  out << "validation: " << (validation.valid ? "VALID" : validation.problem) << "\n";
  return validation.valid ? 0 : 1;
}

int run_serve(const Config& options, std::ostream& out) {
  auto serve_options = server::serve_options_from_config(options);
  if (!serve_options.ok()) {
    out << serve_options.error().to_string() << "\n";
    return 2;
  }
  server::Server daemon(std::move(serve_options).take());
  // SIGTERM flips the async-signal-safe drain flag; the EINTR-aware stdin
  // reader notices and the server drains (checkpoint in-flight work, flush
  // ledgers, exit 0).
  server::install_signal_handler(SIGTERM, server::request_drain);
  server::FdLineSource input(0);
  const server::ServeSummary summary = daemon.run(input, out);
  return summary.exit_code;
}

}  // namespace

Result<Invocation> parse(const std::vector<std::string>& args) {
  if (args.empty()) return Error{"cli", "missing command; try 'help'"};
  Invocation invocation;
  invocation.command = to_lower(args.front());
  bool known = false;
  for (const char* candidate : kCommands) {
    if (invocation.command == candidate) known = true;
  }
  if (!known) return Error{"cli", "unknown command '" + args.front() + "'; try 'help'"};
  auto options = Config::from_args({args.begin() + 1, args.end()});
  if (!options.ok()) return options.error();
  invocation.options = options.value();
  return invocation;
}

Result<core::Scheme> parse_scheme(const std::string& name) {
  const std::string lowered = to_lower(name);
  if (lowered == "cgbd") return core::Scheme::kCgbd;
  if (lowered == "dbr") return core::Scheme::kDbr;
  if (lowered == "wpr") return core::Scheme::kWpr;
  if (lowered == "gca") return core::Scheme::kGca;
  if (lowered == "fip") return core::Scheme::kFip;
  if (lowered == "tos") return core::Scheme::kTos;
  return Error{"cli", "unknown scheme '" + name + "' (cgbd|dbr|wpr|gca|fip|tos)"};
}

game::ExperimentSpec spec_from_options(const Config& options) {
  game::ExperimentSpec spec;
  spec.org_count = static_cast<std::size_t>(options.get_int("orgs", 10));
  spec.params.gamma = options.get_double("gamma", spec.params.gamma);
  spec.rho_mean = options.get_double("mu", spec.rho_mean);
  spec.params.omega_e = options.get_double("omega_e", spec.params.omega_e);
  spec.params.tau = options.get_double("tau", spec.params.tau);
  spec.params.lambda = options.get_double("lambda", spec.params.lambda);
  spec.params.d_min = options.get_double("d_min", spec.params.d_min);
  return spec;
}

game::CoopetitionGame game_from_options(const Config& options) {
  // file=path loads a fully explicit game definition (see
  // game::game_from_config); otherwise a seeded Table-II draw is used.
  if (const auto path = options.get("file")) {
    std::ifstream input(*path);
    if (!input) throw std::runtime_error("cannot open game file " + *path);
    std::ostringstream buffer;
    buffer << input.rdbuf();
    auto file_config = Config::from_text(buffer.str());
    if (!file_config.ok()) throw std::runtime_error(file_config.error().to_string());
    // CLI options override file entries (e.g. tweak gamma on the fly).
    Config merged = file_config.value();
    for (const auto& [key, value] : options.entries()) merged.set(key, value);
    auto loaded = game::game_from_config(merged);
    if (!loaded.ok()) throw std::runtime_error(loaded.error().to_string());
    return std::move(loaded).take();
  }
  return game::make_experiment_game(spec_from_options(options),
                                    static_cast<std::uint64_t>(options.get_int("seed", 42)));
}

Result<SessionOptions> session_options_from_config(const Config& options) {
  const auto scheme = parse_scheme(options.get_string("scheme", "dbr"));
  if (!scheme.ok()) return scheme.error();
  SessionOptions session_options;
  session_options.scheme = scheme.value();
  session_options.run_training = options.get_bool("train", false);
  session_options.sample_scale = options.get_double("sample_scale", 0.15);
  session_options.fedavg.rounds =
      static_cast<std::size_t>(options.get_int("rounds", 5));
  session_options.fedavg.quorum =
      static_cast<std::size_t>(options.get_int("quorum", 1));
  {
    auto aggregator = fl::parse_aggregator(options.get_string("agg", "mean"));
    if (!aggregator.ok()) return aggregator.error();
    session_options.fedavg.aggregator = aggregator.value();
  }
  session_options.seal_every =
      static_cast<std::size_t>(options.get_int("seal_every", 1));
  if (const auto spec = options.get("faults")) {
    auto plan = parse_fault_plan(*spec);
    if (!plan.ok()) return plan.error();
    session_options.faults = std::move(plan).take();
  }
  return session_options;
}

std::string usage() {
  return "tradefl — the TradeFL cross-silo FL trading mechanism (ICDCS'23 reproduction)\n"
         "usage: tradefl <command> [key=value ...]\n"
         "commands:\n"
         "  solve    compute the equilibrium (scheme=dbr|cgbd|wpr|gca|fip|tos)\n"
         "  compare  run every scheme and tabulate welfare/damage/data\n"
         "  sweep    gamma sweep (gamma_lo=, gamma_hi=, points=, scheme=)\n"
         "  metrics  run one solve and print its metrics snapshot (scheme=cgbd)\n"
         "  session  full pipeline incl. on-chain settlement (train=1 to run FedAvg)\n"
         "  chain    settlement walkthrough with blocks/events\n"
         "  serve    long-lived session daemon over a JSON-lines stdin/stdout\n"
         "           protocol (root=DIR workers=N queue_limit=N watchdog_seconds=S\n"
         "           resume=1; SIGTERM drains cleanly; see docs/ARCHITECTURE.md)\n"
         "  help     this text\n"
         "common options: seed=42 orgs=10 gamma=5.12e-9 mu=0.05 omega_e= tau= lambda=\n"
         "               file=game.cfg (explicit game definition; see game_from_config)\n"
         "               threads=1 (worker threads for training/eval/master "
         "enumeration;\n"
         "               results are bit-identical for any value)\n"
         "               seal_every=1 (session only; chain batch sealing — seal a\n"
         "               block every N txs; 1 = dev-chain block per call, 0 = manual)\n"
         "robustness:    faults=seed:1,drop:0.2,submit:0.1 (solve+session; seeded\n"
         "               deterministic fault injection. keys: seed drop straggle scale\n"
         "               corrupt noise revert gas submit solver; Byzantine silo\n"
         "               attacks: signflip:N amplify:N amplifyx:F freeride:N\n"
         "               collude:N colludex:S (N lowest-indexed silos deviate);\n"
         "               rates in [0,1];\n"
         "               crash:N kills the process at deterministic point N, right\n"
         "               after a checkpoint became durable — exit code 86)\n"
         "               agg=mean|median|trimmed[:f]|krum[:f]|multikrum[:f]|\n"
         "               normclip[:c] (FedAvg aggregation rule; robust rules blunt\n"
         "               the Byzantine attacks — see docs/ROBUSTNESS.md)\n"
         "               quorum=1 (min surviving clients per FedAvg round; a round\n"
         "               below quorum is skipped, never aborted)\n"
         "durability:    checkpoint=DIR (solve+session; crash-consistent snapshots +\n"
         "               chain WAL in DIR) checkpoint_every=N resume=1 (continue at\n"
         "               the last durable checkpoint, bit-identically to an\n"
         "               uninterrupted run) report=FILE (session only; canonical\n"
         "               deterministic report for byte-comparison)\n"
         "observability: metrics=1 (print snapshot table after any command)\n"
         "               metrics_json=FILE (write snapshot JSON)\n"
         "               trace=FILE (write Chrome trace-event JSON; open in\n"
         "               chrome://tracing or ui.perfetto.dev)\n"
         "               ledger=FILE (write a JSON-lines run ledger: phase\n"
         "               events + periodic metrics snapshots; identical across\n"
         "               threads= values after stripping *_us timestamps)\n"
         "               ledger_metrics_every=32 (auto metrics-line cadence;\n"
         "               0 = final snapshot only)\n";
}

namespace {

int dispatch(const Invocation& invocation, std::ostream& out) {
  if (invocation.command == "solve") return run_solve(invocation.options, out);
  if (invocation.command == "compare") return run_compare(invocation.options, out);
  if (invocation.command == "sweep") return run_sweep(invocation.options, out);
  if (invocation.command == "metrics") return run_metrics(invocation.options, out);
  if (invocation.command == "session") return run_session(invocation.options, out);
  if (invocation.command == "chain") return run_chain(invocation.options, out);
  if (invocation.command == "serve") return run_serve(invocation.options, out);
  out << usage();
  return 2;
}

}  // namespace

int run(const Invocation& invocation, std::ostream& out) {
  if (invocation.command == "help") {
    out << usage();
    return 0;
  }
  const Config& options = invocation.options;
  const std::int64_t threads = options.get_int("threads", 1);
  if (threads < 1) {
    out << "threads must be >= 1\n";
    return 2;
  }
  set_global_threads(static_cast<std::size_t>(threads));
  const bool want_table =
      invocation.command == "metrics" || options.get_bool("metrics", false);
  const auto trace_path = options.get("trace");
  const auto json_path = options.get("metrics_json");
  const auto ledger_path = options.get("ledger");
  const bool observing = want_table || trace_path.has_value() || json_path.has_value() ||
                         ledger_path.has_value();
  if (observing) {
    // Fresh telemetry for exactly this invocation.
    obs::metrics().reset();
    obs::trace().reset();
    obs::set_enabled(true);
  }
  if (ledger_path) {
    const Status opened = obs::event_log().open(*ledger_path);
    if (!opened.ok()) {
      std::cerr << "tradefl: [" << opened.error().code << "] " << opened.error().message << "\n";
      obs::set_enabled(false);
      return 1;
    }
    const std::int64_t every = options.get_int("ledger_metrics_every", 32);
    obs::event_log().set_metrics_every(every < 0 ? 0 : static_cast<std::size_t>(every));
  }

  int code = dispatch(invocation, out);

  if (ledger_path && obs::event_log().active()) {
    // Final deterministic-shape snapshot, then the close line.
    obs::event_log().metrics_event(obs::metrics().snapshot());
    obs::event_log().close();
    out << "run ledger written to " << *ledger_path << "\n";
  }
  if (observing) {
    obs::set_enabled(false);
    const obs::MetricsSnapshot snapshot = obs::metrics().snapshot();
    if (want_table) out << snapshot.to_table();
    if (json_path) {
      std::ofstream file(*json_path);
      if (!file) {
        out << "cannot write metrics JSON to " << *json_path << "\n";
        code = code == 0 ? 1 : code;
      } else {
        file << snapshot.to_json();
        out << "metrics JSON written to " << *json_path << "\n";
      }
    }
    if (trace_path) {
      std::ofstream file(*trace_path);
      if (!file) {
        out << "cannot write trace to " << *trace_path << "\n";
        code = code == 0 ? 1 : code;
      } else {
        obs::trace().write_chrome_trace(file);
        out << "trace written to " << *trace_path << " ("
            << obs::trace().size() << " spans)\n";
      }
    }
  }
  return code;
}

}  // namespace tradefl::cli
