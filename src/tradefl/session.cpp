#include "tradefl/session.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/snapshot.h"
#include "core/solution_codec.h"
#include "obs/obs.h"

namespace tradefl {

using chain::Address;
using chain::Fixed;
using chain::Wei;

TradingSession::TradingSession(const game::CoopetitionGame& game) : game_(&game) {}

chain::Blockchain& TradingSession::blockchain() {
  if (!chain_) throw std::runtime_error("session: no run yet");
  return *chain_;
}

Address TradingSession::org_address(game::OrgId i) const {
  return Address::from_name(game_->org(i).name);
}

namespace {

// ----- session checkpoint (phase-boundary snapshots) -----

// v2: the aggregation rule joined the resume fingerprint and the result
// carries the optional strategic-deviation audit.
constexpr std::uint32_t kSessionSnapshotVersion = 2;
constexpr const char* kSessionSnapshotKind = "tradefl.session";

/// Everything a resumed session needs to continue at the last completed
/// phase: the result fields filled so far, plus — once the chain exists —
/// the full chain state (escrow included) and the Web3 fault cursor, so
/// re-executed calls draw the same injected faults the killed run would
/// have seen.
struct SessionCheckpoint {
  // Fingerprint: resuming under a different experiment fails closed.
  std::uint64_t org_count = 0;
  std::uint64_t seed = 0;
  std::uint64_t scheme = 0;
  bool run_training = false;
  fl::AggregatorSpec aggregator{};

  /// 1 = solve, 2 = training, 3 = escrow, 4 = contributions, 5 = settled.
  std::uint64_t completed_phase = 0;
  SessionResult result;

  bool has_chain = false;  // phases >= 3 carry the chain alongside
  chain::Bytes chain_state;
  std::uint64_t call_index = 0;
  std::uint64_t retry_sequence = 0;
  std::uint64_t retry_attempts = 0;  // lifetime web3 attempts at snapshot time
  bool chain_ok = true;
};

void put_address(SnapshotWriter& writer, const Address& address) {
  writer.put_bytes(std::vector<std::uint8_t>(address.bytes.begin(), address.bytes.end()));
}

Address get_address(SnapshotReader& reader) {
  const std::vector<std::uint8_t> raw = reader.get_bytes();
  Address address;
  if (raw.size() != address.bytes.size()) {
    throw SnapshotError("session: address must be 20 bytes");
  }
  std::copy(raw.begin(), raw.end(), address.bytes.begin());
  return address;
}

Result<std::size_t> write_session_checkpoint(const std::string& path,
                                             const SessionCheckpoint& state) {
  SnapshotWriter writer;
  writer.put_u64(state.org_count);
  writer.put_u64(state.seed);
  writer.put_u64(state.scheme);
  writer.put_bool(state.run_training);
  fl::put_aggregator_spec(writer, state.aggregator);
  writer.put_u64(state.completed_phase);

  const SessionResult& result = state.result;
  core::put_mechanism_result(writer, result.mechanism);
  core::put_property_report(writer, result.properties);
  writer.put_bool(result.training.has_value());
  if (result.training.has_value()) fl::put_fedavg_result(writer, *result.training);
  writer.put_bool(result.deviation.has_value());
  if (result.deviation.has_value()) core::put_deviation_audit(writer, *result.deviation);
  writer.put_u64(result.degradations.size());
  for (const Degradation& degradation : result.degradations) {
    writer.put_string(degradation.phase);
    writer.put_string(degradation.detail);
  }

  writer.put_bool(state.has_chain);
  if (state.has_chain) {
    put_address(writer, result.contract_address);
    writer.put_bytes(state.chain_state);
    writer.put_u64(state.call_index);
    writer.put_u64(state.retry_sequence);
    writer.put_u64(state.retry_attempts);
    writer.put_bool(state.chain_ok);
  }

  // Cross-check fields (meaningful once completed_phase == 5; written
  // unconditionally so the layout never forks on phase).
  writer.put_u64(result.settlements_wei.size());
  for (Wei wei : result.settlements_wei) writer.put_i64(wei);
  writer.put_i64(result.settlement_sum);
  writer.put_f64(result.max_settlement_gap);
  writer.put_bool(result.chain_valid);
  writer.put_u64(result.total_gas);
  writer.put_u64(result.blocks);
  writer.put_u64(result.events);
  writer.put_bool(result.settled);
  writer.put_u64(result.retry_attempts);
  return write_snapshot_file(path, kSessionSnapshotKind, kSessionSnapshotVersion, writer);
}

Result<SessionCheckpoint> read_session_checkpoint(const std::string& path) {
  auto payload = read_snapshot_file(path, kSessionSnapshotKind, kSessionSnapshotVersion);
  if (!payload.ok()) return payload.error();
  return decode_snapshot<SessionCheckpoint>(payload.value(), [](SnapshotReader& reader) {
    SessionCheckpoint state;
    state.org_count = reader.get_u64();
    state.seed = reader.get_u64();
    state.scheme = reader.get_u64();
    state.run_training = reader.get_bool();
    state.aggregator = fl::get_aggregator_spec(reader);
    state.completed_phase = reader.get_u64();

    SessionResult& result = state.result;
    result.mechanism = core::get_mechanism_result(reader);
    result.properties = core::get_property_report(reader);
    if (reader.get_bool()) result.training = fl::get_fedavg_result(reader);
    if (reader.get_bool()) result.deviation = core::get_deviation_audit(reader);
    const std::uint64_t degradation_count = reader.get_u64();
    for (std::uint64_t i = 0; i < degradation_count; ++i) {
      Degradation degradation;
      degradation.phase = reader.get_string();
      degradation.detail = reader.get_string();
      result.degradations.push_back(std::move(degradation));
    }

    state.has_chain = reader.get_bool();
    if (state.has_chain) {
      result.contract_address = get_address(reader);
      state.chain_state = reader.get_bytes();
      state.call_index = reader.get_u64();
      state.retry_sequence = reader.get_u64();
      state.retry_attempts = reader.get_u64();
      state.chain_ok = reader.get_bool();
    }

    const std::uint64_t settlement_count = reader.get_u64();
    for (std::uint64_t i = 0; i < settlement_count; ++i) {
      result.settlements_wei.push_back(reader.get_i64());
    }
    result.settlement_sum = reader.get_i64();
    result.max_settlement_gap = reader.get_f64();
    result.chain_valid = reader.get_bool();
    result.total_gas = reader.get_u64();
    result.blocks = static_cast<std::size_t>(reader.get_u64());
    result.events = static_cast<std::size_t>(reader.get_u64());
    result.settled = reader.get_bool();
    result.retry_attempts = reader.get_u64();
    return state;
  });
}

[[noreturn]] void fail_session(const char* action, const Error& error) {
  throw std::runtime_error(std::string("session ") + action + " failed closed [" + error.code +
                           "]: " + error.message);
}

/// Projects the FedAvg result into the layer-neutral view the deviation
/// audit consumes (core/ cannot depend on fl/ directly).
core::TrainingObservation observe_training(const fl::FedAvgResult& training) {
  core::TrainingObservation observed;
  observed.measured_accuracy = training.final_accuracy;
  observed.attacked_updates = training.total_attacked;
  observed.rejected_updates = training.total_rejected;
  observed.clipped_updates = training.total_clipped;
  observed.executed_rounds = training.history.size();
  double influence_sum = 0.0;
  for (const fl::RoundMetrics& round : training.history) {
    if (round.skipped) continue;
    ++observed.aggregated_rounds;
    influence_sum += round.attacker_influence;
  }
  observed.attacker_influence =
      observed.aggregated_rounds > 0
          ? influence_sum / static_cast<double>(observed.aggregated_rounds)
          : 0.0;
  observed.client_influence = training.client_influence;
  observed.client_rejected = training.client_rejected;
  return observed;
}

}  // namespace

SessionResult TradingSession::run(const SessionOptions& options) {
  TFL_SPAN("session.run");
  TFL_LATENCY_TIMER("session.latency.seconds");
  TFL_LEDGER_PHASE("session.run");
  const game::CoopetitionGame& game = *game_;
  const std::size_t n = game.size();
  SessionResult result;

  // One injector drives every phase; a default-constructed plan disables it.
  const FaultInjector injector(options.faults);
  const FaultInjector* faults = injector.enabled() ? &injector : nullptr;
  const auto degraded = [&](const char* phase, const std::string& detail) {
    result.degradations.push_back(Degradation{phase, detail});
    TFL_COUNTER_INC("session.degradations");
    TFL_WARN << "session degraded [" << phase << "]: " << detail;
  };

  // ---- Checkpoint plumbing (see SessionOptions::checkpoint_dir). ----
  const bool checkpointing = !options.checkpoint_dir.empty();
  const std::string session_snap =
      checkpointing ? options.checkpoint_dir + "/session.snap" : std::string();
  const std::string wal_path =
      checkpointing ? options.checkpoint_dir + "/chain.wal" : std::string();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    // Best-effort: an unusable directory surfaces as a typed write error below.
  }

  std::uint64_t completed_phase = 0;
  std::uint64_t retry_baseline = 0;
  std::uint64_t resumed_call_index = 0;
  std::uint64_t resumed_retry_sequence = 0;
  chain::Bytes resumed_chain_state;
  bool resumed_has_chain = false;
  bool chain_ok = true;

  if (checkpointing && options.resume && snapshot_exists(session_snap)) {
    Result<SessionCheckpoint> loaded = read_session_checkpoint(session_snap);
    if (!loaded.ok()) fail_session("resume", loaded.error());
    SessionCheckpoint& state = loaded.value();
    if (state.org_count != n || state.seed != options.seed ||
        state.scheme != static_cast<std::uint64_t>(options.scheme) ||
        state.run_training != options.run_training ||
        state.aggregator != options.fedavg.aggregator) {
      fail_session("resume", Error{"snapshot.decode",
                                   "checkpoint belongs to a different session configuration"});
    }
    completed_phase = state.completed_phase;
    result = std::move(state.result);
    resumed_has_chain = state.has_chain;
    resumed_chain_state = std::move(state.chain_state);
    resumed_call_index = state.call_index;
    resumed_retry_sequence = state.retry_sequence;
    retry_baseline = state.retry_attempts;
    chain_ok = state.chain_ok;
    TFL_COUNTER_INC("snapshot.resumes");
    TFL_INFO << "session resumed at completed phase " << completed_phase;
  }

  chain::Web3Client* web3_ptr = nullptr;
  const auto save_phase = [&](std::uint64_t phase) {
    if (!checkpointing) return;
    SessionCheckpoint state;
    state.org_count = n;
    state.seed = options.seed;
    state.scheme = static_cast<std::uint64_t>(options.scheme);
    state.run_training = options.run_training;
    state.aggregator = options.fedavg.aggregator;
    state.completed_phase = phase;
    state.result = result;
    if (phase >= 3 && chain_ && web3_ptr != nullptr) {
      state.has_chain = true;
      state.chain_state = chain_->save_chain_state();
      state.call_index = web3_ptr->call_index();
      state.retry_sequence = web3_ptr->retry_sequence();
      state.retry_attempts = retry_baseline + web3_ptr->retry_attempts();
      state.chain_ok = chain_ok;
    }
    const Result<std::size_t> written = write_session_checkpoint(session_snap, state);
    if (!written.ok()) fail_session("checkpoint", written.error());
    TFL_COUNTER_INC("snapshot.writes");
    TFL_COUNTER_ADD("snapshot.bytes", written.value());
    // A scheduled crash fires only after the phase is durable, so the killed
    // run is always resumable from exactly this boundary.
    crash_if_scheduled(faults, phase);
  };

  // Phase entry guard: cooperative cancellation plus the deterministic
  // `hang:<phase>` fault (blocks until the cancel token fires — the watchdog
  // test's stand-in for a wedged solve). Both fire before any phase work, so
  // the durable state is exactly the previous phase boundary.
  const auto enter_phase = [&](std::uint64_t phase) {
    check_cancelled(options.cancel);
    hang_if_scheduled(faults, phase, options.cancel);
  };

  // ---- 1. Equilibrium computation (off-chain, Sec. V). ----
  if (completed_phase < 1) {
    enter_phase(1);
    TFL_SPAN("session.solve");
    TFL_LEDGER_PHASE("session.solve");
    core::SchemeOptions scheme_options = options.scheme_options;
    scheme_options.cgbd.faults = faults;
    scheme_options.cgbd.cancel = options.cancel;
    if (checkpointing) {
      scheme_options.cgbd.checkpoint_path = options.checkpoint_dir + "/cgbd.snap";
      scheme_options.cgbd.checkpoint_every = options.checkpoint_every;
      scheme_options.cgbd.resume =
          options.resume && snapshot_exists(scheme_options.cgbd.checkpoint_path);
    }
    // A solve failure is not containable — without {d*, f*} there is nothing
    // to trade — but CGBD recovers internally (damped restart, then DBR
    // fallback); surface the fallback as a degradation rather than hiding it.
    result.mechanism = core::run_scheme(game, options.scheme, scheme_options);
    for (const auto& [key, value] : result.mechanism.solution.diagnostics) {
      if (key == "fallback_dbr" && value > 0.0) {
        degraded("solve", "CGBD barrier diverged twice; solution computed by DBR fallback");
      }
    }
    result.properties = core::verify_properties(game, result.mechanism,
                                                options.scheme != core::Scheme::kTos);
    save_phase(1);
  }
  const game::StrategyProfile& profile = result.mechanism.solution.profile;

  // ---- 2. Optional FedAvg training with the equilibrium fractions. ----
  if (completed_phase < 2) {
    enter_phase(2);
    if (options.run_training) {
      TFL_SPAN("session.train");
      TFL_LEDGER_PHASE("session.train");
      try {
        const fl::DatasetSpec concept_spec =
            fl::DatasetSpec::builtin(options.dataset, options.seed);
        std::vector<fl::Dataset> locals;
        locals.reserve(n);
        std::vector<fl::FedClient> clients;
        for (game::OrgId i = 0; i < n; ++i) {
          const std::size_t samples = std::max<std::size_t>(
              8, static_cast<std::size_t>(std::lround(
                     options.sample_scale * static_cast<double>(game.org(i).sample_count))));
          locals.emplace_back(concept_spec.with_sample_seed(options.seed + i + 1), samples);
        }
        for (game::OrgId i = 0; i < n; ++i) {
          clients.push_back(fl::FedClient{&locals[i], profile[i].data_fraction,
                                          options.seed * 131 + i});
        }
        const fl::Dataset test_set(concept_spec.with_sample_seed(options.seed + 7777),
                                   options.test_samples);
        fl::ModelSpec model_spec;
        model_spec.kind = options.model;
        model_spec.channels = concept_spec.channels;
        model_spec.height = concept_spec.height;
        model_spec.width = concept_spec.width;
        model_spec.classes = concept_spec.classes;
        model_spec.seed = options.seed;
        fl::FedAvgOptions fedavg_options = options.fedavg;
        fedavg_options.faults = faults;
        fedavg_options.cancel = options.cancel;
        if (checkpointing) {
          fedavg_options.checkpoint_path = options.checkpoint_dir + "/fedavg.snap";
          fedavg_options.checkpoint_every = options.checkpoint_every;
          fedavg_options.resume =
              options.resume && snapshot_exists(fedavg_options.checkpoint_path);
        }
        result.training = fl::train_fedavg(model_spec, clients, test_set, fedavg_options);
        if (result.training->rounds_skipped > 0) {
          degraded("training", std::to_string(result.training->rounds_skipped) +
                                   " round(s) skipped below quorum " +
                                   std::to_string(fedavg_options.quorum));
        }
        if (result.training->total_quarantined > 0) {
          degraded("training", std::to_string(result.training->total_quarantined) +
                                   " corrupted update(s) quarantined");
        }
        // Strategic-deviation audit: when the plan schedules adversarial
        // updates, re-check IR/BB/CE empirically against the accuracy the
        // attacked run actually reached and price each deviator's gain.
        if (faults != nullptr && options.faults.has_attacks()) {
          result.deviation = core::audit_deviation(game, result.mechanism, result.properties,
                                                   observe_training(*result.training), *faults);
          TFL_INFO << result.deviation->summary();
          if (!result.deviation->ir_empirical || !result.deviation->bb_empirical) {
            degraded("training", "deviation audit: empirical mechanism property violated");
          }
        }
      } catch (const OperationCancelled&) {
        throw;  // the supervisor owns the token; cancellation is not a failure
      } catch (const InjectedCrash&) {
        throw;  // a contained crash must reach the server's containment scope
      } catch (const std::exception& failure) {
        // Training is advisory for the trade itself (the settlement depends on
        // the equilibrium profile, not the model), so its failure degrades the
        // session rather than aborting it.
        result.training.reset();
        degraded("training", failure.what());
      }
    }
    save_phase(2);
  }

  // ---- 3. Deploy chain + contract (or restore both from the checkpoint). ----
  chain_ = std::make_unique<chain::Blockchain>();

  chain::TradeFlContractConfig config;
  config.org_count = n;
  config.gamma_scaled = Fixed::from_double(game.params().gamma * 1e9);
  config.lambda = Fixed::from_double(game.params().lambda);
  config.rho.resize(n * n, Fixed{});
  for (game::OrgId i = 0; i < n; ++i) {
    for (game::OrgId j = 0; j < n; ++j) {
      if (i != j) config.rho[i * n + j] = Fixed::from_double(game.rho().at(i, j));
    }
  }
  config.data_size_gb.reserve(n);
  double worst_outflow = 0.0;
  for (game::OrgId i = 0; i < n; ++i) {
    const double s_gb = game.org(i).data_size_bits / 1e9;
    config.data_size_gb.push_back(Fixed::from_double(s_gb));
    // Worst-case redistribution outflow bound for deposit sizing: every
    // coopetitor maxes χ while org i sits at the minimum.
    const double f_max_ghz = game.org(i).freq_levels.back() / 1e9;
    const double chi_max = s_gb + game.params().lambda * f_max_ghz;
    worst_outflow = std::max(
        worst_outflow,
        game.params().gamma * 1e9 * game.rho().row_sum(i) * chi_max);
  }
  const Wei min_deposit =
      static_cast<Wei>(std::ceil(worst_outflow * 1.25 * Fixed::kScale)) + 1;
  config.min_deposit = min_deposit;

  if (completed_phase >= 3) {
    if (!resumed_has_chain) {
      fail_session("resume",
                   Error{"snapshot.decode", "phase >= 3 checkpoint lacks chain state"});
    }
    // The contract config is rebuilt deterministically from the game above,
    // so the factory recreates the exact contract the killed run deployed;
    // load_state then restores escrow, profiles, and round phase.
    const chain::ContractFactory factory =
        [&config](const std::string& name) -> chain::ContractPtr {
      if (name != "TradeFL") return nullptr;
      return std::make_unique<chain::TradeFlContract>(config);
    };
    const Status restored = chain_->restore_chain_state(resumed_chain_state, factory);
    if (!restored.ok()) fail_session("resume", restored.error());
  }
  if (checkpointing) {
    // Mirror-rewrite: the WAL is re-synced to the restored chain, discarding
    // any blocks the killed run sealed after its last durable snapshot (they
    // will be re-sealed identically by the re-executed phase).
    const Status attached = chain_->attach_wal(wal_path);
    if (!attached.ok()) fail_session("checkpoint", attached.error());
  }

  chain::Web3Client web3(*chain_, options.seal_every);
  web3.set_fault_injector(faults);
  web3.set_retry_policy(options.retry);
  if (completed_phase >= 3) {
    web3.restore_fault_cursor(resumed_call_index, resumed_retry_sequence);
  }
  web3_ptr = &web3;

  const Wei funding = options.funding > 0 ? options.funding : min_deposit * 2;
  if (funding < min_deposit) throw std::invalid_argument("session: funding below min deposit");

  // On-chain phases run through call_with_retry: transient injected failures
  // (submission loss, gas exhaustion) are absorbed by the RetryPolicy; a
  // giveup or revert aborts the REMAINING chain steps gracefully — the
  // contract simply never settles (escrow untouched on the simulated chain),
  // settlements stay zero, and the failure lands in `degradations`.
  const auto chain_call = [&](const Address& from, const std::string& method,
                              std::vector<chain::AbiValue> args = {},
                              Wei value = 0) -> Result<chain::CallOutcome> {
    Result<chain::CallOutcome> outcome =
        web3.call_with_retry(from, result.contract_address, method, args, value);
    if (!outcome) {
      chain_ok = false;
      degraded("chain", outcome.error().to_string());
    }
    return outcome;
  };

  // ---- 4. Register + deposit (Fig. 3 step 1). ----
  if (completed_phase < 3) {
    enter_phase(3);
    result.contract_address = chain_->deploy(
        std::make_unique<chain::TradeFlContract>(config));
    for (game::OrgId i = 0; i < n && chain_ok; ++i) {
      chain_->credit(org_address(i), funding);
      chain_call(org_address(i), "register", {org_address(i), static_cast<std::uint64_t>(i)});
      if (!chain_ok) break;
      chain_call(org_address(i), "depositSubmit", {}, min_deposit);
    }
    save_phase(3);
  }

  // ---- 5. Report contributions (Fig. 3 step 2). ----
  if (completed_phase < 4) {
    enter_phase(4);
    for (game::OrgId i = 0; i < n && chain_ok; ++i) {
      const double f_ghz = game.frequency(i, profile[i]) / 1e9;
      chain_call(org_address(i), "contributionSubmit",
                 {Fixed::from_double(profile[i].data_fraction), Fixed::from_double(f_ghz)});
    }
    save_phase(4);
  }

  // ---- 6. Settle (Fig. 3 step 3) + cross-checks. ----
  if (completed_phase < 5) {
    enter_phase(5);
    result.settlements_wei.assign(n, 0);
    if (chain_ok) {
      TFL_SPAN("session.settle");
      TFL_LATENCY_TIMER("chain.settle.seconds");
      TFL_LEDGER_PHASE("session.settle");
      chain_call(org_address(0), "payoffCalculate");
      for (game::OrgId i = 0; i < n && chain_ok; ++i) {
        // Exemplar Result chain: retried call -> decoded payoff without an
        // intermediate throw; a failed step short-circuits as the Error.
        const Result<Wei> payoff =
            chain_call(org_address(i), "payoffOf", {static_cast<std::uint64_t>(i)})
                .and_then([](const chain::CallOutcome& outcome) -> Result<Wei> {
                  if (outcome.returned.empty() ||
                      !std::holds_alternative<std::int64_t>(outcome.returned.front())) {
                    return Error{"decode", "payoffOf returned no int64 payoff"};
                  }
                  return std::get<std::int64_t>(outcome.returned.front());
                });
        if (payoff) result.settlements_wei[i] = payoff.value();
      }
      if (chain_ok) {
        chain_call(org_address(0), "payoffTransfer");
        result.settled = chain_ok;
      }
    }

    // ---- 7. Cross-checks. ----
    result.settlement_sum = 0;
    for (Wei wei : result.settlements_wei) result.settlement_sum += wei;
    if (result.settled) {
      for (game::OrgId i = 0; i < n; ++i) {
        const double off_chain = game.redistribution(i, profile);
        const double on_chain =
            static_cast<double>(result.settlements_wei[i]) / static_cast<double>(Fixed::kScale);
        result.max_settlement_gap =
            std::max(result.max_settlement_gap, std::abs(off_chain - on_chain));
      }
    }
    result.retry_attempts = retry_baseline + web3.retry_attempts();
    // Under batch sealing (seal_every > 1) the tail of the settlement flow
    // can still sit in the mempool; seal it so validation and the report
    // cover every transaction.
    if (chain_->has_pending()) chain_->seal_block();
    const chain::ChainValidation validation = chain_->validate();
    result.chain_valid = validation.valid;
    if (!validation.valid) TFL_ERROR << "session: chain invalid: " << validation.problem;
    for (const chain::Receipt& receipt : chain_->receipts()) result.total_gas += receipt.gas_used;
    result.blocks = chain_->block_count();
    result.events = chain_->events().size();
    save_phase(5);
  }
  return result;
}

}  // namespace tradefl
