#include "tradefl/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/logging.h"
#include "obs/obs.h"

namespace tradefl {

using chain::Address;
using chain::Fixed;
using chain::Wei;

TradingSession::TradingSession(const game::CoopetitionGame& game) : game_(&game) {}

chain::Blockchain& TradingSession::blockchain() {
  if (!chain_) throw std::runtime_error("session: no run yet");
  return *chain_;
}

Address TradingSession::org_address(game::OrgId i) const {
  return Address::from_name(game_->org(i).name);
}

SessionResult TradingSession::run(const SessionOptions& options) {
  TFL_SPAN("session.run");
  const game::CoopetitionGame& game = *game_;
  const std::size_t n = game.size();
  SessionResult result;

  // ---- 1. Equilibrium computation (off-chain, Sec. V). ----
  {
    TFL_SPAN("session.solve");
    result.mechanism = core::run_scheme(game, options.scheme, options.scheme_options);
    result.properties = core::verify_properties(game, result.mechanism,
                                                options.scheme != core::Scheme::kTos);
  }
  const game::StrategyProfile& profile = result.mechanism.solution.profile;

  // ---- 2. Optional FedAvg training with the equilibrium fractions. ----
  if (options.run_training) {
    TFL_SPAN("session.train");
    const fl::DatasetSpec concept_spec =
        fl::DatasetSpec::builtin(options.dataset, options.seed);
    std::vector<fl::Dataset> locals;
    locals.reserve(n);
    std::vector<fl::FedClient> clients;
    for (game::OrgId i = 0; i < n; ++i) {
      const std::size_t samples = std::max<std::size_t>(
          8, static_cast<std::size_t>(std::lround(
                 options.sample_scale * static_cast<double>(game.org(i).sample_count))));
      locals.emplace_back(concept_spec.with_sample_seed(options.seed + i + 1), samples);
    }
    for (game::OrgId i = 0; i < n; ++i) {
      clients.push_back(fl::FedClient{&locals[i], profile[i].data_fraction,
                                      options.seed * 131 + i});
    }
    const fl::Dataset test_set(concept_spec.with_sample_seed(options.seed + 7777),
                               options.test_samples);
    fl::ModelSpec model_spec;
    model_spec.kind = options.model;
    model_spec.channels = concept_spec.channels;
    model_spec.height = concept_spec.height;
    model_spec.width = concept_spec.width;
    model_spec.classes = concept_spec.classes;
    model_spec.seed = options.seed;
    result.training = fl::train_fedavg(model_spec, clients, test_set, options.fedavg);
  }

  // ---- 3. Deploy chain + contract. ----
  chain_ = std::make_unique<chain::Blockchain>();
  chain::Web3Client web3(*chain_);

  chain::TradeFlContractConfig config;
  config.org_count = n;
  config.gamma_scaled = Fixed::from_double(game.params().gamma * 1e9);
  config.lambda = Fixed::from_double(game.params().lambda);
  config.rho.resize(n * n, Fixed{});
  for (game::OrgId i = 0; i < n; ++i) {
    for (game::OrgId j = 0; j < n; ++j) {
      if (i != j) config.rho[i * n + j] = Fixed::from_double(game.rho().at(i, j));
    }
  }
  config.data_size_gb.reserve(n);
  double worst_outflow = 0.0;
  for (game::OrgId i = 0; i < n; ++i) {
    const double s_gb = game.org(i).data_size_bits / 1e9;
    config.data_size_gb.push_back(Fixed::from_double(s_gb));
    // Worst-case redistribution outflow bound for deposit sizing: every
    // coopetitor maxes χ while org i sits at the minimum.
    const double f_max_ghz = game.org(i).freq_levels.back() / 1e9;
    const double chi_max = s_gb + game.params().lambda * f_max_ghz;
    worst_outflow = std::max(
        worst_outflow,
        game.params().gamma * 1e9 * game.rho().row_sum(i) * chi_max);
  }
  const Wei min_deposit =
      static_cast<Wei>(std::ceil(worst_outflow * 1.25 * Fixed::kScale)) + 1;
  config.min_deposit = min_deposit;
  result.contract_address = chain_->deploy(
      std::make_unique<chain::TradeFlContract>(config));

  const Wei funding = options.funding > 0 ? options.funding : min_deposit * 2;
  if (funding < min_deposit) throw std::invalid_argument("session: funding below min deposit");

  // ---- 4. Register + deposit (Fig. 3 step 1). ----
  for (game::OrgId i = 0; i < n; ++i) {
    chain_->credit(org_address(i), funding);
    web3.call_or_throw(org_address(i), result.contract_address, "register",
                       {org_address(i), static_cast<std::uint64_t>(i)});
    web3.call_or_throw(org_address(i), result.contract_address, "depositSubmit", {},
                       min_deposit);
  }

  // ---- 5. Report contributions (Fig. 3 step 2). ----
  for (game::OrgId i = 0; i < n; ++i) {
    const double f_ghz = game.frequency(i, profile[i]) / 1e9;
    web3.call_or_throw(org_address(i), result.contract_address, "contributionSubmit",
                       {Fixed::from_double(profile[i].data_fraction),
                        Fixed::from_double(f_ghz)});
  }

  // ---- 6. Settle (Fig. 3 step 3). ----
  TFL_SPAN("session.settle");
  web3.call_or_throw(org_address(0), result.contract_address, "payoffCalculate");
  result.settlements_wei.resize(n);
  for (game::OrgId i = 0; i < n; ++i) {
    const auto outcome = web3.call_or_throw(org_address(i), result.contract_address,
                                            "payoffOf", {static_cast<std::uint64_t>(i)});
    result.settlements_wei[i] = std::get<std::int64_t>(outcome.returned.at(0));
  }
  web3.call_or_throw(org_address(0), result.contract_address, "payoffTransfer");

  // ---- 7. Cross-checks. ----
  result.settlement_sum = 0;
  for (Wei wei : result.settlements_wei) result.settlement_sum += wei;
  for (game::OrgId i = 0; i < n; ++i) {
    const double off_chain = game.redistribution(i, profile);
    const double on_chain =
        static_cast<double>(result.settlements_wei[i]) / static_cast<double>(Fixed::kScale);
    result.max_settlement_gap =
        std::max(result.max_settlement_gap, std::abs(off_chain - on_chain));
  }
  const chain::ChainValidation validation = chain_->validate();
  result.chain_valid = validation.valid;
  if (!validation.valid) TFL_ERROR << "session: chain invalid: " << validation.problem;
  for (const chain::Receipt& receipt : chain_->receipts()) result.total_gas += receipt.gas_used;
  result.blocks = chain_->block_count();
  result.events = chain_->events().size();
  return result;
}

}  // namespace tradefl
