#include "tradefl/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <variant>

#include "common/logging.h"
#include "obs/obs.h"

namespace tradefl {

using chain::Address;
using chain::Fixed;
using chain::Wei;

TradingSession::TradingSession(const game::CoopetitionGame& game) : game_(&game) {}

chain::Blockchain& TradingSession::blockchain() {
  if (!chain_) throw std::runtime_error("session: no run yet");
  return *chain_;
}

Address TradingSession::org_address(game::OrgId i) const {
  return Address::from_name(game_->org(i).name);
}

SessionResult TradingSession::run(const SessionOptions& options) {
  TFL_SPAN("session.run");
  const game::CoopetitionGame& game = *game_;
  const std::size_t n = game.size();
  SessionResult result;

  // One injector drives every phase; a default-constructed plan disables it.
  const FaultInjector injector(options.faults);
  const FaultInjector* faults = injector.enabled() ? &injector : nullptr;
  const auto degraded = [&](const char* phase, const std::string& detail) {
    result.degradations.push_back(Degradation{phase, detail});
    TFL_COUNTER_INC("session.degradations");
    TFL_WARN << "session degraded [" << phase << "]: " << detail;
  };

  // ---- 1. Equilibrium computation (off-chain, Sec. V). ----
  {
    TFL_SPAN("session.solve");
    core::SchemeOptions scheme_options = options.scheme_options;
    scheme_options.cgbd.faults = faults;
    // A solve failure is not containable — without {d*, f*} there is nothing
    // to trade — but CGBD recovers internally (damped restart, then DBR
    // fallback); surface the fallback as a degradation rather than hiding it.
    result.mechanism = core::run_scheme(game, options.scheme, scheme_options);
    for (const auto& [key, value] : result.mechanism.solution.diagnostics) {
      if (key == "fallback_dbr" && value > 0.0) {
        degraded("solve", "CGBD barrier diverged twice; solution computed by DBR fallback");
      }
    }
    result.properties = core::verify_properties(game, result.mechanism,
                                                options.scheme != core::Scheme::kTos);
  }
  const game::StrategyProfile& profile = result.mechanism.solution.profile;

  // ---- 2. Optional FedAvg training with the equilibrium fractions. ----
  if (options.run_training) {
    TFL_SPAN("session.train");
    try {
      const fl::DatasetSpec concept_spec =
          fl::DatasetSpec::builtin(options.dataset, options.seed);
      std::vector<fl::Dataset> locals;
      locals.reserve(n);
      std::vector<fl::FedClient> clients;
      for (game::OrgId i = 0; i < n; ++i) {
        const std::size_t samples = std::max<std::size_t>(
            8, static_cast<std::size_t>(std::lround(
                   options.sample_scale * static_cast<double>(game.org(i).sample_count))));
        locals.emplace_back(concept_spec.with_sample_seed(options.seed + i + 1), samples);
      }
      for (game::OrgId i = 0; i < n; ++i) {
        clients.push_back(fl::FedClient{&locals[i], profile[i].data_fraction,
                                        options.seed * 131 + i});
      }
      const fl::Dataset test_set(concept_spec.with_sample_seed(options.seed + 7777),
                                 options.test_samples);
      fl::ModelSpec model_spec;
      model_spec.kind = options.model;
      model_spec.channels = concept_spec.channels;
      model_spec.height = concept_spec.height;
      model_spec.width = concept_spec.width;
      model_spec.classes = concept_spec.classes;
      model_spec.seed = options.seed;
      fl::FedAvgOptions fedavg_options = options.fedavg;
      fedavg_options.faults = faults;
      result.training = fl::train_fedavg(model_spec, clients, test_set, fedavg_options);
      if (result.training->rounds_skipped > 0) {
        degraded("training", std::to_string(result.training->rounds_skipped) +
                                 " round(s) skipped below quorum " +
                                 std::to_string(fedavg_options.quorum));
      }
      if (result.training->total_quarantined > 0) {
        degraded("training", std::to_string(result.training->total_quarantined) +
                                 " corrupted update(s) quarantined");
      }
    } catch (const std::exception& failure) {
      // Training is advisory for the trade itself (the settlement depends on
      // the equilibrium profile, not the model), so its failure degrades the
      // session rather than aborting it.
      result.training.reset();
      degraded("training", failure.what());
    }
  }

  // ---- 3. Deploy chain + contract. ----
  chain_ = std::make_unique<chain::Blockchain>();
  chain::Web3Client web3(*chain_);
  web3.set_fault_injector(faults);
  web3.set_retry_policy(options.retry);

  chain::TradeFlContractConfig config;
  config.org_count = n;
  config.gamma_scaled = Fixed::from_double(game.params().gamma * 1e9);
  config.lambda = Fixed::from_double(game.params().lambda);
  config.rho.resize(n * n, Fixed{});
  for (game::OrgId i = 0; i < n; ++i) {
    for (game::OrgId j = 0; j < n; ++j) {
      if (i != j) config.rho[i * n + j] = Fixed::from_double(game.rho().at(i, j));
    }
  }
  config.data_size_gb.reserve(n);
  double worst_outflow = 0.0;
  for (game::OrgId i = 0; i < n; ++i) {
    const double s_gb = game.org(i).data_size_bits / 1e9;
    config.data_size_gb.push_back(Fixed::from_double(s_gb));
    // Worst-case redistribution outflow bound for deposit sizing: every
    // coopetitor maxes χ while org i sits at the minimum.
    const double f_max_ghz = game.org(i).freq_levels.back() / 1e9;
    const double chi_max = s_gb + game.params().lambda * f_max_ghz;
    worst_outflow = std::max(
        worst_outflow,
        game.params().gamma * 1e9 * game.rho().row_sum(i) * chi_max);
  }
  const Wei min_deposit =
      static_cast<Wei>(std::ceil(worst_outflow * 1.25 * Fixed::kScale)) + 1;
  config.min_deposit = min_deposit;
  result.contract_address = chain_->deploy(
      std::make_unique<chain::TradeFlContract>(config));

  const Wei funding = options.funding > 0 ? options.funding : min_deposit * 2;
  if (funding < min_deposit) throw std::invalid_argument("session: funding below min deposit");

  // On-chain phases run through call_with_retry: transient injected failures
  // (submission loss, gas exhaustion) are absorbed by the RetryPolicy; a
  // giveup or revert aborts the REMAINING chain steps gracefully — the
  // contract simply never settles (escrow untouched on the simulated chain),
  // settlements stay zero, and the failure lands in `degradations`.
  bool chain_ok = true;
  const auto chain_call = [&](const Address& from, const std::string& method,
                              std::vector<chain::AbiValue> args = {},
                              Wei value = 0) -> Result<chain::CallOutcome> {
    Result<chain::CallOutcome> outcome =
        web3.call_with_retry(from, result.contract_address, method, args, value);
    if (!outcome) {
      chain_ok = false;
      degraded("chain", outcome.error().to_string());
    }
    return outcome;
  };

  // ---- 4. Register + deposit (Fig. 3 step 1). ----
  for (game::OrgId i = 0; i < n && chain_ok; ++i) {
    chain_->credit(org_address(i), funding);
    chain_call(org_address(i), "register", {org_address(i), static_cast<std::uint64_t>(i)});
    if (!chain_ok) break;
    chain_call(org_address(i), "depositSubmit", {}, min_deposit);
  }

  // ---- 5. Report contributions (Fig. 3 step 2). ----
  for (game::OrgId i = 0; i < n && chain_ok; ++i) {
    const double f_ghz = game.frequency(i, profile[i]) / 1e9;
    chain_call(org_address(i), "contributionSubmit",
               {Fixed::from_double(profile[i].data_fraction), Fixed::from_double(f_ghz)});
  }

  // ---- 6. Settle (Fig. 3 step 3). ----
  result.settlements_wei.assign(n, 0);
  if (chain_ok) {
    TFL_SPAN("session.settle");
    chain_call(org_address(0), "payoffCalculate");
    for (game::OrgId i = 0; i < n && chain_ok; ++i) {
      // Exemplar Result chain: retried call -> decoded payoff without an
      // intermediate throw; a failed step short-circuits as the Error.
      const Result<Wei> payoff =
          chain_call(org_address(i), "payoffOf", {static_cast<std::uint64_t>(i)})
              .and_then([](const chain::CallOutcome& outcome) -> Result<Wei> {
                if (outcome.returned.empty() ||
                    !std::holds_alternative<std::int64_t>(outcome.returned.front())) {
                  return Error{"decode", "payoffOf returned no int64 payoff"};
                }
                return std::get<std::int64_t>(outcome.returned.front());
              });
      if (payoff) result.settlements_wei[i] = payoff.value();
    }
    if (chain_ok) {
      chain_call(org_address(0), "payoffTransfer");
      result.settled = chain_ok;
    }
  }

  // ---- 7. Cross-checks. ----
  result.settlement_sum = 0;
  for (Wei wei : result.settlements_wei) result.settlement_sum += wei;
  if (result.settled) {
    for (game::OrgId i = 0; i < n; ++i) {
      const double off_chain = game.redistribution(i, profile);
      const double on_chain =
          static_cast<double>(result.settlements_wei[i]) / static_cast<double>(Fixed::kScale);
      result.max_settlement_gap =
          std::max(result.max_settlement_gap, std::abs(off_chain - on_chain));
    }
  }
  result.retry_attempts = web3.retry_attempts();
  const chain::ChainValidation validation = chain_->validate();
  result.chain_valid = validation.valid;
  if (!validation.valid) TFL_ERROR << "session: chain invalid: " << validation.problem;
  for (const chain::Receipt& receipt : chain_->receipts()) result.total_gas += receipt.gas_used;
  result.blocks = chain_->block_count();
  result.events = chain_->events().size();
  return result;
}

}  // namespace tradefl
