// TradingSession — the end-to-end Fig. 3 procedure, tying every substrate
// together:
//   1. spin up a private chain, fund organization accounts, deploy the
//      TradeFL contract parameterized with (γ, λ, ρ, s);
//   2. each organization registers and escrows its deposit (depositSubmit);
//   3. the equilibrium contribution profile {d*, f*} is computed off-chain by
//      the chosen scheme (CGBD / DBR / baselines, Sec. V);
//   4. optionally, FedAvg training runs with the equilibrium data fractions
//      (the global model of Sec. III-B);
//   5. organizations report their profiles (contributionSubmit), the contract
//      computes r*_{i,j} (payoffCalculate) and settles (payoffTransfer);
//   6. the session verifies the mechanism properties off-chain AND the
//      settlement on-chain (budget balance in integer wei, chain validity,
//      consistency between Eq. (9) computed in doubles and in fixed point).
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "chain/tradefl_contract.h"
#include "chain/web3.h"
#include "common/faults.h"
#include "core/deviation_audit.h"
#include "core/mechanism.h"
#include "fl/fedavg.h"
#include "game/game.h"

namespace tradefl {

struct SessionOptions {
  core::Scheme scheme = core::Scheme::kDbr;
  core::SchemeOptions scheme_options{};

  /// Run FedAvg with the equilibrium fractions and record the model metrics.
  bool run_training = false;
  fl::ModelKind model = fl::ModelKind::kMlp;
  fl::DatasetKind dataset = fl::DatasetKind::kFmnistLike;
  fl::FedAvgOptions fedavg{};
  /// Scales |S_i| when materializing datasets (1.0 = the game's sample
  /// counts; smaller for fast runs).
  double sample_scale = 1.0;
  std::size_t test_samples = 400;

  /// Funding per organization account (wei). 0 = auto-size from the
  /// worst-case redistribution bound.
  chain::Wei funding = 0;

  /// Chain batch sealing: seal a block every N submitted transactions
  /// (0 = manual). 1 — the default — keeps the dev-chain block-per-call
  /// behaviour and therefore byte-identical session reports; larger batches
  /// trade block granularity for settlement throughput. Any transactions
  /// still pending after settlement are sealed before the final validation.
  std::size_t seal_every = 1;

  std::uint64_t seed = 2024;

  /// Fault plan for the whole session (empty = fault-free). The session owns
  /// the injector and threads it through solver, training, and chain phases.
  FaultPlan faults{};

  /// Retry policy for on-chain calls (only exercised when faults inject
  /// transient submission failures / gas exhaustion).
  chain::RetryPolicy retry{};

  /// Crash-consistent checkpointing (empty = none). The session snapshots at
  /// every phase boundary into `checkpoint_dir`/session.snap, the chain keeps
  /// a write-ahead block log in chain.wal, and the solver / training
  /// sub-pipelines checkpoint into cgbd.snap / fedavg.snap in the same
  /// directory. With `resume`, the session continues at the last completed
  /// phase — escrow intact, fault cursors restored — and re-produces the
  /// uninterrupted run's result bit-identically. A missing checkpoint under
  /// `resume` starts fresh (kill-anywhere semantics: the crash may predate
  /// the first durable snapshot); a corrupt one fails closed.
  std::string checkpoint_dir;
  /// Forwarded to the sub-pipelines (FedAvg rounds / CGBD iterations per
  /// snapshot); session-level snapshots always land on phase boundaries.
  std::size_t checkpoint_every = 1;
  bool resume = false;

  /// Cooperative cancellation token (nullptr = never cancelled; must outlive
  /// run()). Checked at every phase boundary and threaded into the CGBD
  /// iteration loop and FedAvg round loop; a fired token makes run() throw
  /// OperationCancelled after the last completed phase's checkpoint is
  /// already durable, so a cancelled session resumes bit-identically. The
  /// serve daemon's watchdog and drain paths own the token.
  const std::atomic<bool>* cancel = nullptr;
};

/// One contained failure: the session survived it, degraded, and reports it
/// here instead of aborting.
struct Degradation {
  std::string phase;   // "solve", "training", "chain"
  std::string detail;
};

struct SessionResult {
  core::MechanismResult mechanism;
  core::PropertyReport properties;
  std::optional<fl::FedAvgResult> training;
  /// Strategic-deviation audit — present when the fault plan schedules
  /// adversarial updates and the training phase completed.
  std::optional<core::DeviationAudit> deviation;

  chain::Address contract_address{};
  std::vector<chain::Wei> settlements_wei;  // on-chain net payoff per org
  chain::Wei settlement_sum = 0;            // must be exactly 0 (budget balance)
  double max_settlement_gap = 0.0;          // |on-chain - off-chain| in payoff units
  bool chain_valid = false;
  std::uint64_t total_gas = 0;
  std::size_t blocks = 0;
  std::size_t events = 0;

  /// True once payoffTransfer landed; false when the chain phase aborted
  /// after exhausted retries (settlements_wei stays zeroed).
  bool settled = false;
  /// Every contained fault, in the order the session absorbed it. Empty in a
  /// healthy run.
  std::vector<Degradation> degradations;
  std::uint64_t retry_attempts = 0;  // on-chain retries consumed this run
};

class TradingSession {
 public:
  explicit TradingSession(const game::CoopetitionGame& game);

  /// Runs the full procedure. The session owns a fresh chain per run.
  SessionResult run(const SessionOptions& options = {});

  /// The chain of the most recent run (for inspection / arbitration demos).
  [[nodiscard]] chain::Blockchain& blockchain();

  /// Organization account address used on-chain.
  [[nodiscard]] chain::Address org_address(game::OrgId i) const;

 private:
  const game::CoopetitionGame* game_;
  std::unique_ptr<chain::Blockchain> chain_;
};

}  // namespace tradefl
