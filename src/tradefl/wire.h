// Framed JSON-lines wire protocol for the serve daemon. One request or reply
// per line, each a single FLAT JSON object — values are strings, numbers,
// booleans, or null; nested objects/arrays are rejected by design. Flatness
// keeps the parser small enough to audit, makes every message diffable as a
// line, and maps 1:1 onto the key=value Config vocabulary the CLI already
// speaks (wire::to_config / the serve daemon reuse the same option builder as
// `tradefl session`).
//
// Robustness contract: parse() never throws and never partially succeeds —
// malformed input yields a typed Error{"wire.parse", ...} naming the offset,
// and serialize() output always round-trips through parse() bit-identically
// (field order preserved, numbers via %.17g).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"

namespace tradefl::wire {

/// One field value. Numbers keep the double they parsed to; integral doubles
/// serialize without a fractional part so ids survive a round trip textually.
struct Value {
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string text;     // kString
  double number = 0.0;  // kNumber
  bool flag = false;    // kBool

  static Value string(std::string value);
  static Value number_of(double value);
  static Value boolean(bool value);
  static Value null();
};

/// An ordered flat JSON object. Field order is preserved (first set wins the
/// position; setting an existing key overwrites its value in place) so
/// serialized replies are deterministic.
class Message {
 public:
  void set(const std::string& key, Value value);
  void set_string(const std::string& key, std::string value);
  void set_number(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  [[nodiscard]] const Value* find(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get_string(const std::string& key) const;
  [[nodiscard]] std::optional<double> get_number(const std::string& key) const;
  [[nodiscard]] std::optional<bool> get_bool(const std::string& key) const;

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }

  /// One-line JSON object, no trailing newline.
  [[nodiscard]] std::string serialize() const;

  /// Strict parse of one line. Rejects nested containers, duplicate keys,
  /// trailing garbage, and malformed escapes with Error{"wire.parse", ...}.
  static Result<Message> parse(const std::string& line);

 private:
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Projects a message onto the CLI's key=value Config vocabulary, skipping
/// the protocol-only keys ("op", "id"). Strings pass through, booleans become
/// "1"/"0", numbers render integrally when integral (orgs=4, not orgs=4.0),
/// nulls are skipped.
[[nodiscard]] Config to_config(const Message& message);

}  // namespace tradefl::wire
