#include "tradefl/loadgen.h"

#include <cstdio>
#include <filesystem>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "chain/blockchain.h"
#include "common/stopwatch.h"
#include "game/game_factory.h"
#include "obs/obs.h"
#include "tradefl/server.h"
#include "tradefl/session.h"
#include "tradefl/wire.h"

namespace tradefl::loadgen {
namespace {

/// Matches the metrics JSON exporter, so manifest values and snapshot values
/// render identically.
std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Every latency histogram (`*.seconds`) with at least one observation,
/// sorted by name (the snapshot order is already deterministic). Non-latency
/// histograms (e.g. chain.call.gas) are not phases.
std::vector<PhaseStats> collect_phases() {
  std::vector<PhaseStats> phases;
  const obs::MetricsSnapshot snapshot = obs::metrics().snapshot();
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.data.count == 0 || !ends_with(histogram.name, ".seconds")) continue;
    // Per-session scoped twins ("session=<id>/...") would explode the phase
    // table with one entry per served session; the benches gate the unscoped
    // aggregate names only.
    if (histogram.name.find('/') != std::string::npos) continue;
    PhaseStats stats;
    stats.name = histogram.name;
    stats.count = histogram.data.count;
    stats.p50 = histogram.data.p50();
    stats.p90 = histogram.data.p90();
    stats.p99 = histogram.data.p99();
    stats.max = histogram.data.max;
    phases.push_back(std::move(stats));
  }
  return phases;
}

void finish_report(LoadReport& report, const Stopwatch& wall) {
  report.wall_seconds = wall.elapsed_seconds();
  report.ops_per_sec = report.wall_seconds > 0.0
                           ? static_cast<double>(report.operations) / report.wall_seconds
                           : 0.0;
  report.phases = collect_phases();
}

std::string throughput_key(const LoadReport& report) {
  return report.name == "chain" ? "tx_per_sec" : "sessions_per_sec";
}

/// Best-of-N pass selection: transient machine load slows a whole pass, so
/// the minimum-interference pass is the reproducible number. The metrics
/// registry is reset before each pass; each pass snapshots its own phase
/// percentiles into its report (finish_report), so the winning report is
/// self-contained even though later passes overwrite the registry.
LoadReport best_of(std::size_t repeats, const std::function<LoadReport()>& pass) {
  LoadReport best;
  if (repeats == 0) repeats = 1;
  for (std::size_t r = 0; r < repeats; ++r) {
    obs::metrics().reset();  // percentiles must cover exactly this pass
    LoadReport candidate = pass();
    if (r == 0 || candidate.ops_per_sec > best.ops_per_sec) best = std::move(candidate);
  }
  return best;
}

void append_config(std::ostringstream& out, const LoadOptions& options) {
  out << "{\"accounts\": " << options.accounts << ", \"orgs\": " << options.orgs
      << ", \"repeats\": " << options.repeats << ", \"seal_every\": " << options.seal_every
      << ", \"seed\": " << options.seed << ", \"sessions\": " << options.sessions
      << ", \"transfers\": " << options.transfers << "}";
}

void append_metrics(std::ostringstream& out, const LoadReport& report) {
  out << "{\"" << throughput_key(report) << "\": " << json_number(report.ops_per_sec)
      << ", \"operations\": " << report.operations
      << ", \"wall_seconds\": " << json_number(report.wall_seconds) << ", \"phases\": {";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseStats& phase = report.phases[i];
    out << (i == 0 ? "" : ", ") << "\"" << phase.name << "\": {\"count\": " << phase.count
        << ", \"p50\": " << json_number(phase.p50) << ", \"p90\": " << json_number(phase.p90)
        << ", \"p99\": " << json_number(phase.p99) << ", \"max\": " << json_number(phase.max)
        << "}";
  }
  out << "}}";
}

}  // namespace

LoadOptions LoadOptions::fast() const {
  LoadOptions shrunk = *this;
  shrunk.sessions = 64;
  shrunk.orgs = 4;
  shrunk.transfers = 8192;
  shrunk.accounts = 8;
  shrunk.seal_every = 64;
  return shrunk;
}

LoadReport run_session_load(const LoadOptions& options) {
  game::ExperimentSpec spec;
  spec.org_count = options.orgs;

  // Warmup session outside the timed window: first-touch allocation and cache
  // effects otherwise dominate the first measured op and skew the gate.
  {
    const game::CoopetitionGame warm_game = game::make_experiment_game(spec, options.seed);
    TradingSession warm_session(warm_game);
    SessionOptions warm_options;
    warm_options.seed = options.seed;
    (void)warm_session.run(warm_options);
  }
  LoadReport best = best_of(options.repeats, [&options, &spec] {
    LoadReport report;
    report.name = "session";
    const Stopwatch wall;
    for (std::size_t s = 0; s < options.sessions; ++s) {
      const game::CoopetitionGame game = game::make_experiment_game(spec, options.seed + s);
      TradingSession session(game);
      SessionOptions session_options;
      session_options.seed = options.seed + s;
      const SessionResult result = session.run(session_options);
      if (!result.settled || !result.chain_valid) {
        throw std::runtime_error("load: session " + std::to_string(s) +
                                 " failed to settle on a healthy run");
      }
      ++report.operations;
      TFL_LEDGER_EVENT("bench.load.session", {"index", static_cast<double>(s)},
                       {"blocks", static_cast<double>(result.blocks)});
    }
    finish_report(report, wall);
    return report;
  });
  TFL_GAUGE_SET("bench.load.sessions_per_sec", best.ops_per_sec);
  return best;
}

LoadReport run_chain_load(const LoadOptions& options) {
  if (options.accounts < 2) throw std::invalid_argument("load: need >= 2 accounts");

  // Warmup on a scratch chain outside the timed window (see session load).
  {
    chain::Blockchain scratch;
    scratch.set_seal_every(128);
    const chain::Address a = chain::Address::from_name("warmup-a");
    const chain::Address b = chain::Address::from_name("warmup-b");
    scratch.credit(a, 1024);
    for (std::uint64_t w = 0; w < 512; ++w) {
      chain::Transaction tx;
      tx.from = a;
      tx.to = b;
      tx.value = 1;
      (void)scratch.submit(tx);
    }
  }
  LoadReport best = best_of(options.repeats, [&options] {
    chain::Blockchain chain;
    // Sealing is the chain's job now: the mempool seals a deterministic block
    // every `seal_every` submissions. A submission that crosses the threshold
    // pays the whole seal (Merkle + header hash) inside its own call, so it is
    // timed under chain.seal.seconds — keeping chain.transfer.seconds the
    // pure per-transfer distribution instead of a bimodal mix.
    chain.set_seal_every(options.seal_every);
    std::vector<chain::Address> accounts;
    accounts.reserve(options.accounts);
    for (std::size_t i = 0; i < options.accounts; ++i) {
      accounts.push_back(chain::Address::from_name("load-" + std::to_string(i)));
      // Every account can fund its whole round-robin share up front.
      chain.credit(accounts.back(), static_cast<chain::Wei>(options.transfers) + 1);
    }

    LoadReport report;
    report.name = "chain";
    std::size_t blocks_seen = chain.block_count();
    const Stopwatch wall;
    for (std::size_t t = 0; t < options.transfers; ++t) {
      chain::Transaction tx;
      tx.from = accounts[t % accounts.size()];
      tx.to = accounts[(t + 1) % accounts.size()];
      tx.value = 1;
      const bool seals = options.seal_every > 0 &&
                         chain.pending_count() + 1 >= options.seal_every;
      chain::Receipt receipt;
      if (seals) {
        TFL_LATENCY_TIMER("chain.seal.seconds");
        receipt = chain.submit(std::move(tx));
      } else {
        TFL_LATENCY_TIMER("chain.transfer.seconds");
        receipt = chain.submit(std::move(tx));
      }
      if (!receipt.success) {
        throw std::runtime_error("load: transfer " + std::to_string(t) +
                                 " reverted: " + receipt.revert_reason);
      }
      ++report.operations;
      if (chain.block_count() != blocks_seen) {
        blocks_seen = chain.block_count();
        TFL_LEDGER_EVENT("bench.load.block", {"blocks", static_cast<double>(blocks_seen)});
      }
    }
    if (chain.has_pending()) chain.seal_block();
    const chain::ChainValidation validation = chain.validate();
    if (!validation.valid) {
      throw std::runtime_error("load: chain invalid after bulk transfers: " + validation.problem);
    }
    finish_report(report, wall);
    return report;
  });
  TFL_GAUGE_SET("bench.load.tx_per_sec", best.ops_per_sec);
  return best;
}

ServeLoadOptions ServeLoadOptions::fast() const {
  ServeLoadOptions shrunk = *this;
  shrunk.sessions = 32;
  shrunk.orgs = 4;
  shrunk.workers = 4;
  return shrunk;
}

std::vector<std::string> serve_request_lines(const ServeLoadOptions& options) {
  std::vector<std::string> lines;
  lines.reserve(options.sessions);
  for (std::size_t s = 0; s < options.sessions; ++s) {
    wire::Message request;
    request.set_string("op", "session");
    request.set_number("orgs", static_cast<double>(options.orgs));
    request.set_number("seed", static_cast<double>(options.seed + s));
    lines.push_back(request.serialize());
  }
  return lines;
}

LoadReport run_serve_load(const ServeLoadOptions& options) {
  // Warmup session outside the timed window (see run_session_load).
  {
    game::ExperimentSpec spec;
    spec.org_count = options.orgs;
    const game::CoopetitionGame warm_game = game::make_experiment_game(spec, options.seed);
    TradingSession warm_session(warm_game);
    (void)warm_session.run(SessionOptions{});
  }
  std::string input_text;
  for (const std::string& line : serve_request_lines(options)) {
    input_text += line;
    input_text += '\n';
  }
  LoadReport best = best_of(options.repeats, [&options, &input_text] {
    // Fresh state per pass: every pass admits, runs, and completes the same
    // workload instead of re-attaching to the previous pass's registry.
    std::error_code ec;
    std::filesystem::remove_all(options.root, ec);
    server::ServeOptions serve;
    serve.root = options.root;
    serve.workers = options.workers;
    serve.queue_limit = options.sessions + 1;  // throughput pass: never shed
    serve.resume = false;
    server::Server daemon(serve);
    std::istringstream input_stream(input_text);
    server::StreamLineSource input(input_stream);
    std::ostringstream replies;

    LoadReport report;
    report.name = "serve";
    const Stopwatch wall;
    const server::ServeSummary summary = daemon.run(input, replies);
    if (summary.exit_code != 0 || summary.completed != options.sessions) {
      throw std::runtime_error("serve load: " + std::to_string(summary.completed) + "/" +
                               std::to_string(options.sessions) +
                               " sessions completed (exit " +
                               std::to_string(summary.exit_code) + ")");
    }
    report.operations = summary.completed;
    finish_report(report, wall);
    return report;
  });
  TFL_GAUGE_SET("bench.load.serve_sessions_per_sec", best.ops_per_sec);
  return best;
}

std::string serve_manifest_json(const LoadReport& report, const ServeLoadOptions& options) {
  std::ostringstream out;
  out << "{\"bench\": \"bench_serve\", \"schema\": 1, \"config\": {\"orgs\": " << options.orgs
      << ", \"repeats\": " << options.repeats << ", \"seed\": " << options.seed
      << ", \"sessions\": " << options.sessions << ", \"workers\": " << options.workers
      << "}, \"metrics\": ";
  append_metrics(out, report);
  out << "}\n";
  return out.str();
}

std::string manifest_json(const LoadReport& report, const LoadOptions& options) {
  std::ostringstream out;
  out << "{\"bench\": \"bench_load." << report.name << "\", \"schema\": 1, \"config\": ";
  append_config(out, options);
  out << ", \"metrics\": ";
  append_metrics(out, report);
  out << "}\n";
  return out.str();
}

std::string combined_manifest_json(const LoadReport& session_report,
                                   const LoadReport& chain_report,
                                   const LoadOptions& options) {
  std::ostringstream out;
  out << "{\"bench\": \"bench_load\", \"schema\": 1, \"config\": ";
  append_config(out, options);
  out << ", \"metrics\": {\"session\": ";
  append_metrics(out, session_report);
  out << ", \"chain\": ";
  append_metrics(out, chain_report);
  out << "}}\n";
  return out.str();
}

}  // namespace tradefl::loadgen
