// Command-line interface logic for the `tradefl` tool. Kept in the library
// (rather than the tool's main.cpp) so the parsing/dispatch layer is unit
// tested. Subcommands:
//   solve    — compute the equilibrium for one scheme and print the report
//   compare  — run every scheme on one game and tabulate welfare/damage/data
//   sweep    — gamma sweep under one scheme
//   metrics  — run one solve and print its metrics snapshot
//   session  — full end-to-end pipeline incl. on-chain settlement
//   chain    — settlement walkthrough with the raw chain artifacts
// Common options: seed=N orgs=N gamma=X mu=X scheme=dbr|cgbd|wpr|gca|fip|tos.
// Observability options (any command): metrics=1 prints the registry snapshot
// after the run, metrics_json=FILE writes it as JSON, trace=FILE writes a
// Chrome trace-event file. See docs/OBSERVABILITY.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/mechanism.h"
#include "game/game_factory.h"
#include "tradefl/session.h"

namespace tradefl::cli {

/// Parsed invocation: subcommand plus key=value options.
struct Invocation {
  std::string command;
  Config options;
};

/// Parses argv (past the program name). Returns an error for an unknown
/// command or malformed options.
Result<Invocation> parse(const std::vector<std::string>& args);

/// Maps "dbr"/"cgbd"/... to a Scheme; error otherwise.
Result<core::Scheme> parse_scheme(const std::string& name);

/// Builds the experiment spec from common options (orgs, gamma, mu, ...).
game::ExperimentSpec spec_from_options(const Config& options);

/// Builds the game from the shared option vocabulary: `file=` loads an
/// explicit definition (CLI keys override file entries), otherwise a seeded
/// Table-II draw from spec_from_options. Shared by the session/solve commands
/// and the serve daemon so a served session sees the exact game a solo CLI
/// run would. Throws std::runtime_error on an unreadable/invalid file.
game::CoopetitionGame game_from_options(const Config& options);

/// Builds SessionOptions from the shared vocabulary (scheme, train,
/// sample_scale, rounds, quorum, seal_every, faults) with the same defaults
/// as `tradefl session` — byte-identical results between the CLI and the
/// serve daemon depend on this being the single builder. Checkpoint/resume
/// and cancellation wiring stay with the caller.
Result<SessionOptions> session_options_from_config(const Config& options);

/// Executes the invocation, writing human-readable output to `out`.
/// Returns the process exit code.
int run(const Invocation& invocation, std::ostream& out);

/// Usage text.
std::string usage();

}  // namespace tradefl::cli
