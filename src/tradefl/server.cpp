#include "tradefl/server.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>
#include <vector>

#include "common/faults.h"
#include "common/parallel.h"
#include "common/snapshot.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "tradefl/cli.h"
#include "tradefl/report.h"
#include "tradefl/session.h"
#include "tradefl/wire.h"

namespace tradefl::server {
namespace {

// ---------------------------------------------------------------------------
// Drain flag. The only state a signal handler may touch.

volatile std::sig_atomic_t g_drain_requested = 0;

// ---------------------------------------------------------------------------
// Registry: the CRC-framed record of every admitted session. Saved on every
// state change so a SIGKILL at any instant leaves a consistent picture of
// which sessions still owe work.

constexpr char kRegistryKind[] = "tradefl.server.registry";
constexpr std::uint32_t kRegistryVersion = 1;

enum class SessionState : std::uint8_t {
  kPending = 0,  // admitted, not finished — resumable from its checkpoints
  kDone = 1,     // report written, invariants held
  kFailed = 2,   // errored; not resumable
};

struct RegistryEntry {
  std::uint64_t id = 0;
  SessionState state = SessionState::kPending;
  std::string config_text;  // Config entries as k=v lines (Config::from_text)
  std::uint64_t attempts = 0;
};

struct Registry {
  std::uint64_t next_session_id = 1;
  std::vector<RegistryEntry> entries;
};

std::string serialize_config(const Config& config) {
  std::string text;
  for (const auto& [key, value] : config.entries()) {
    text += key;
    text += '=';
    text += value;
    text += '\n';
  }
  return text;
}

Status save_registry(const std::string& path, const Registry& registry) {
  SnapshotWriter writer;
  writer.put_u64(registry.next_session_id);
  writer.put_u64(registry.entries.size());
  for (const RegistryEntry& entry : registry.entries) {
    writer.put_u64(entry.id);
    writer.put_u8(static_cast<std::uint8_t>(entry.state));
    writer.put_string(entry.config_text);
    writer.put_u64(entry.attempts);
  }
  auto written = write_snapshot_file(path, kRegistryKind, kRegistryVersion, writer);
  if (!written.ok()) return written.error();
  return ok_status();
}

Result<Registry> load_registry(const std::string& path) {
  auto payload = read_snapshot_file(path, kRegistryKind, kRegistryVersion);
  if (!payload.ok()) return payload.error();
  return decode_snapshot<Registry>(payload.value(), [](SnapshotReader& reader) {
    Registry registry;
    registry.next_session_id = reader.get_u64();
    const std::uint64_t count = reader.get_u64();
    registry.entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      RegistryEntry entry;
      entry.id = reader.get_u64();
      const std::uint8_t state = reader.get_u8();
      if (state > static_cast<std::uint8_t>(SessionState::kFailed)) {
        throw SnapshotError("unknown session state " + std::to_string(state));
      }
      entry.state = static_cast<SessionState>(state);
      entry.config_text = reader.get_string();
      entry.attempts = reader.get_u64();
      registry.entries.push_back(std::move(entry));
    }
    return registry;
  });
}

/// Removes crash/hang events from the entry's fault spec. Crash events fire
/// right AFTER their phase's checkpoint became durable, so on resume the
/// completed phase is skipped and the event is inert — stripping it is
/// byte-neutral. Hang events fire at phase ENTRY, before any work, so an
/// unstripped hang would wedge every re-attach of the same session forever.
void strip_oneshot_fault_events(RegistryEntry& entry) {
  auto config = Config::from_text(entry.config_text);
  if (!config.ok()) return;  // surfaces later as a typed options error
  Config updated = std::move(config).take();
  const auto spec = updated.get("faults");
  if (!spec) return;
  auto plan = parse_fault_plan(*spec);
  if (!plan.ok()) return;
  FaultPlan stripped = std::move(plan).take();
  stripped.events.erase(
      std::remove_if(stripped.events.begin(), stripped.events.end(),
                     [](const FaultEvent& event) {
                       return event.kind == FaultKind::kProcessCrash ||
                              event.kind == FaultKind::kPhaseHang;
                     }),
      stripped.events.end());
  updated.set("faults", stripped.spec_string());
  entry.config_text = serialize_config(updated);
}

// ---------------------------------------------------------------------------
// Per-session bookkeeping.

/// Shared between the worker running a session, the watchdog, and the drain
/// path. `cancel` is the cooperative token threaded into the session.
struct Slot {
  std::atomic<bool> cancel{false};
  std::atomic<bool> evicted{false};
  Stopwatch watch;
};

struct Job {
  std::uint64_t id = 0;
  Config config;
  bool reattached = false;
};

/// How one session attempt ended, mapped 1:1 onto a reply line.
struct Outcome {
  enum class Kind : std::uint8_t { kDone, kFailed, kEvicted, kParked, kCrashed };
  Kind kind = Kind::kFailed;
  std::string detail;
  std::string report_path;
};

}  // namespace

void install_signal_handler(int signum, SignalHandler handler) {
  struct sigaction action {};
  action.sa_handler = handler;
  sigemptyset(&action.sa_mask);
  // Deliberately NOT SA_RESTART: a blocked read(2) on stdin must return
  // EINTR so the serve loop notices the drain flag promptly.
  action.sa_flags = 0;
  sigaction(signum, &action, nullptr);
}

void request_drain(int signum) {
  (void)signum;
  g_drain_requested = 1;
}

bool drain_requested() { return g_drain_requested != 0; }

void clear_drain_request() { g_drain_requested = 0; }

Result<ServeOptions> serve_options_from_config(const Config& options) {
  ServeOptions serve;
  serve.root = options.get_string("root", serve.root);
  const std::int64_t workers = options.get_int("workers", 2);
  const std::int64_t queue_limit = options.get_int("queue_limit", 8);
  const std::int64_t threads = options.get_int("threads", 0);
  if (workers < 1) return Error{"serve.options", "workers must be >= 1"};
  if (queue_limit < 1) return Error{"serve.options", "queue_limit must be >= 1"};
  if (threads < 0) return Error{"serve.options", "threads must be >= 0"};
  serve.workers = static_cast<std::size_t>(workers);
  serve.queue_limit = static_cast<std::size_t>(queue_limit);
  serve.threads = static_cast<std::size_t>(threads);
  serve.watchdog_seconds = options.get_double("watchdog_seconds", 0.0);
  if (serve.watchdog_seconds < 0.0) {
    return Error{"serve.options", "watchdog_seconds must be >= 0"};
  }
  serve.resume = options.get_bool("resume", true);
  return serve;
}

ReadStatus StreamLineSource::next(std::string& line) {
  if (!std::getline(*in_, line)) return ReadStatus::kEof;
  return ReadStatus::kLine;
}

ReadStatus FdLineSource::next(std::string& line) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return ReadStatus::kLine;
    }
    if (eof_) {
      if (!buffer_.empty()) {
        line = std::move(buffer_);
        buffer_.clear();
        return ReadStatus::kLine;
      }
      return ReadStatus::kEof;
    }
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) return ReadStatus::kInterrupted;
      eof_ = true;  // treat unrecoverable read errors as end of input
      continue;
    }
    if (got == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

struct Server::Impl {
  ServeOptions options;

  std::mutex state_mutex;
  std::condition_variable work_cv;
  std::deque<Job> queue;
  std::map<std::uint64_t, std::shared_ptr<Slot>> active;
  Registry registry;
  ServeSummary summary;
  bool stopping = false;   // workers exit once the queue is empty
  bool draining = false;   // reject admissions, park instead of requeue

  std::mutex out_mutex;
  std::ostream* out = nullptr;

  std::atomic<bool> watchdog_stop{false};

  [[nodiscard]] std::string registry_path() const {
    return options.root + "/registry.snap";
  }
  [[nodiscard]] std::string session_dir(std::uint64_t id) const {
    return options.root + "/sessions/" + std::to_string(id);
  }

  void emit(const wire::Message& message) {
    std::lock_guard<std::mutex> lock(out_mutex);
    (*out) << message.serialize() << "\n";
    out->flush();
  }

  void emit_error(const std::string& code, const std::string& detail) {
    wire::Message reply;
    reply.set_bool("ok", false);
    reply.set_string("error", code);
    if (!detail.empty()) reply.set_string("detail", detail);
    emit(reply);
  }

  RegistryEntry* find_entry(std::uint64_t id) {
    for (RegistryEntry& entry : registry.entries) {
      if (entry.id == id) return &entry;
    }
    return nullptr;
  }

  /// Persists the registry; a failed save is a daemon-level fault (reported
  /// once per run through the summary exit code, never silently dropped).
  void save_registry_locked() {
    const Status saved = save_registry(registry_path(), registry);
    if (!saved.ok() && summary.exit_code == 0) {
      summary.exit_code = 1;
      emit_error(saved.error().code, saved.error().message);
    }
  }

  void handle_session(const wire::Message& request);
  void handle_status(const wire::Message& request);
  void handle(const wire::Message& request);
  Outcome run_one(const Job& job, Slot& slot);
  void worker_body();
  void watchdog_body();
};

Server::Server(ServeOptions options) : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
}

Server::~Server() = default;

void Server::Impl::handle_session(const wire::Message& request) {
  TFL_LATENCY_TIMER("server.admission.seconds");
  const Config config = wire::to_config(request);
  {
    std::lock_guard<std::mutex> lock(state_mutex);
    if (draining || drain_requested()) {
      ++summary.rejected;
      TFL_COUNTER_INC("server.rejections");
      wire::Message reply;
      reply.set_bool("ok", false);
      reply.set_string("op", "rejected");
      reply.set_string("error", "draining");
      emit(reply);
      return;
    }
    if (queue.size() >= options.queue_limit) {
      // Load shedding: a bounded queue plus a typed reply beats unbounded
      // buffering that hides the overload until memory runs out.
      ++summary.rejected;
      TFL_COUNTER_INC("server.rejections");
      wire::Message reply;
      reply.set_bool("ok", false);
      reply.set_string("op", "rejected");
      reply.set_string("error", "overloaded");
      emit(reply);
      return;
    }
  }
  // Validate before admitting so malformed requests fail at the protocol
  // boundary, not minutes later inside a worker.
  auto session_options = cli::session_options_from_config(config);
  if (!session_options.ok()) {
    emit_error(session_options.error().code, session_options.error().message);
    return;
  }
  try {
    (void)cli::game_from_options(config);
  } catch (const std::exception& failure) {
    emit_error("serve.game", failure.what());
    return;
  }
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(state_mutex);
    id = registry.next_session_id++;
    registry.entries.push_back(
        RegistryEntry{id, SessionState::kPending, serialize_config(config), 0});
    queue.push_back(Job{id, config, false});
    ++summary.admitted;
    TFL_COUNTER_INC("server.admissions");
    save_registry_locked();
  }
  work_cv.notify_one();
  wire::Message reply;
  reply.set_bool("ok", true);
  reply.set_string("op", "accepted");
  reply.set_number("id", static_cast<double>(id));
  emit(reply);
}

void Server::Impl::handle_status(const wire::Message& request) {
  (void)request;
  wire::Message reply;
  reply.set_bool("ok", true);
  reply.set_string("op", "status");
  {
    std::lock_guard<std::mutex> lock(state_mutex);
    reply.set_number("active", static_cast<double>(active.size()));
    reply.set_number("queued", static_cast<double>(queue.size()));
    reply.set_number("admitted", static_cast<double>(summary.admitted));
    reply.set_number("reattached", static_cast<double>(summary.reattached));
    reply.set_number("completed", static_cast<double>(summary.completed));
    reply.set_number("failed", static_cast<double>(summary.failed));
    reply.set_number("rejected", static_cast<double>(summary.rejected));
    reply.set_number("evicted", static_cast<double>(summary.evicted));
    reply.set_number("crashed", static_cast<double>(summary.crashed));
    reply.set_number("parked", static_cast<double>(summary.parked));
  }
  emit(reply);
}

void Server::Impl::handle(const wire::Message& request) {
  const std::string op = request.get_string("op").value_or("session");
  if (op == "session") {
    handle_session(request);
  } else if (op == "status") {
    handle_status(request);
  } else if (op == "ping") {
    wire::Message reply;
    reply.set_bool("ok", true);
    reply.set_string("op", "pong");
    emit(reply);
  } else if (op == "drain") {
    // Same flag the SIGTERM handler writes: one drain path, two triggers.
    request_drain(0);
    wire::Message reply;
    reply.set_bool("ok", true);
    reply.set_string("op", "draining");
    emit(reply);
  } else {
    emit_error("serve.op", "unknown op '" + op + "'");
  }
}

Outcome Server::Impl::run_one(const Job& job, Slot& slot) {
  const std::string dir = session_dir(job.id);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    Outcome outcome;
    outcome.kind = Outcome::Kind::kFailed;
    outcome.detail = "cannot create " + dir + ": " + ec.message();
    return outcome;
  }
  try {
    auto built = cli::session_options_from_config(job.config);
    if (!built.ok()) {
      Outcome outcome;
      outcome.kind = Outcome::Kind::kFailed;
      outcome.detail = built.error().to_string();
      return outcome;
    }
    const game::CoopetitionGame game = cli::game_from_options(job.config);
    SessionOptions session_options = std::move(built).take();
    session_options.checkpoint_dir = dir;
    session_options.checkpoint_every =
        static_cast<std::size_t>(job.config.get_int("checkpoint_every", 1));
    // Always resume: an entry re-attached after a restart (or a contained
    // crash) continues from its durable checkpoints; a fresh session finds
    // no snapshot and cold-starts. Both are bit-identical to a solo run.
    session_options.resume = true;
    session_options.cancel = &slot.cancel;

    Outcome outcome;
    {
      // Everything the session emits lands under "session=<id>/..." so one
      // noisy session cannot blur another's telemetry. Server-level counters
      // are recorded outside this scope, unprefixed.
      obs::MetricScope metric_scope("session=" + std::to_string(job.id));
      CrashContainmentScope containment;
      TradingSession session(game);
      const SessionResult result = session.run(session_options);
      const std::string report_path = dir + "/report.txt";
      const Status written = write_session_report(report_path, game, result);
      if (!written.ok()) {
        outcome.kind = Outcome::Kind::kFailed;
        outcome.detail = written.error().to_string();
        return outcome;
      }
      const bool healthy = result.chain_valid && result.settlement_sum == 0;
      outcome.kind = healthy ? Outcome::Kind::kDone : Outcome::Kind::kFailed;
      if (!healthy) outcome.detail = "settlement invariants violated";
      outcome.report_path = report_path;
    }
    return outcome;
  } catch (const OperationCancelled&) {
    Outcome outcome;
    outcome.kind = slot.evicted.load(std::memory_order_acquire)
                       ? Outcome::Kind::kEvicted
                       : Outcome::Kind::kParked;
    return outcome;
  } catch (const InjectedCrash& crash) {
    Outcome outcome;
    outcome.kind = Outcome::Kind::kCrashed;
    outcome.detail = "injected crash at point " + std::to_string(crash.point());
    return outcome;
  } catch (const std::exception& failure) {
    Outcome outcome;
    outcome.kind = Outcome::Kind::kFailed;
    outcome.detail = failure.what();
    return outcome;
  }
}

void Server::Impl::worker_body() {
  // Carve the thread budget: each worker gets an equal slice of threads=,
  // installed as this thread's pool override so every parallel_for inside
  // the session lands on the slice instead of the global pool. Budget 1 (or
  // threads < workers) pins the session serial — still bit-identical, PR 3.
  std::optional<ThreadPool> pool;
  std::optional<PoolBudgetScope> budget;
  if (options.threads > 0) {
    const std::size_t slice = std::max<std::size_t>(1, options.threads / options.workers);
    if (slice > 1) {
      pool.emplace(slice);
      budget.emplace(&*pool);
    } else {
      budget.emplace(nullptr);
    }
  }
  while (true) {
    Job job;
    std::shared_ptr<Slot> slot;
    {
      std::unique_lock<std::mutex> lock(state_mutex);
      work_cv.wait(lock, [this] { return stopping || !queue.empty(); });
      if (queue.empty()) return;  // stopping, nothing left to do
      job = std::move(queue.front());
      queue.pop_front();
      slot = std::make_shared<Slot>();
      active.emplace(job.id, slot);
      TFL_GAUGE_SET("server.sessions.active", static_cast<double>(active.size()));
    }

    const Outcome outcome = run_one(job, *slot);
    const double session_seconds = slot->watch.elapsed_seconds();

    bool requeued = false;
    {
      std::lock_guard<std::mutex> lock(state_mutex);
      active.erase(job.id);
      TFL_GAUGE_SET("server.sessions.active", static_cast<double>(active.size()));
      TFL_OBSERVE("server.session.seconds", session_seconds);
      RegistryEntry* entry = find_entry(job.id);
      switch (outcome.kind) {
        case Outcome::Kind::kDone:
          if (entry != nullptr) entry->state = SessionState::kDone;
          ++summary.completed;
          TFL_COUNTER_INC("server.completions");
          break;
        case Outcome::Kind::kFailed:
          if (entry != nullptr) entry->state = SessionState::kFailed;
          ++summary.failed;
          TFL_COUNTER_INC("server.failures");
          break;
        case Outcome::Kind::kEvicted:
          // Stays kPending: the phases it finished are durable, so a restart
          // (which strips the hang that likely wedged it) can complete it.
          // No automatic retry — a genuinely slow session would just trip
          // the same deadline again.
          ++summary.evicted;
          TFL_COUNTER_INC("server.evictions");
          break;
        case Outcome::Kind::kParked:
          // Drain-time cancellation; resumable by the next server run.
          ++summary.parked;
          TFL_COUNTER_INC("server.parked");
          break;
        case Outcome::Kind::kCrashed:
          // Contained injected crash: the checkpoint that preceded it is
          // durable, so requeue immediately (crash/hang events stripped —
          // the crash already happened) and let the session finish. Under
          // drain it stays pending for the next run instead.
          ++summary.crashed;
          TFL_COUNTER_INC("server.crashes.contained");
          if (entry != nullptr) {
            strip_oneshot_fault_events(*entry);
            ++entry->attempts;
            if (!draining) {
              auto config = Config::from_text(entry->config_text);
              if (config.ok()) {
                queue.push_back(Job{job.id, std::move(config).take(), false});
                requeued = true;
              }
            }
          }
          break;
      }
      save_registry_locked();
    }

    wire::Message reply;
    switch (outcome.kind) {
      case Outcome::Kind::kDone:
        reply.set_bool("ok", true);
        reply.set_string("op", "done");
        break;
      case Outcome::Kind::kFailed:
        reply.set_bool("ok", false);
        reply.set_string("op", "failed");
        break;
      case Outcome::Kind::kEvicted:
        reply.set_bool("ok", false);
        reply.set_string("op", "evicted");
        reply.set_string("error", "deadline");
        break;
      case Outcome::Kind::kParked:
        reply.set_bool("ok", false);
        reply.set_string("op", "parked");
        break;
      case Outcome::Kind::kCrashed:
        reply.set_bool("ok", false);
        reply.set_string("op", "crashed");
        reply.set_bool("resumable", true);
        break;
    }
    reply.set_number("id", static_cast<double>(job.id));
    if (!outcome.report_path.empty()) reply.set_string("report", outcome.report_path);
    if (!outcome.detail.empty()) reply.set_string("detail", outcome.detail);
    if (job.reattached) reply.set_bool("reattached", true);
    emit(reply);
    if (requeued) work_cv.notify_one();
  }
}

void Server::Impl::watchdog_body() {
  while (!watchdog_stop.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(state_mutex);
      for (auto& [id, slot] : active) {
        (void)id;
        if (!slot->cancel.load(std::memory_order_relaxed) &&
            slot->watch.elapsed_seconds() > options.watchdog_seconds) {
          // Order matters: mark the eviction before firing the token so the
          // worker that wakes on OperationCancelled classifies it correctly.
          slot->evicted.store(true, std::memory_order_release);
          slot->cancel.store(true, std::memory_order_release);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

ServeSummary Server::run(LineSource& input, std::ostream& out) {
  Impl& impl = *impl_;
  impl.out = &out;
  impl.summary = ServeSummary{};
  impl.stopping = false;
  impl.draining = false;
  impl.watchdog_stop.store(false, std::memory_order_release);
  clear_drain_request();

  std::error_code ec;
  std::filesystem::create_directories(impl.options.root + "/sessions", ec);
  if (ec) {
    impl.emit_error("serve.root", "cannot create " + impl.options.root + ": " + ec.message());
    impl.summary.exit_code = 1;
    return impl.summary;
  }

  // Re-attach: resume every session the previous incarnation still owed.
  if (impl.options.resume && snapshot_exists(impl.registry_path())) {
    auto loaded = load_registry(impl.registry_path());
    if (!loaded.ok()) {
      // A corrupt registry fails closed — refusing to serve beats silently
      // forgetting admitted sessions.
      impl.emit_error(loaded.error().code, loaded.error().message);
      impl.summary.exit_code = 1;
      return impl.summary;
    }
    impl.registry = std::move(loaded).take();
    for (RegistryEntry& entry : impl.registry.entries) {
      if (entry.state != SessionState::kPending) continue;
      strip_oneshot_fault_events(entry);
      ++entry.attempts;
      auto config = Config::from_text(entry.config_text);
      if (!config.ok()) {
        entry.state = SessionState::kFailed;
        ++impl.summary.failed;
        continue;
      }
      impl.queue.push_back(Job{entry.id, std::move(config).take(), true});
      ++impl.summary.reattached;
      TFL_COUNTER_INC("server.reattached");
    }
  }
  {
    std::lock_guard<std::mutex> lock(impl.state_mutex);
    impl.save_registry_locked();
  }

  {
    wire::Message hello;
    hello.set_bool("ok", true);
    hello.set_string("op", "hello");
    hello.set_number("reattached", static_cast<double>(impl.summary.reattached));
    hello.set_number("workers", static_cast<double>(impl.options.workers));
    impl.emit(hello);
  }

  std::vector<WorkerThread> workers;
  workers.reserve(impl.options.workers);
  for (std::size_t w = 0; w < impl.options.workers; ++w) {
    workers.emplace_back(WorkerThread([&impl] { impl.worker_body(); }));
  }
  impl.work_cv.notify_all();
  WorkerThread watchdog;
  if (impl.options.watchdog_seconds > 0.0) {
    watchdog = WorkerThread([&impl] { impl.watchdog_body(); });
  }

  std::string line;
  while (true) {
    if (drain_requested()) break;
    const ReadStatus status = input.next(line);
    if (status == ReadStatus::kInterrupted) continue;  // re-check the flag
    if (status == ReadStatus::kEof) break;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto request = wire::Message::parse(line);
    if (!request.ok()) {
      impl.emit_error(request.error().code, request.error().message);
      continue;
    }
    impl.handle(request.value());
    if (drain_requested()) break;
  }

  if (drain_requested()) {
    // Drain: reject new work, park what never started, cancel what did (the
    // token lands at the next phase boundary, after the current phase's
    // checkpoint is durable), persist, exit 0.
    Stopwatch drain_watch;
    {
      std::lock_guard<std::mutex> lock(impl.state_mutex);
      impl.draining = true;
      for (const Job& job : impl.queue) {
        ++impl.summary.parked;
        TFL_COUNTER_INC("server.parked");
        wire::Message reply;
        reply.set_bool("ok", false);
        reply.set_string("op", "parked");
        reply.set_number("id", static_cast<double>(job.id));
        impl.emit(reply);
      }
      impl.queue.clear();
      for (auto& [id, slot] : impl.active) {
        (void)id;
        slot->cancel.store(true, std::memory_order_release);
      }
      impl.stopping = true;
    }
    impl.work_cv.notify_all();
    workers.clear();  // join: each worker finishes its cancelled session first
    impl.watchdog_stop.store(true, std::memory_order_release);
    if (watchdog.joinable()) watchdog.join();
    impl.summary.drained = true;
    TFL_GAUGE_SET("server.drain.seconds", drain_watch.elapsed_seconds());
  } else {
    // EOF: finish everything that was admitted (including crash requeues),
    // then exit 0. Workers drain the queue before honouring `stopping`.
    {
      std::lock_guard<std::mutex> lock(impl.state_mutex);
      impl.stopping = true;
    }
    impl.work_cv.notify_all();
    workers.clear();
    impl.watchdog_stop.store(true, std::memory_order_release);
    if (watchdog.joinable()) watchdog.join();
  }

  {
    wire::Message bye;
    bye.set_bool("ok", true);
    bye.set_string("op", "bye");
    bye.set_bool("drained", impl.summary.drained);
    bye.set_number("admitted", static_cast<double>(impl.summary.admitted));
    bye.set_number("reattached", static_cast<double>(impl.summary.reattached));
    bye.set_number("completed", static_cast<double>(impl.summary.completed));
    bye.set_number("failed", static_cast<double>(impl.summary.failed));
    bye.set_number("rejected", static_cast<double>(impl.summary.rejected));
    bye.set_number("evicted", static_cast<double>(impl.summary.evicted));
    bye.set_number("crashed", static_cast<double>(impl.summary.crashed));
    bye.set_number("parked", static_cast<double>(impl.summary.parked));
    impl.emit(bye);
  }
  return impl.summary;
}

}  // namespace tradefl::server
