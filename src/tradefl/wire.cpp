#include "tradefl/wire.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tradefl::wire {
namespace {

/// %.17g survives a strtod round trip for every finite double.
std::string format_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Integral values (ids, counts, flags-as-numbers) render without an
  // exponent or fraction so they read back as the same token they were sent.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
        break;
    }
  }
  out += '"';
  return out;
}

/// Strict single-pass parser state over one line.
struct Cursor {
  const std::string& text;
  std::size_t at = 0;

  [[nodiscard]] bool done() const { return at >= text.size(); }
  [[nodiscard]] char peek() const { return text[at]; }
  void skip_ws() {
    while (!done() && (text[at] == ' ' || text[at] == '\t')) ++at;
  }
  [[nodiscard]] Error error(const std::string& what) const {
    return Error{"wire.parse", what + " at offset " + std::to_string(at)};
  }
};

Result<std::string> parse_string(Cursor& cursor) {
  // Caller consumed the opening quote's position check; we consume the quote.
  ++cursor.at;
  std::string out;
  while (true) {
    if (cursor.done()) return cursor.error("unterminated string");
    const char c = cursor.text[cursor.at];
    if (c == '"') {
      ++cursor.at;
      return out;
    }
    if (c != '\\') {
      out += c;
      ++cursor.at;
      continue;
    }
    ++cursor.at;
    if (cursor.done()) return cursor.error("dangling escape");
    const char esc = cursor.text[cursor.at];
    ++cursor.at;
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (cursor.at + 4 > cursor.text.size()) return cursor.error("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = cursor.text[cursor.at + static_cast<std::size_t>(i)];
          code <<= 4U;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return cursor.error("bad hex digit in \\u escape");
          }
        }
        cursor.at += 4;
        // Wire payloads are option keys/values: ASCII and Latin-1 cover them.
        // Encode the code point as UTF-8 so round trips stay lossless.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0U | (code >> 6U));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        } else {
          out += static_cast<char>(0xE0U | (code >> 12U));
          out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
          out += static_cast<char>(0x80U | (code & 0x3FU));
        }
        break;
      }
      default: return cursor.error("unknown escape");
    }
  }
}

Result<Value> parse_value(Cursor& cursor) {
  cursor.skip_ws();
  if (cursor.done()) return cursor.error("missing value");
  const char c = cursor.peek();
  if (c == '"') {
    auto text = parse_string(cursor);
    if (!text.ok()) return text.error();
    return Value::string(std::move(text).take());
  }
  if (c == '{' || c == '[') {
    return cursor.error("nested containers are not part of the flat wire format");
  }
  const auto literal = [&cursor](const char* word, std::size_t len) {
    if (cursor.text.compare(cursor.at, len, word) != 0) return false;
    cursor.at += len;
    return true;
  };
  if (literal("true", 4)) return Value::boolean(true);
  if (literal("false", 5)) return Value::boolean(false);
  if (literal("null", 4)) return Value::null();
  // Number: delegate to strtod, then verify it consumed a sane token.
  const char* start = cursor.text.c_str() + cursor.at;
  char* end = nullptr;
  const double parsed = std::strtod(start, &end);
  if (end == start) return cursor.error("expected a JSON value");
  cursor.at += static_cast<std::size_t>(end - start);
  if (!std::isfinite(parsed)) return cursor.error("non-finite number");
  return Value::number_of(parsed);
}

}  // namespace

Value Value::string(std::string value) {
  Value v;
  v.kind = Kind::kString;
  v.text = std::move(value);
  return v;
}

Value Value::number_of(double value) {
  Value v;
  v.kind = Kind::kNumber;
  v.number = value;
  return v;
}

Value Value::boolean(bool value) {
  Value v;
  v.kind = Kind::kBool;
  v.flag = value;
  return v;
}

Value Value::null() { return Value{}; }

void Message::set(const std::string& key, Value value) {
  for (auto& [existing, existing_value] : fields_) {
    if (existing == key) {
      existing_value = std::move(value);
      return;
    }
  }
  fields_.emplace_back(key, std::move(value));
}

void Message::set_string(const std::string& key, std::string value) {
  set(key, Value::string(std::move(value)));
}

void Message::set_number(const std::string& key, double value) {
  set(key, Value::number_of(value));
}

void Message::set_bool(const std::string& key, bool value) {
  set(key, Value::boolean(value));
}

const Value* Message::find(const std::string& key) const {
  for (const auto& [existing, value] : fields_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

std::optional<std::string> Message::get_string(const std::string& key) const {
  const Value* value = find(key);
  if (value == nullptr || value->kind != Value::Kind::kString) return std::nullopt;
  return value->text;
}

std::optional<double> Message::get_number(const std::string& key) const {
  const Value* value = find(key);
  if (value == nullptr || value->kind != Value::Kind::kNumber) return std::nullopt;
  return value->number;
}

std::optional<bool> Message::get_bool(const std::string& key) const {
  const Value* value = find(key);
  if (value == nullptr || value->kind != Value::Kind::kBool) return std::nullopt;
  return value->flag;
}

std::string Message::serialize() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += quote(key) + ": ";
    switch (value.kind) {
      case Value::Kind::kString: out += quote(value.text); break;
      case Value::Kind::kNumber: out += format_number(value.number); break;
      case Value::Kind::kBool: out += value.flag ? "true" : "false"; break;
      case Value::Kind::kNull: out += "null"; break;
    }
  }
  out += "}";
  return out;
}

Result<Message> Message::parse(const std::string& line) {
  Cursor cursor{line};
  cursor.skip_ws();
  if (cursor.done() || cursor.peek() != '{') return cursor.error("expected '{'");
  ++cursor.at;
  Message message;
  cursor.skip_ws();
  if (!cursor.done() && cursor.peek() == '}') {
    ++cursor.at;
  } else {
    while (true) {
      cursor.skip_ws();
      if (cursor.done() || cursor.peek() != '"') return cursor.error("expected a field key");
      auto key = parse_string(cursor);
      if (!key.ok()) return key.error();
      if (message.find(key.value()) != nullptr) {
        return cursor.error("duplicate key '" + key.value() + "'");
      }
      cursor.skip_ws();
      if (cursor.done() || cursor.peek() != ':') return cursor.error("expected ':'");
      ++cursor.at;
      auto value = parse_value(cursor);
      if (!value.ok()) return value.error();
      message.set(key.value(), std::move(value).take());
      cursor.skip_ws();
      if (cursor.done()) return cursor.error("unterminated object");
      if (cursor.peek() == ',') {
        ++cursor.at;
        continue;
      }
      if (cursor.peek() == '}') {
        ++cursor.at;
        break;
      }
      return cursor.error("expected ',' or '}'");
    }
  }
  cursor.skip_ws();
  if (!cursor.done()) return cursor.error("trailing content after object");
  return message;
}

Config to_config(const Message& message) {
  Config config;
  for (const auto& [key, value] : message.fields()) {
    if (key == "op" || key == "id") continue;
    switch (value.kind) {
      case Value::Kind::kString: config.set(key, value.text); break;
      case Value::Kind::kNumber: config.set(key, format_number(value.number)); break;
      case Value::Kind::kBool: config.set(key, value.flag ? "1" : "0"); break;
      case Value::Kind::kNull: break;
    }
  }
  return config;
}

}  // namespace tradefl::wire
