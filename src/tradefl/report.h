// Pretty-printing of session / mechanism results for the examples and the
// bench harness.
#pragma once

#include <string>

#include "tradefl/session.h"

namespace tradefl {

/// Multi-line human-readable summary of a mechanism run: per-organization
/// strategies, payoff decomposition, welfare, and the property report.
std::string describe_mechanism(const game::CoopetitionGame& game,
                               const core::MechanismResult& result);

/// Multi-line summary of an end-to-end session, including chain statistics
/// and the on-chain/off-chain settlement cross-check.
std::string describe_session(const game::CoopetitionGame& game, const SessionResult& result);

}  // namespace tradefl
