// Pretty-printing of session / mechanism results for the examples and the
// bench harness, plus the canonical on-disk session report the
// kill-and-resume suite byte-compares.
#pragma once

#include <string>

#include "common/result.h"
#include "tradefl/session.h"

namespace tradefl {

/// Multi-line human-readable summary of a mechanism run: per-organization
/// strategies, payoff decomposition, welfare, and the property report.
std::string describe_mechanism(const game::CoopetitionGame& game,
                               const core::MechanismResult& result);

/// Multi-line summary of an end-to-end session, including chain statistics
/// and the on-chain/off-chain settlement cross-check.
std::string describe_session(const game::CoopetitionGame& game, const SessionResult& result);

/// describe_session minus every wall-clock figure, plus the full per-round
/// training trajectory and a CRC32 fingerprint of the final model weights.
/// Deterministic runs render byte-identical reports, which is what lets a
/// resumed session be diffed against an uninterrupted one.
std::string canonical_session_report(const game::CoopetitionGame& game,
                                     const SessionResult& result);

/// Writes the canonical report to `path`. Open and write failures return a
/// typed Error{"io", ...} — never a silently truncated file (same contract as
/// CsvWriter::write_file; tfl-lint bans unchecked ad-hoc persistence).
Status write_session_report(const std::string& path, const game::CoopetitionGame& game,
                            const SessionResult& result);

}  // namespace tradefl
