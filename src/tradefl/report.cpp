#include "tradefl/report.h"

#include <sstream>

#include "common/string_util.h"
#include "common/table.h"

namespace tradefl {

std::string describe_mechanism(const game::CoopetitionGame& game,
                               const core::MechanismResult& result) {
  std::ostringstream out;
  out << "scheme " << core::scheme_name(result.scheme) << ": welfare "
      << format_double(result.welfare, 8) << ", potential "
      << format_double(result.potential, 8) << ", P(omega) "
      << format_double(result.performance, 6) << ", total damage "
      << format_double(result.total_damage, 6) << ", sum d "
      << format_double(result.total_data_fraction, 6) << "\n";
  out << "converged " << (result.solution.converged ? "yes" : "no") << " in "
      << result.solution.iterations << " iterations ("
      << format_double(result.solution.solve_seconds * 1e3, 4) << " ms)\n";

  AsciiTable table({"org", "d*", "f* (GHz)", "revenue", "energy", "damage", "R_i", "payoff"});
  for (game::OrgId i = 0; i < game.size(); ++i) {
    const auto breakdown = game.payoff_breakdown(i, result.solution.profile);
    table.add_labeled_row(
        game.org(i).name,
        {result.solution.profile[i].data_fraction,
         game.frequency(i, result.solution.profile[i]) / 1e9, breakdown.revenue,
         breakdown.energy_cost, breakdown.damage, breakdown.redistribution, breakdown.total()},
        5);
  }
  out << table.render();
  return out.str();
}

std::string describe_session(const game::CoopetitionGame& game, const SessionResult& result) {
  std::ostringstream out;
  out << describe_mechanism(game, result.mechanism);
  out << "properties: " << result.properties.summary() << "\n";
  if (result.training) {
    out << "training: final accuracy " << format_double(result.training->final_accuracy, 4)
        << ", final loss " << format_double(result.training->final_loss, 4) << ", "
        << result.training->total_contributed_samples << " contributed samples\n";
    if (result.training->total_dropped > 0 || result.training->total_quarantined > 0 ||
        result.training->rounds_skipped > 0) {
      out << "training faults: " << result.training->total_dropped << " dropped, "
          << result.training->total_quarantined << " quarantined, "
          << result.training->rounds_skipped << " round(s) skipped\n";
    }
  }
  out << "contract " << result.contract_address.to_hex() << ": " << result.blocks
      << " blocks, " << result.events << " events, " << result.total_gas << " gas\n";
  if (result.settled) {
    out << "on-chain settlement sum = " << result.settlement_sum
        << " wei (budget balance), max off/on-chain gap = "
        << format_double(result.max_settlement_gap, 6) << ", chain "
        << (result.chain_valid ? "VALID" : "INVALID") << "\n";
  } else {
    out << "settlement ABORTED (retries exhausted or revert); escrow retained, chain "
        << (result.chain_valid ? "VALID" : "INVALID") << "\n";
  }
  if (result.retry_attempts > 0) {
    out << "on-chain retries: " << result.retry_attempts << "\n";
  }
  if (!result.degradations.empty()) {
    out << "degradations (" << result.degradations.size() << "):\n";
    for (const Degradation& degradation : result.degradations) {
      out << "  [" << degradation.phase << "] " << degradation.detail << "\n";
    }
  }
  return out.str();
}

}  // namespace tradefl
