#include "tradefl/report.h"

#include <fstream>
#include <sstream>

#include "common/snapshot.h"
#include "common/string_util.h"
#include "common/table.h"

namespace tradefl {
namespace {

/// Shared body of the two mechanism summaries. `include_timing` gates the
/// solve wall-clock, the one nondeterministic figure in the block.
std::string describe_mechanism_impl(const game::CoopetitionGame& game,
                                    const core::MechanismResult& result,
                                    bool include_timing) {
  std::ostringstream out;
  out << "scheme " << core::scheme_name(result.scheme) << ": welfare "
      << format_double(result.welfare, 8) << ", potential "
      << format_double(result.potential, 8) << ", P(omega) "
      << format_double(result.performance, 6) << ", total damage "
      << format_double(result.total_damage, 6) << ", sum d "
      << format_double(result.total_data_fraction, 6) << "\n";
  out << "converged " << (result.solution.converged ? "yes" : "no") << " in "
      << result.solution.iterations << " iterations";
  if (include_timing) {
    out << " (" << format_double(result.solution.solve_seconds * 1e3, 4) << " ms)";
  }
  out << "\n";

  AsciiTable table({"org", "d*", "f* (GHz)", "revenue", "energy", "damage", "R_i", "payoff"});
  for (game::OrgId i = 0; i < game.size(); ++i) {
    const auto breakdown = game.payoff_breakdown(i, result.solution.profile);
    table.add_labeled_row(
        game.org(i).name,
        {result.solution.profile[i].data_fraction,
         game.frequency(i, result.solution.profile[i]) / 1e9, breakdown.revenue,
         breakdown.energy_cost, breakdown.damage, breakdown.redistribution, breakdown.total()},
        5);
  }
  out << table.render();
  return out.str();
}

/// Shared body of the session summaries. `canonical` drops wall-clock timing
/// and adds the round-by-round trajectory + weight fingerprint, so the output
/// is a stable artifact rather than a console log.
std::string describe_session_impl(const game::CoopetitionGame& game, const SessionResult& result,
                                  bool canonical) {
  std::ostringstream out;
  out << describe_mechanism_impl(game, result.mechanism, /*include_timing=*/!canonical);
  out << "properties: " << result.properties.summary() << "\n";
  if (result.training) {
    out << "training: final accuracy " << format_double(result.training->final_accuracy, 4)
        << ", final loss " << format_double(result.training->final_loss, 4) << ", "
        << result.training->total_contributed_samples << " contributed samples\n";
    if (result.training->total_dropped > 0 || result.training->total_quarantined > 0 ||
        result.training->rounds_skipped > 0) {
      out << "training faults: " << result.training->total_dropped << " dropped, "
          << result.training->total_quarantined << " quarantined, "
          << result.training->rounds_skipped << " round(s) skipped\n";
    }
    const bool attacked = result.training->total_attacked > 0;
    if (attacked) {
      out << "training attacks: " << result.training->total_attacked << " adversarial, "
          << result.training->total_rejected << " rejected, "
          << result.training->total_clipped << " clipped\n";
    }
    if (canonical) {
      // Attack columns appear only when an attack actually fired, so an
      // attack-free report stays byte-identical to the pre-robustness format.
      std::vector<std::string> columns = {"round",        "train_loss", "test_loss",
                                          "test_acc",     "participants", "dropped",
                                          "quarantined",  "skipped"};
      if (attacked) {
        columns.insert(columns.end(), {"attacked", "rejected", "clipped", "influence"});
      }
      AsciiTable history(columns);
      for (const fl::RoundMetrics& metrics : result.training->history) {
        std::vector<std::string> row = {
            std::to_string(metrics.round),        format_double(metrics.train_loss, 8),
            format_double(metrics.test_loss, 8),  format_double(metrics.test_accuracy, 8),
            std::to_string(metrics.participants), std::to_string(metrics.dropped),
            std::to_string(metrics.quarantined),  metrics.skipped ? "yes" : "no"};
        if (attacked) {
          row.push_back(std::to_string(metrics.attacked));
          row.push_back(std::to_string(metrics.rejected));
          row.push_back(std::to_string(metrics.clipped));
          row.push_back(format_double(metrics.attacker_influence, 8));
        }
        history.add_row(row);
      }
      out << history.render();
      // Bit-exact fingerprint of the final model: two runs agree here iff
      // every weight agrees, which is the resume-determinism contract.
      const std::vector<float>& weights = result.training->final_weights;
      out << "final weights: " << weights.size() << " floats, crc32 "
          << crc32(reinterpret_cast<const std::uint8_t*>(weights.data()),
                   weights.size() * sizeof(float))
          << "\n";
    }
  }
  if (result.deviation) {
    const core::DeviationAudit& audit = *result.deviation;
    out << audit.summary() << "\n";
    out << "empirical properties: IR(honest) " << (audit.ir_empirical ? "yes" : "NO")
        << " (min honest payoff " << format_double(audit.min_honest_payoff, 6) << "), BB "
        << (audit.bb_empirical ? "yes" : "NO") << " (sum R "
        << format_double(audit.redistribution_sum, 6) << "), CE "
        << (audit.ce_empirical ? "yes" : "NO") << "\n";
    if (canonical && !audit.silos.empty()) {
      AsciiTable deviators(
          {"silo", "attack", "truthful", "empirical", "gain", "influence", "rejected"});
      for (const core::SiloDeviation& silo : audit.silos) {
        deviators.add_row({game.org(silo.silo).name, silo.attack,
                           format_double(silo.truthful_payoff, 6),
                           format_double(silo.empirical_payoff, 6),
                           format_double(silo.payoff_gain, 6), format_double(silo.influence, 6),
                           format_double(silo.rejected_share, 6)});
      }
      out << deviators.render();
    }
  }
  out << "contract " << result.contract_address.to_hex() << ": " << result.blocks
      << " blocks, " << result.events << " events, " << result.total_gas << " gas\n";
  if (result.settled) {
    out << "on-chain settlement sum = " << result.settlement_sum
        << " wei (budget balance), max off/on-chain gap = "
        << format_double(result.max_settlement_gap, 6) << ", chain "
        << (result.chain_valid ? "VALID" : "INVALID") << "\n";
  } else {
    out << "settlement ABORTED (retries exhausted or revert); escrow retained, chain "
        << (result.chain_valid ? "VALID" : "INVALID") << "\n";
  }
  if (canonical) {
    for (std::size_t i = 0; i < result.settlements_wei.size(); ++i) {
      out << "settlement[" << game.org(i).name << "] = " << result.settlements_wei[i]
          << " wei\n";
    }
  }
  if (result.retry_attempts > 0) {
    out << "on-chain retries: " << result.retry_attempts << "\n";
  }
  if (!result.degradations.empty()) {
    out << "degradations (" << result.degradations.size() << "):\n";
    for (const Degradation& degradation : result.degradations) {
      out << "  [" << degradation.phase << "] " << degradation.detail << "\n";
    }
  }
  return out.str();
}

}  // namespace

std::string describe_mechanism(const game::CoopetitionGame& game,
                               const core::MechanismResult& result) {
  return describe_mechanism_impl(game, result, /*include_timing=*/true);
}

std::string describe_session(const game::CoopetitionGame& game, const SessionResult& result) {
  return describe_session_impl(game, result, /*canonical=*/false);
}

std::string canonical_session_report(const game::CoopetitionGame& game,
                                     const SessionResult& result) {
  return describe_session_impl(game, result, /*canonical=*/true);
}

Status write_session_report(const std::string& path, const game::CoopetitionGame& game,
                            const SessionResult& result) {
  std::ofstream file(path);
  if (!file) return Error{"io", "cannot open " + path + " for writing"};
  file << canonical_session_report(game, result);
  file.flush();
  if (!file) return Error{"io", "write failed for " + path};
  return ok_status();
}

}  // namespace tradefl
