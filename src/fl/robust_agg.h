// Byzantine-resilient aggregation (the server-side defense layer of the
// robustness story). FedAvg's Eq. (3) weighted mean is optimal when every
// silo is truthful, but a single adversarial update can steer it arbitrarily.
// This module turns the aggregation step into a pluggable Aggregator with the
// classic robust rules alongside the paper's weighted mean:
//
//   mean          Eq. (3): contribution-weighted mean (extracted verbatim
//                 from fedavg.cpp — bit-identical to the historical fold)
//   median        coordinate-wise median over survivor updates (unweighted)
//   trimmed:<f>   coordinate-wise trimmed mean: drop the f lowest and f
//                 highest values per coordinate, average the rest
//   krum:<f>      Krum: select the single update whose n-f-2 nearest
//                 neighbours are closest in L2 (Blanchard et al., NeurIPS'17)
//   multikrum:<f> Multi-Krum: Eq. (3) weighted mean over the n-f-2
//                 lowest-scoring updates
//   normclip:<c>  clip each update's delta from the previous global model to
//                 L2 norm <= c, then Eq. (3) weighted mean of the clipped set
//
// Determinism contract: every rule folds floating point in a fixed order —
// client order for the weighted sums, sorted-value order for median/trim,
// chunk-index order (ordered_reduce) for the parallel distance/credit
// accumulations — so threads=1 and threads=N are bit-identical, matching the
// repo-wide contract in common/parallel.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/parallel.h"
#include "common/result.h"
#include "common/snapshot.h"

namespace tradefl::fl {

enum class AggregatorKind : std::uint32_t {
  kWeightedMean = 0,
  kCoordinateMedian = 1,
  kTrimmedMean = 2,
  kKrum = 3,
  kMultiKrum = 4,
  kNormClip = 5,
};

/// Short stable name ("mean", "median", "trimmed", ...) for reports/metrics.
const char* aggregator_kind_name(AggregatorKind kind);

struct AggregatorSpec {
  AggregatorKind kind = AggregatorKind::kWeightedMean;
  /// f — updates trimmed per side (trimmed) / tolerated adversaries (krum,
  /// multikrum). Ignored by mean/median/normclip.
  std::size_t trim = 1;
  /// L2 threshold on an update's delta from the previous global (normclip).
  double clip_norm = 1.0;

  /// Round-trippable `parse_aggregator` spec ("trimmed:2", "normclip:0.5").
  [[nodiscard]] std::string spec_string() const;

  friend bool operator==(const AggregatorSpec& a, const AggregatorSpec& b) {
    return a.kind == b.kind && a.trim == b.trim && a.clip_norm == b.clip_norm;
  }
  friend bool operator!=(const AggregatorSpec& a, const AggregatorSpec& b) { return !(a == b); }
};

/// Parses the CLI/wire `agg=` spec: mean | median | trimmed[:f] | krum[:f] |
/// multikrum[:f] | normclip[:c]. Errors echo the offending token and the
/// accepted grammar.
Result<AggregatorSpec> parse_aggregator(const std::string& text);

/// Snapshot codec for the spec — serialized into the FedAvg/FedAsync/session
/// checkpoints so a resume under a different aggregator fails closed.
void put_aggregator_spec(SnapshotWriter& writer, const AggregatorSpec& spec);
[[nodiscard]] AggregatorSpec get_aggregator_spec(SnapshotReader& reader);

/// One survivor update entering aggregation. `weight` is the Eq. (3)
/// aggregation mass d_i |S_i|; `client` is the original client index (kept so
/// influence can be attributed back to silos).
struct ClientUpdate {
  const std::vector<float>* weights = nullptr;
  double weight = 1.0;
  std::size_t client = 0;
};

struct AggregateOutcome {
  std::vector<float> weights;  // the new global model
  /// Updates with zero influence on the aggregate (trimmed at every
  /// coordinate, or not selected by krum/multikrum).
  std::size_t rejected = 0;
  /// Updates whose delta was norm-clipped (normclip only).
  std::size_t clipped = 0;
  /// The survivor set was too small for the robust rule (trimmed needs
  /// n > 2f, krum needs n >= f+3); the coordinate median was used instead.
  bool fallback = false;
  /// Per-update share of the aggregate in [0, 1] (index-aligned with the
  /// input updates; sums to ~1). mean/normclip: w_i / sum w; median/trimmed:
  /// fraction of coordinate mass the update supplied; krum: selected or not.
  std::vector<double> influence;
};

/// The shared ordered weighted-sum helper: out[i] = float(sum_k w_k v_k[i] /
/// sum_k w_k), accumulated in double, folded in index order per coordinate.
/// This is Eq. (3)'s historical fold extracted from fedavg.cpp, and the same
/// helper FedAsync's staleness-discounted merge uses — both paths now share
/// one double-precision fold. `out` may alias an entry of `values` (each
/// coordinate reads all inputs before writing). Coordinates fan out over the
/// pool; the per-coordinate fold order never depends on the thread count.
void ordered_weighted_mean(const std::vector<const std::vector<float>*>& values,
                           const std::vector<double>& weights, ThreadPool* pool,
                           std::vector<float>& out);

/// Runs the aggregation rule over the survivor updates. `previous_global` is
/// the pre-round model (normclip's clipping reference). Requires at least one
/// update with positive total weight; throws std::invalid_argument otherwise.
AggregateOutcome aggregate_updates(const AggregatorSpec& spec,
                                   const std::vector<ClientUpdate>& updates,
                                   const std::vector<float>& previous_global, ThreadPool* pool);

/// Applies the adversarial transformation `spec` (decided by
/// FaultInjector::attack_update) to a freshly-trained local update, in place:
/// signflip negates the delta, scale amplifies it, freeride resubmits the
/// global, collude replaces it with the round's shared crafted vector (every
/// colluder calls faults.collusion_rng(round) and therefore submits the same
/// bytes). Pure per client — safe inside the parallel training loop.
void apply_update_attack(std::vector<float>& local, const std::vector<float>& global,
                         const AttackSpec& spec, const FaultInjector& faults,
                         std::uint64_t round);

}  // namespace tradefl::fl
