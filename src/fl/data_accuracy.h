// The Fig. 2 pre-experiment: measure the data-accuracy function
// P(d_i, d_-i) empirically by sweeping organization 0's contribution d_i
// while every other organization contributes d = 0.5, training the global
// model with FedAvg at each point. The measured curve is fitted with the
// sqrt-saturation form (common/stats) and checked against the derivative
// conditions of Eq. (5); the fit can be promoted to an EmpiricalAccuracyModel
// and plugged straight into the coopetition game — closing the loop between
// the FL substrate and the mechanism.
#pragma once

#include <vector>

#include "common/stats.h"
#include "fl/dataset.h"
#include "fl/fedavg.h"
#include "fl/model_zoo.h"
#include "game/accuracy_model.h"

namespace tradefl::fl {

struct DataAccuracyOptions {
  std::size_t org_count = 5;          // organizations in the probe federation
  std::size_t samples_per_org = 300;  // |S_i| (paper sweeps 2000..20000)
  std::size_t test_samples = 400;
  double others_fraction = 0.5;       // d_{-i} (Fig. 2 setting)
  std::vector<double> d_grid{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0};
  FedAvgOptions fedavg{};
  std::uint64_t seed = 11;

  /// Replications per grid point (model init + subset draw averaged) — FL
  /// training is noisy; 2-3 replications give Fig.-2-grade curves.
  std::size_t replications = 1;
};

struct DataAccuracyPoint {
  double d = 0.0;              // organization 0's fraction
  double omega_samples = 0.0;  // total contributed samples
  double accuracy = 0.0;       // test accuracy of the trained global model
  double performance = 0.0;    // P = accuracy - untrained accuracy
};

struct DataAccuracyCurve {
  ModelKind model;
  DatasetKind dataset;
  double untrained_accuracy = 0.0;
  std::vector<DataAccuracyPoint> points;
  SqrtSaturationFit fit;    // P ~ a - b / sqrt(omega + c)
  ShapeCheck shape;         // Eq. (5) empirical check on the measured points
};

/// Runs the pre-experiment for one model/dataset pair.
DataAccuracyCurve measure_data_accuracy(ModelKind model, DatasetKind dataset,
                                        const DataAccuracyOptions& options = {});

/// Builds a game-layer accuracy model from a measured curve. `a0` is the
/// untrained accuracy loss anchoring P (Eq. 4).
game::AccuracyModelPtr empirical_accuracy_model(const DataAccuracyCurve& curve, double a0);

}  // namespace tradefl::fl
