// Synthetic image classification datasets standing in for the paper's
// CIFAR-10 / FMNIST / SVHN / EuroSat (see DESIGN.md §2 for the substitution
// argument). Each dataset profile draws per-class template images and
// produces samples as template + Gaussian noise (+ optional label noise),
// which yields exactly the monotone-concave accuracy-vs-data behaviour of
// Eq. (5) that the mechanism consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fl/tensor.h"

namespace tradefl::fl {

enum class DatasetKind { kCifar10Like, kFmnistLike, kSvhnLike, kEurosatLike };

const char* dataset_name(DatasetKind kind);
DatasetKind dataset_kind_from_string(const std::string& text);

/// Generation profile. The four built-in kinds differ in image geometry and
/// hardness (class separation / noise / label noise), mirroring the relative
/// difficulty of the real datasets.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kFmnistLike;
  std::size_t classes = 10;
  std::size_t channels = 1;
  std::size_t height = 12;
  std::size_t width = 12;
  double class_separation = 1.0;  // template magnitude vs noise
  double noise = 1.0;             // per-pixel Gaussian sigma
  double label_noise = 0.0;       // probability of a flipped label

  /// Seeds the per-class templates — the "concept" of the task. Datasets
  /// that should be mutually compatible (each organization's local shard and
  /// the test set) MUST share this seed.
  std::uint64_t concept_seed = 1;

  /// Seeds the sample noise/label draws; varies across shards.
  std::uint64_t sample_seed = 1;

  /// Optional per-class sampling weights (non-IID shards). Empty = uniform.
  /// The paper assumes i.i.d. organizational data (footnote 4); skewed
  /// weights let ablations probe that assumption.
  std::vector<double> class_weights;

  /// Built-in profiles; `size_scale` in (0, 1] shrinks images for fast tests.
  static DatasetSpec builtin(DatasetKind kind, std::uint64_t concept_seed,
                             double size_scale = 1.0);

  [[nodiscard]] DatasetSpec with_sample_seed(std::uint64_t seed) const {
    DatasetSpec copy = *this;
    copy.sample_seed = seed;
    return copy;
  }

  [[nodiscard]] DatasetSpec with_class_weights(std::vector<double> weights) const {
    DatasetSpec copy = *this;
    copy.class_weights = std::move(weights);
    return copy;
  }
};

/// An in-memory labeled dataset with contiguous (n, c, h, w) images.
class Dataset {
 public:
  Dataset(DatasetSpec spec, std::size_t samples);

  [[nodiscard]] const DatasetSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t size() const { return labels_.size(); }

  /// Assembles a batch tensor from sample indices.
  [[nodiscard]] Tensor batch(const std::vector<std::size_t>& indices) const;
  [[nodiscard]] std::vector<std::size_t> batch_labels(
      const std::vector<std::size_t>& indices) const;

  /// Pointer-span variant of batch(): `count` indices starting at `indices`.
  /// Lets training loops slice a shuffled epoch order without materializing a
  /// per-batch index vector.
  [[nodiscard]] Tensor batch_span(const std::size_t* indices, std::size_t count) const;

  /// One contiguous memcpy: samples [start, start + count) in storage order —
  /// the evaluation fast path (no index vector, no per-sample copies).
  [[nodiscard]] Tensor batch_range(std::size_t start, std::size_t count) const;

  /// Fills `out` (resized to `count`) with the labels of an index span;
  /// reuses the caller's buffer across batches.
  void batch_labels_into(const std::size_t* indices, std::size_t count,
                         std::vector<std::size_t>& out) const;

  [[nodiscard]] std::size_t label(std::size_t index) const { return labels_.at(index); }

  /// All labels in storage order (pairs with batch_range()).
  [[nodiscard]] const std::vector<std::size_t>& labels() const { return labels_; }

  /// Per-class sample counts (distribution sanity checks).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

 private:
  DatasetSpec spec_;
  std::vector<float> images_;  // samples * c * h * w
  std::vector<std::size_t> labels_;
  std::size_t image_elements_ = 0;
};

/// Draws Dirichlet(alpha, ..., alpha) class weights — the standard non-IID
/// label-skew generator for FL experiments. Small alpha => heavy skew.
std::vector<double> dirichlet_class_weights(std::size_t classes, double alpha, Rng& rng);

/// Splits a client's local indices: the first `fraction` of a seeded
/// permutation of [0, dataset.size()) — how organization i selects its
/// d_i · |S_i| training subset (Sec. III-B phase 2).
std::vector<std::size_t> contributed_indices(const Dataset& dataset, double fraction,
                                             std::uint64_t seed);

}  // namespace tradefl::fl
