// Lite variants of the four architectures the paper's Fig. 2 / Figs. 13-15
// evaluate (ResNet-18, AlexNet, DenseNet, MobileNet), scaled to laptop size
// while keeping each family's structural idea:
//  * resnet18_lite  — conv stem + two identity residual blocks;
//  * alexnet_lite   — plain conv/pool stack with a wide dense head;
//  * densenet_lite  — two dense-concat growth blocks;
//  * mobilenet_lite — depthwise-separable convolutions;
//  * mlp            — small baseline used by fast tests.
// See DESIGN.md §2 for why lite variants preserve the paper's comparisons.
#pragma once

#include <cstdint>
#include <string>

#include "fl/net.h"

namespace tradefl::fl {

enum class ModelKind { kResNet18Lite, kAlexNetLite, kDenseNetLite, kMobileNetLite, kMlp };

const char* model_name(ModelKind kind);

/// Parses "resnet18" / "alexnet" / "densenet" / "mobilenet" / "mlp".
ModelKind model_kind_from_string(const std::string& text);

struct ModelSpec {
  ModelKind kind = ModelKind::kMlp;
  std::size_t channels = 1;
  std::size_t height = 12;
  std::size_t width = 12;
  std::size_t classes = 10;
  std::uint64_t seed = 1;

  /// Width multiplier for the conv backbones (1 = default lite size).
  std::size_t base_width = 10;
};

/// Builds an initialized network for the spec. All models accept
/// (batch, channels, height, width) inputs and emit (batch, classes) logits;
/// the MLP flattens internally.
Net build_model(const ModelSpec& spec);

}  // namespace tradefl::fl
