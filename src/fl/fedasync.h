// Asynchronous federated training — the paper's footnote 2 states TradeFL
// "is applicable to both synchronous and asynchronous scenarios" because the
// mechanism only concerns resource contribution. This module provides the
// asynchronous substrate so that claim can be exercised: clients deliver
// updates with heterogeneous delays derived from their analytic round time
// (T^(1) + T^(2)(d, f) + T^(3)); the server merges each update when it
// arrives with a staleness-discounted weight (FedAsync-style):
//     w_global <- (1 - alpha_eff) w_global + alpha_eff w_client,
//     alpha_eff = alpha * s(staleness),  s(t) = 1 / (1 + t)^a.
#pragma once

#include "fl/fedavg.h"

namespace tradefl::fl {

/// One asynchronous participant: the FedClient plus its delivery latency per
/// local update (seconds of simulated time).
struct AsyncClient {
  FedClient client;
  double round_latency = 1.0;  // T^(1) + T^(2)(d_i, f_i) + T^(3)
};

struct FedAsyncOptions {
  double horizon = 100.0;        // simulated seconds of training
  double alpha = 0.6;            // base mixing rate
  double staleness_exponent = 0.5;  // a in s(t) = (1 + t)^-a
  std::size_t local_epochs = 1;
  std::size_t batch_size = 32;
  std::size_t max_batches_per_epoch = 8;
  SgdOptions sgd{};
  std::uint64_t shuffle_seed = 23;
  /// Evaluate the global model every `eval_every` merges (0 = only at end).
  std::size_t eval_every = 5;
  /// Fault injection (nullptr = fault-free run; must outlive the call). The
  /// per-client update count plays the role of FedAvg's round number when
  /// keying fault decisions, so schedules replay identically.
  const FaultInjector* faults = nullptr;

  /// Aggregation rule for the merge path. FedAsync merges one update at a
  /// time, so only the mean-family rules apply: kWeightedMean (the plain
  /// staleness-discounted merge) and kNormClip (clip the incoming delta to
  /// `clip_norm` before merging). Any other kind throws std::invalid_argument
  /// — the population rules (median/trimmed/krum) need a survivor set that an
  /// asynchronous server never has. Part of the checkpoint fingerprint.
  AggregatorSpec aggregator{};

  /// Crash-consistent checkpointing (empty = none), keyed by processed queue
  /// events: every `checkpoint_every` events the simulation state — global
  /// weights, per-client pulled snapshots and update counts, the pending
  /// event queue, the shared shuffle RNG, merge history — is snapshotted
  /// atomically. `resume` reloads it and continues bit-identically.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  bool resume = false;
};

struct AsyncMerge {
  double time = 0.0;            // simulated arrival time
  std::size_t client_index = 0;
  double staleness = 0.0;       // seconds between pull and merge
  double test_accuracy = -1.0;  // -1 when not evaluated at this merge
};

struct FedAsyncResult {
  std::vector<AsyncMerge> merges;
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  std::size_t total_updates = 0;
  std::vector<float> final_weights;
  std::size_t total_dropped = 0;      // updates discarded by injected dropout
  std::size_t total_quarantined = 0;  // non-finite updates discarded pre-merge
  std::size_t total_delayed = 0;      // merges whose delivery was straggler-scaled
  std::size_t total_attacked = 0;     // adversarially transformed updates merged
  std::size_t total_clipped = 0;      // incoming deltas norm-clipped pre-merge
};

/// Event-driven simulation: every client trains continuously; when a local
/// update completes (after round_latency simulated seconds) it is merged with
/// the staleness-discounted rule above and the client pulls fresh weights.
FedAsyncResult train_fedasync(const ModelSpec& model_spec,
                              const std::vector<AsyncClient>& clients,
                              const Dataset& test_set, const FedAsyncOptions& options = {});

}  // namespace tradefl::fl
