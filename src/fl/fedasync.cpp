#include "fl/fedasync.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "common/snapshot.h"
#include "fl/loss.h"
#include "obs/obs.h"

namespace tradefl::fl {
namespace {

struct PendingUpdate {
  double ready_at = 0.0;
  double pulled_at = 0.0;
  std::size_t client = 0;

  // Strict total order (each client has exactly one pending update, so the
  // client index breaks ready_at ties uniquely): pop order depends only on
  // the queue's CONTENTS, never on push order, which is what lets a resumed
  // run rebuild the heap from a drained snapshot and still replay
  // bit-identically.
  bool operator>(const PendingUpdate& other) const {
    if (ready_at != other.ready_at) return ready_at > other.ready_at;
    return client > other.client;
  }
};

/// One local training pass over the client's contributed subset.
void train_once(Net& net, const Dataset& data, const std::vector<std::size_t>& subset,
                const FedAsyncOptions& options, Rng& shuffle_rng) {
  Sgd optimizer(options.sgd);
  // Shuffled order and label buffers are reused across epochs/batches rather
  // than rebuilt per batch (same churn fix as fedavg's train_local).
  std::vector<std::size_t> shuffled = subset;
  std::vector<std::size_t> labels;
  for (std::size_t epoch = 0; epoch < options.local_epochs; ++epoch) {
    shuffle_rng.shuffle(shuffled);
    std::size_t batches = 0;
    for (std::size_t start = 0; start < shuffled.size(); start += options.batch_size) {
      if (options.max_batches_per_epoch > 0 && batches >= options.max_batches_per_epoch) break;
      const std::size_t end = std::min(shuffled.size(), start + options.batch_size);
      const std::size_t count = end - start;
      net.zero_grad();
      const Tensor logits =
          net.forward(data.batch_span(shuffled.data() + start, count), /*training=*/true);
      data.batch_labels_into(shuffled.data() + start, count, labels);
      const LossResult loss = softmax_cross_entropy(logits, labels.data(), count);
      net.backward(loss.grad);
      optimizer.step(net.parameters());
      ++batches;
    }
  }
}

// ----- checkpointing -----

// v2: aggregator spec joined the fingerprint; the partial result carries the
// attacked/clipped totals.
constexpr std::uint32_t kFedAsyncSnapshotVersion = 2;
constexpr const char* kFedAsyncSnapshotKind = "fl.fedasync";

struct FedAsyncCheckpoint {
  std::uint64_t client_count = 0;
  std::uint64_t weight_count = 0;
  std::uint64_t shuffle_seed = 0;
  AggregatorSpec aggregator{};

  std::uint64_t events_processed = 0;
  std::vector<float> global_weights;
  std::vector<std::vector<float>> pulled;
  std::vector<std::uint64_t> update_counts;
  Rng::State shuffle_rng{};
  std::vector<PendingUpdate> queue;
  FedAsyncResult partial;
};

Result<std::size_t> write_fedasync_checkpoint(const std::string& path,
                                              const FedAsyncCheckpoint& state) {
  SnapshotWriter writer;
  writer.put_u64(state.client_count);
  writer.put_u64(state.weight_count);
  writer.put_u64(state.shuffle_seed);
  put_aggregator_spec(writer, state.aggregator);
  writer.put_u64(state.events_processed);
  writer.put_f32s(state.global_weights);
  writer.put_u64(state.pulled.size());
  for (const std::vector<float>& weights : state.pulled) writer.put_f32s(weights);
  writer.put_u64s(state.update_counts);
  for (std::uint64_t word : state.shuffle_rng) writer.put_u64(word);
  writer.put_u64(state.queue.size());
  for (const PendingUpdate& update : state.queue) {
    writer.put_f64(update.ready_at);
    writer.put_f64(update.pulled_at);
    writer.put_u64(update.client);
  }
  writer.put_u64(state.partial.merges.size());
  for (const AsyncMerge& merge : state.partial.merges) {
    writer.put_f64(merge.time);
    writer.put_u64(merge.client_index);
    writer.put_f64(merge.staleness);
    writer.put_f64(merge.test_accuracy);
  }
  writer.put_u64(state.partial.total_updates);
  writer.put_u64(state.partial.total_dropped);
  writer.put_u64(state.partial.total_quarantined);
  writer.put_u64(state.partial.total_delayed);
  writer.put_u64(state.partial.total_attacked);
  writer.put_u64(state.partial.total_clipped);
  return write_snapshot_file(path, kFedAsyncSnapshotKind, kFedAsyncSnapshotVersion, writer);
}

Result<FedAsyncCheckpoint> read_fedasync_checkpoint(const std::string& path) {
  auto payload = read_snapshot_file(path, kFedAsyncSnapshotKind, kFedAsyncSnapshotVersion);
  if (!payload.ok()) return payload.error();
  return decode_snapshot<FedAsyncCheckpoint>(payload.value(), [](SnapshotReader& reader) {
    FedAsyncCheckpoint state;
    state.client_count = reader.get_u64();
    state.weight_count = reader.get_u64();
    state.shuffle_seed = reader.get_u64();
    state.aggregator = get_aggregator_spec(reader);
    state.events_processed = reader.get_u64();
    state.global_weights = reader.get_f32s();
    const std::uint64_t pulled_count = reader.get_u64();
    for (std::uint64_t i = 0; i < pulled_count; ++i) state.pulled.push_back(reader.get_f32s());
    state.update_counts = reader.get_u64s();
    for (std::uint64_t& word : state.shuffle_rng) word = reader.get_u64();
    const std::uint64_t queue_count = reader.get_u64();
    for (std::uint64_t i = 0; i < queue_count; ++i) {
      PendingUpdate update;
      update.ready_at = reader.get_f64();
      update.pulled_at = reader.get_f64();
      update.client = static_cast<std::size_t>(reader.get_u64());
      state.queue.push_back(update);
    }
    const std::uint64_t merge_count = reader.get_u64();
    for (std::uint64_t i = 0; i < merge_count; ++i) {
      AsyncMerge merge;
      merge.time = reader.get_f64();
      merge.client_index = static_cast<std::size_t>(reader.get_u64());
      merge.staleness = reader.get_f64();
      merge.test_accuracy = reader.get_f64();
      state.partial.merges.push_back(merge);
    }
    state.partial.total_updates = static_cast<std::size_t>(reader.get_u64());
    state.partial.total_dropped = static_cast<std::size_t>(reader.get_u64());
    state.partial.total_quarantined = static_cast<std::size_t>(reader.get_u64());
    state.partial.total_delayed = static_cast<std::size_t>(reader.get_u64());
    state.partial.total_attacked = static_cast<std::size_t>(reader.get_u64());
    state.partial.total_clipped = static_cast<std::size_t>(reader.get_u64());
    return state;
  });
}

}  // namespace

FedAsyncResult train_fedasync(const ModelSpec& model_spec,
                              const std::vector<AsyncClient>& clients,
                              const Dataset& test_set, const FedAsyncOptions& options) {
  TFL_SPAN("fedasync.train");
  if (clients.empty()) throw std::invalid_argument("fedasync: need >= 1 client");
  if (options.horizon <= 0.0) throw std::invalid_argument("fedasync: horizon must be > 0");
  if (!(options.alpha > 0.0 && options.alpha <= 1.0)) {
    throw std::invalid_argument("fedasync: alpha must be in (0, 1]");
  }
  if (options.aggregator.kind != AggregatorKind::kWeightedMean &&
      options.aggregator.kind != AggregatorKind::kNormClip) {
    throw std::invalid_argument(
        "fedasync: aggregator '" + options.aggregator.spec_string() +
        "' needs a survivor population; only mean and normclip apply to one-at-a-time merges");
  }

  // Contributed subsets and the base model.
  std::vector<std::vector<std::size_t>> subsets(clients.size());
  std::size_t contributors = 0;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const FedClient& client = clients[c].client;
    if (client.data == nullptr) throw std::invalid_argument("fedasync: null client data");
    if (clients[c].round_latency <= 0.0) {
      throw std::invalid_argument("fedasync: round_latency must be > 0");
    }
    if (client.fraction > 0.0) {
      subsets[c] = contributed_indices(*client.data, client.fraction, client.seed);
    }
    if (!subsets[c].empty()) ++contributors;
  }
  if (contributors == 0) throw std::invalid_argument("fedasync: nobody contributes data");

  Net global = build_model(model_spec);
  std::vector<float> global_weights = global.weights();
  Net worker = build_model(model_spec);
  Rng shuffle_rng(options.shuffle_seed);

  const FaultInjector* faults =
      (options.faults != nullptr && options.faults->enabled()) ? options.faults : nullptr;
  // Each client's completed-update count stands in for FedAvg's round number
  // when keying fault decisions: decision k for client c is the same whether
  // the run is replayed, extended, or interleaved differently.
  std::vector<std::size_t> update_counts(clients.size(), 0);

  // Per-client snapshot of the weights they pulled last.
  std::vector<std::vector<float>> pulled(clients.size(), global_weights);

  FedAsyncResult result;

  // Delivery latency for the update a client is about to start, with any
  // injected straggler stretch applied at scheduling time. The stretch shows
  // up as extra staleness at merge, so the FedAsync discount handles it.
  auto next_latency = [&](std::size_t c) {
    double latency = clients[c].round_latency;
    if (faults != nullptr) {
      const double scale = faults->straggler_scale(update_counts[c] + 1, c);
      if (scale > 1.0) {
        latency *= scale;
        ++result.total_delayed;
        TFL_COUNTER_INC("fault.injected.straggler");
      }
    }
    return latency;
  };

  std::priority_queue<PendingUpdate, std::vector<PendingUpdate>, std::greater<>> queue;
  std::uint64_t events_processed = 0;

  if (options.resume && !options.checkpoint_path.empty() &&
      snapshot_exists(options.checkpoint_path)) {
    auto loaded = read_fedasync_checkpoint(options.checkpoint_path);
    if (!loaded.ok()) {
      throw std::runtime_error("fedasync resume failed closed [" + loaded.error().code +
                               "]: " + loaded.error().message);
    }
    FedAsyncCheckpoint& state = loaded.value();
    if (state.client_count != clients.size() || state.weight_count != global_weights.size() ||
        state.shuffle_seed != options.shuffle_seed ||
        state.pulled.size() != clients.size() || state.update_counts.size() != clients.size()) {
      throw std::runtime_error("fedasync resume failed closed [snapshot.mismatch]: " +
                               options.checkpoint_path +
                               " was written by a differently-configured run");
    }
    if (state.aggregator != options.aggregator) {
      throw std::runtime_error("fedasync resume failed closed [snapshot.mismatch]: " +
                               options.checkpoint_path + " was written under aggregator '" +
                               state.aggregator.spec_string() + "', this run requests '" +
                               options.aggregator.spec_string() + "'");
    }
    events_processed = state.events_processed;
    global_weights = std::move(state.global_weights);
    pulled = std::move(state.pulled);
    for (std::size_t c = 0; c < clients.size(); ++c) {
      update_counts[c] = static_cast<std::size_t>(state.update_counts[c]);
    }
    shuffle_rng.restore(state.shuffle_rng);
    for (const PendingUpdate& update : state.queue) queue.push(update);
    result = std::move(state.partial);
    TFL_COUNTER_INC("snapshot.resumes");
  } else {
    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (!subsets[c].empty()) queue.push({next_latency(c), 0.0, c});
    }
  }

  const auto maybe_checkpoint = [&]() {
    if (options.checkpoint_path.empty()) return;
    const std::uint64_t every = std::max<std::uint64_t>(options.checkpoint_every, 1);
    if (events_processed % every != 0) return;
    FedAsyncCheckpoint state;
    state.client_count = clients.size();
    state.weight_count = global_weights.size();
    state.shuffle_seed = options.shuffle_seed;
    state.aggregator = options.aggregator;
    state.events_processed = events_processed;
    state.global_weights = global_weights;
    state.pulled = pulled;
    for (std::size_t c = 0; c < clients.size(); ++c) state.update_counts.push_back(update_counts[c]);
    state.shuffle_rng = shuffle_rng.state();
    std::priority_queue<PendingUpdate, std::vector<PendingUpdate>, std::greater<>> drain = queue;
    while (!drain.empty()) {
      state.queue.push_back(drain.top());
      drain.pop();
    }
    state.partial = result;
    const auto written = write_fedasync_checkpoint(options.checkpoint_path, state);
    if (!written.ok()) {
      throw std::runtime_error("fedasync checkpoint write failed [" + written.error().code +
                               "]: " + written.error().message);
    }
    TFL_COUNTER_INC("snapshot.writes");
    TFL_COUNTER_ADD("snapshot.bytes", written.value());
  };

  while (!queue.empty() && queue.top().ready_at <= options.horizon) {
    // Crash at event N fires before the event runs: the durable state is
    // whatever the last maybe_checkpoint() persisted.
    crash_if_scheduled(faults, events_processed + 1);
    ++events_processed;
    const PendingUpdate update = queue.top();
    queue.pop();
    const std::size_t c = update.client;
    const std::size_t client_round = ++update_counts[c];

    if (faults != nullptr && faults->drop_client(client_round, c)) {
      // The client crashed mid-round: its update never arrives. It rejoins by
      // pulling the current global weights and starting over.
      ++result.total_dropped;
      TFL_COUNTER_INC("fault.injected.dropout");
      pulled[c] = global_weights;
      queue.push({update.ready_at + next_latency(c), update.ready_at, c});
      maybe_checkpoint();
      continue;
    }

    // The client trained from its pulled snapshot; replay that local pass.
    worker.set_weights(pulled[c]);
    {
      TFL_SCOPED_TIMER("fl.local_train.seconds");
      train_once(worker, *clients[c].client.data, subsets[c], options, shuffle_rng);
    }
    std::vector<float> local = worker.weights();

    if (faults != nullptr) {
      // Adversarial transforms first (relative to the stale model the silo
      // trained from), then any corruption stacks on top — same composition
      // order as the synchronous path.
      const AttackSpec attack = faults->attack_update(client_round, c);
      if (attack.attack) {
        apply_update_attack(local, pulled[c], attack, *faults, client_round);
        ++result.total_attacked;
        switch (attack.kind) {
          case FaultKind::kSignFlip: TFL_COUNTER_INC("fault.injected.signflip"); break;
          case FaultKind::kScaleAttack: TFL_COUNTER_INC("fault.injected.scale_attack"); break;
          case FaultKind::kFreeRide: TFL_COUNTER_INC("fault.injected.freeride"); break;
          case FaultKind::kCollude: TFL_COUNTER_INC("fault.injected.collude"); break;
          default: break;
        }
      }
      const CorruptionSpec spec = faults->corrupt_update(client_round, c);
      if (spec.corrupt) {
        TFL_COUNTER_INC("fault.injected.corruption");
        if (spec.use_nan) {
          local.front() = std::numeric_limits<float>::quiet_NaN();
        } else {
          Rng noise = faults->corruption_rng(client_round, c);
          for (float& weight : local) {
            weight += static_cast<float>(noise.normal(0.0, spec.noise_stddev));
          }
        }
      }
      // Quarantine before the merge touches the global model: one NaN in a
      // merged update poisons every weight through the mixing rule.
      double finite_probe = 0.0;
      for (const float weight : local) finite_probe += static_cast<double>(weight);
      if (!std::isfinite(finite_probe)) {
        ++result.total_quarantined;
        TFL_COUNTER_INC("fl.updates.quarantined");
        pulled[c] = global_weights;
        queue.push({update.ready_at + next_latency(c), update.ready_at, c});
        maybe_checkpoint();
        continue;
      }
    }

    // Staleness-discounted merge into the CURRENT global model.
    const double staleness = update.ready_at - update.pulled_at - clients[c].round_latency;
    const double discount =
        std::pow(1.0 + std::max(0.0, staleness), -options.staleness_exponent);
    const double alpha_eff =
        static_cast<double>(static_cast<float>(options.alpha * discount));
    if (options.aggregator.kind == AggregatorKind::kNormClip) {
      // Clip the incoming delta (relative to the CURRENT global) before it is
      // mixed in — the one-update analogue of the synchronous NormClip rule.
      // The norm folds over coordinates in index order: deterministic.
      double norm_sq = 0.0;
      for (std::size_t i = 0; i < global_weights.size(); ++i) {
        const double diff =
            static_cast<double>(local[i]) - static_cast<double>(global_weights[i]);
        norm_sq += diff * diff;
      }
      const double norm = std::sqrt(norm_sq);
      if (norm > options.aggregator.clip_norm && norm > 0.0) {
        const double scale = options.aggregator.clip_norm / norm;
        for (std::size_t i = 0; i < global_weights.size(); ++i) {
          const double diff =
              static_cast<double>(local[i]) - static_cast<double>(global_weights[i]);
          local[i] =
              static_cast<float>(static_cast<double>(global_weights[i]) + scale * diff);
        }
        ++result.total_clipped;
        TFL_COUNTER_INC("fl.agg.clipped");
      }
    }
    // The merge is the shared ordered weighted-sum helper: both training
    // paths now fold in double precision with an identical coordinate-order
    // contract (the float-arithmetic merge this replaced drifted from
    // FedAvg's Eq. (3) fold).
    ordered_weighted_mean({&global_weights, &local}, {1.0 - alpha_eff, alpha_eff},
                          global_pool(), global_weights);
    ++result.total_updates;
    TFL_COUNTER_INC("fl.async.updates.count");
    TFL_OBSERVE_BUCKETS("fl.async.staleness", std::max(0.0, staleness), 0.01, 0.1, 0.5, 1.0,
                        2.0, 5.0, 10.0, 50.0);

    AsyncMerge merge;
    merge.time = update.ready_at;
    merge.client_index = c;
    merge.staleness = std::max(0.0, staleness);
    if (options.eval_every > 0 && result.total_updates % options.eval_every == 0) {
      global.set_weights(global_weights);
      merge.test_accuracy = evaluate(global, test_set).accuracy;
    }
    result.merges.push_back(merge);

    // The client pulls the fresh global weights and starts the next round.
    pulled[c] = global_weights;
    queue.push({update.ready_at + next_latency(c), update.ready_at, c});
    maybe_checkpoint();
  }

  global.set_weights(global_weights);
  const EvalResult eval = evaluate(global, test_set);
  result.final_accuracy = eval.accuracy;
  result.final_loss = eval.loss;
  result.final_weights = std::move(global_weights);
  return result;
}

}  // namespace tradefl::fl
