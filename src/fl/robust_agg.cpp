#include "fl/robust_agg.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace tradefl::fl {
namespace {

/// Coordinate-chunk grain for the parallel folds. Chunk decomposition depends
/// only on the model size, never on the pool, so every fold is thread-count
/// bit-identical (common/parallel.h contract).
constexpr std::size_t kCoordGrain = 4096;

std::string format_double(double value) {
  // %.17g survives a stod round-trip, so spec_string() re-parses exactly.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer);
}

const char kAggGrammar[] =
    "agg=mean | median | trimmed[:f] | krum[:f] | multikrum[:f] | normclip[:c] "
    "(f = tolerated adversaries as a non-negative integer, default 1; "
    "c = positive L2 clip norm, default 1)";

Error agg_error(const std::string& what, const std::string& token) {
  return Error{"agg", what + " in token '" + token + "'; accepted grammar: " + kAggGrammar};
}

/// Sum of the weights folded in index order (the historical Eq. (3)
/// weight_total accumulation order).
double ordered_total(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double weight : weights) total += weight;
  return total;
}

}  // namespace

const char* aggregator_kind_name(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kWeightedMean: return "mean";
    case AggregatorKind::kCoordinateMedian: return "median";
    case AggregatorKind::kTrimmedMean: return "trimmed";
    case AggregatorKind::kKrum: return "krum";
    case AggregatorKind::kMultiKrum: return "multikrum";
    case AggregatorKind::kNormClip: return "normclip";
  }
  return "unknown";
}

std::string AggregatorSpec::spec_string() const {
  switch (kind) {
    case AggregatorKind::kWeightedMean:
    case AggregatorKind::kCoordinateMedian:
      return aggregator_kind_name(kind);
    case AggregatorKind::kTrimmedMean:
    case AggregatorKind::kKrum:
    case AggregatorKind::kMultiKrum:
      return std::string(aggregator_kind_name(kind)) + ":" + std::to_string(trim);
    case AggregatorKind::kNormClip:
      return std::string(aggregator_kind_name(kind)) + ":" + format_double(clip_norm);
  }
  return "unknown";
}

Result<AggregatorSpec> parse_aggregator(const std::string& text) {
  AggregatorSpec spec;
  const std::size_t colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const bool has_arg = colon != std::string::npos;
  const std::string arg = has_arg ? text.substr(colon + 1) : std::string();

  if (head == "mean" || head == "median") {
    if (has_arg) return agg_error("'" + head + "' takes no parameter", text);
    spec.kind = head == "mean" ? AggregatorKind::kWeightedMean
                               : AggregatorKind::kCoordinateMedian;
    return spec;
  }

  double parsed = 0.0;
  if (has_arg) {
    try {
      std::size_t used = 0;
      parsed = std::stod(arg, &used);
      if (used != arg.size()) throw std::invalid_argument(arg);
    } catch (const std::exception&) {
      return agg_error("cannot parse parameter '" + arg + "'", text);
    }
  }

  if (head == "trimmed" || head == "krum" || head == "multikrum") {
    if (has_arg &&
        (parsed < 0.0 || parsed != static_cast<double>(static_cast<std::uint64_t>(parsed)))) {
      return agg_error("'" + head + "' needs a non-negative integer f, got '" + arg + "'", text);
    }
    spec.kind = head == "trimmed" ? AggregatorKind::kTrimmedMean
                : head == "krum" ? AggregatorKind::kKrum
                                 : AggregatorKind::kMultiKrum;
    if (has_arg) spec.trim = static_cast<std::size_t>(parsed);
    return spec;
  }
  if (head == "normclip") {
    if (has_arg && parsed <= 0.0) {
      return agg_error("'normclip' needs a clip norm > 0, got '" + arg + "'", text);
    }
    spec.kind = AggregatorKind::kNormClip;
    if (has_arg) spec.clip_norm = parsed;
    return spec;
  }
  return agg_error("unknown aggregator '" + head + "'", text);
}

void put_aggregator_spec(SnapshotWriter& writer, const AggregatorSpec& spec) {
  writer.put_u32(static_cast<std::uint32_t>(spec.kind));
  writer.put_u64(spec.trim);
  writer.put_f64(spec.clip_norm);
}

AggregatorSpec get_aggregator_spec(SnapshotReader& reader) {
  AggregatorSpec spec;
  const std::uint32_t kind = reader.get_u32();
  if (kind > static_cast<std::uint32_t>(AggregatorKind::kNormClip)) {
    throw SnapshotError("aggregator kind " + std::to_string(kind) + " out of range");
  }
  spec.kind = static_cast<AggregatorKind>(kind);
  spec.trim = static_cast<std::size_t>(reader.get_u64());
  spec.clip_norm = reader.get_f64();
  return spec;
}

void ordered_weighted_mean(const std::vector<const std::vector<float>*>& values,
                           const std::vector<double>& weights, ThreadPool* pool,
                           std::vector<float>& out) {
  if (values.empty() || values.size() != weights.size()) {
    throw std::invalid_argument("ordered_weighted_mean: need matching non-empty inputs");
  }
  const std::size_t dim = values.front()->size();
  for (const std::vector<float>* value : values) {
    if (value == nullptr || value->size() != dim) {
      throw std::invalid_argument("ordered_weighted_mean: dimension mismatch");
    }
  }
  const double total = ordered_total(weights);
  if (!(total > 0.0)) {
    throw std::invalid_argument("ordered_weighted_mean: total weight must be positive");
  }
  std::vector<float> result(dim);
  parallel_for(pool, 0, dim, kCoordGrain,
               [&](std::size_t lo, std::size_t hi, std::size_t /*worker*/) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   double acc = 0.0;
                   for (std::size_t k = 0; k < values.size(); ++k) {
                     acc += weights[k] * static_cast<double>((*values[k])[i]);
                   }
                   result[i] = static_cast<float>(acc / total);
                 }
               });
  // Written through a scratch buffer so `out` may alias an input (FedAsync
  // merges in place over the global model).
  out = std::move(result);
}

namespace {

/// Shared Eq. (3) path for mean-family rules. `updates` must already be the
/// set to average; influence lands at `slots` (original update indices).
void weighted_mean_into(const std::vector<const std::vector<float>*>& values,
                        const std::vector<double>& weights, const std::vector<std::size_t>& slots,
                        ThreadPool* pool, AggregateOutcome& outcome) {
  ordered_weighted_mean(values, weights, pool, outcome.weights);
  const double total = ordered_total(weights);
  for (std::size_t k = 0; k < slots.size(); ++k) {
    outcome.influence[slots[k]] = weights[k] / total;
  }
}

/// Coordinate-wise order statistics (median / trimmed mean). Each chunk of
/// coordinates sorts (value, update-index) pairs — the index tie-break keeps
/// equal values deterministic — writes its output coordinates, and returns
/// the per-update credit mass it assigned; credits fold in chunk order.
/// `trim` = values dropped per side (0 = plain median).
void order_statistic_into(const std::vector<const std::vector<float>*>& values,
                          std::size_t trim, bool median, ThreadPool* pool,
                          AggregateOutcome& outcome) {
  const std::size_t n = values.size();
  const std::size_t dim = values.front()->size();
  outcome.weights.resize(dim);
  const std::size_t chunks = chunk_count(dim, kCoordGrain);
  std::vector<double> credit = ordered_reduce<std::vector<double>>(
      pool, chunks,
      std::vector<double>(n, 0.0),
      [&](std::size_t chunk, std::size_t /*worker*/) {
        std::vector<double> local_credit(n, 0.0);
        std::vector<std::pair<float, std::size_t>> order(n);
        const std::size_t lo = chunk * kCoordGrain;
        const std::size_t hi = std::min(dim, lo + kCoordGrain);
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t k = 0; k < n; ++k) order[k] = {(*values[k])[i], k};
          std::sort(order.begin(), order.end());
          if (median) {
            const std::size_t mid = n / 2;
            if (n % 2 == 1) {
              outcome.weights[i] = order[mid].first;
              local_credit[order[mid].second] += 1.0;
            } else {
              outcome.weights[i] = static_cast<float>(
                  (static_cast<double>(order[mid - 1].first) +
                   static_cast<double>(order[mid].first)) /
                  2.0);
              local_credit[order[mid - 1].second] += 0.5;
              local_credit[order[mid].second] += 0.5;
            }
          } else {
            double acc = 0.0;
            const double share = 1.0 / static_cast<double>(n - 2 * trim);
            for (std::size_t k = trim; k < n - trim; ++k) {
              acc += static_cast<double>(order[k].first);
              local_credit[order[k].second] += share;
            }
            outcome.weights[i] = static_cast<float>(acc / static_cast<double>(n - 2 * trim));
          }
        }
        return local_credit;
      },
      [](std::vector<double>& acc, std::vector<double>&& part) {
        for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += part[k];
      });
  for (std::size_t k = 0; k < n; ++k) {
    outcome.influence[k] = credit[k] / static_cast<double>(dim);
  }
}

/// Krum scores: for each update, the sum of its n-f-2 smallest pairwise
/// squared L2 distances. Distances accumulate per coordinate chunk and fold
/// in chunk order; the nearest-neighbour sum folds in sorted-distance order
/// with index tie-breaks — fully deterministic.
std::vector<double> krum_scores(const std::vector<const std::vector<float>*>& values,
                                std::size_t trim, ThreadPool* pool) {
  const std::size_t n = values.size();
  const std::size_t dim = values.front()->size();
  const std::size_t chunks = chunk_count(dim, kCoordGrain);
  std::vector<double> distances = ordered_reduce<std::vector<double>>(
      pool, chunks,
      std::vector<double>(n * n, 0.0),
      [&](std::size_t chunk, std::size_t /*worker*/) {
        std::vector<double> part(n * n, 0.0);
        const std::size_t lo = chunk * kCoordGrain;
        const std::size_t hi = std::min(dim, lo + kCoordGrain);
        for (std::size_t a = 0; a < n; ++a) {
          for (std::size_t b = a + 1; b < n; ++b) {
            double acc = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              const double diff = static_cast<double>((*values[a])[i]) -
                                  static_cast<double>((*values[b])[i]);
              acc += diff * diff;
            }
            part[a * n + b] = acc;
          }
        }
        return part;
      },
      [](std::vector<double>& acc, std::vector<double>&& part) {
        for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += part[k];
      });
  const std::size_t neighbours = n - trim - 2;
  std::vector<double> scores(n, 0.0);
  std::vector<std::pair<double, std::size_t>> order;
  for (std::size_t a = 0; a < n; ++a) {
    order.clear();
    for (std::size_t b = 0; b < n; ++b) {
      if (b == a) continue;
      order.emplace_back(distances[std::min(a, b) * n + std::max(a, b)], b);
    }
    std::sort(order.begin(), order.end());
    double acc = 0.0;
    for (std::size_t k = 0; k < neighbours; ++k) acc += order[k].first;
    scores[a] = acc;
  }
  return scores;
}

}  // namespace

AggregateOutcome aggregate_updates(const AggregatorSpec& spec,
                                   const std::vector<ClientUpdate>& updates,
                                   const std::vector<float>& previous_global, ThreadPool* pool) {
  if (updates.empty()) throw std::invalid_argument("aggregate_updates: need >= 1 update");
  const std::size_t n = updates.size();
  std::vector<const std::vector<float>*> values(n);
  std::vector<double> weights(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (updates[k].weights == nullptr || updates[k].weights->size() != previous_global.size()) {
      throw std::invalid_argument("aggregate_updates: update dimension mismatch");
    }
    if (!(updates[k].weight > 0.0)) {
      throw std::invalid_argument("aggregate_updates: update weight must be positive");
    }
    values[k] = updates[k].weights;
    weights[k] = updates[k].weight;
  }

  AggregateOutcome outcome;
  outcome.influence.assign(n, 0.0);
  std::vector<std::size_t> all_slots(n);
  for (std::size_t k = 0; k < n; ++k) all_slots[k] = k;

  AggregatorKind kind = spec.kind;
  // Degenerate survivor sets: the robust rules need enough updates to trim or
  // score. Rather than aborting the round (the quorum gate already handles
  // "too few survivors"), fall back to the coordinate median — the strongest
  // rule with no population requirement — and flag it.
  if (kind == AggregatorKind::kTrimmedMean && n <= 2 * spec.trim) {
    kind = AggregatorKind::kCoordinateMedian;
    outcome.fallback = true;
  }
  if ((kind == AggregatorKind::kKrum || kind == AggregatorKind::kMultiKrum) &&
      n < spec.trim + 3) {
    kind = AggregatorKind::kCoordinateMedian;
    outcome.fallback = true;
  }

  switch (kind) {
    case AggregatorKind::kWeightedMean:
      weighted_mean_into(values, weights, all_slots, pool, outcome);
      break;
    case AggregatorKind::kCoordinateMedian:
      order_statistic_into(values, 0, /*median=*/true, pool, outcome);
      break;
    case AggregatorKind::kTrimmedMean:
      order_statistic_into(values, spec.trim, /*median=*/false, pool, outcome);
      break;
    case AggregatorKind::kKrum:
    case AggregatorKind::kMultiKrum: {
      const std::vector<double> scores = krum_scores(values, spec.trim, pool);
      std::vector<std::pair<double, std::size_t>> ranked(n);
      for (std::size_t k = 0; k < n; ++k) ranked[k] = {scores[k], k};
      std::sort(ranked.begin(), ranked.end());
      const std::size_t selected =
          kind == AggregatorKind::kKrum ? 1 : std::max<std::size_t>(n - spec.trim - 2, 1);
      std::vector<std::size_t> slots;
      for (std::size_t k = 0; k < selected; ++k) slots.push_back(ranked[k].second);
      // Selected updates fold in original update (client) order so Multi-Krum
      // over the full set degrades to the exact Eq. (3) byte stream.
      std::sort(slots.begin(), slots.end());
      std::vector<const std::vector<float>*> chosen_values;
      std::vector<double> chosen_weights;
      for (const std::size_t slot : slots) {
        chosen_values.push_back(values[slot]);
        chosen_weights.push_back(weights[slot]);
      }
      weighted_mean_into(chosen_values, chosen_weights, slots, pool, outcome);
      break;
    }
    case AggregatorKind::kNormClip: {
      // Per-update delta norms, each folded over coordinates in chunk order.
      const std::size_t dim = previous_global.size();
      const std::size_t chunks = chunk_count(dim, kCoordGrain);
      std::vector<double> norms = ordered_reduce<std::vector<double>>(
          pool, chunks,
          std::vector<double>(n, 0.0),
          [&](std::size_t chunk, std::size_t /*worker*/) {
            std::vector<double> part(n, 0.0);
            const std::size_t lo = chunk * kCoordGrain;
            const std::size_t hi = std::min(dim, lo + kCoordGrain);
            for (std::size_t k = 0; k < n; ++k) {
              double acc = 0.0;
              for (std::size_t i = lo; i < hi; ++i) {
                const double diff = static_cast<double>((*values[k])[i]) -
                                    static_cast<double>(previous_global[i]);
                acc += diff * diff;
              }
              part[k] = acc;
            }
            return part;
          },
          [](std::vector<double>& acc, std::vector<double>&& part) {
            for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += part[k];
          });
      std::vector<std::vector<float>> clipped_storage;
      clipped_storage.reserve(n);
      std::vector<const std::vector<float>*> clipped(n);
      for (std::size_t k = 0; k < n; ++k) {
        const double norm = std::sqrt(norms[k]);
        if (norm <= spec.clip_norm || norm == 0.0) {
          clipped[k] = values[k];
          continue;
        }
        const double scale = spec.clip_norm / norm;
        std::vector<float> shrunk(dim);
        parallel_for(pool, 0, dim, kCoordGrain,
                     [&](std::size_t lo, std::size_t hi, std::size_t /*worker*/) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         const double delta = static_cast<double>((*values[k])[i]) -
                                              static_cast<double>(previous_global[i]);
                         shrunk[i] = static_cast<float>(
                             static_cast<double>(previous_global[i]) + scale * delta);
                       }
                     });
        clipped_storage.push_back(std::move(shrunk));
        clipped[k] = &clipped_storage.back();
        ++outcome.clipped;
      }
      weighted_mean_into(clipped, weights, all_slots, pool, outcome);
      break;
    }
  }

  for (const double share : outcome.influence) {
    if (share == 0.0) ++outcome.rejected;
  }
  return outcome;
}

void apply_update_attack(std::vector<float>& local, const std::vector<float>& global,
                         const AttackSpec& spec, const FaultInjector& faults,
                         std::uint64_t round) {
  if (!spec.attack) return;
  switch (spec.kind) {
    case FaultKind::kSignFlip: {
      const double strength = spec.magnitude > 0.0 ? spec.magnitude : 1.0;
      for (std::size_t i = 0; i < local.size(); ++i) {
        const double delta = static_cast<double>(local[i]) - static_cast<double>(global[i]);
        local[i] = static_cast<float>(static_cast<double>(global[i]) - strength * delta);
      }
      break;
    }
    case FaultKind::kScaleAttack: {
      const double factor = spec.magnitude > 0.0 ? spec.magnitude : 8.0;
      for (std::size_t i = 0; i < local.size(); ++i) {
        const double delta = static_cast<double>(local[i]) - static_cast<double>(global[i]);
        local[i] = static_cast<float>(static_cast<double>(global[i]) + factor * delta);
      }
      break;
    }
    case FaultKind::kFreeRide:
      // The free-rider spends no energy and submits the model it was handed.
      local = global;
      break;
    case FaultKind::kCollude: {
      const double shift = spec.magnitude > 0.0 ? spec.magnitude : 4.0;
      Rng rng = faults.collusion_rng(round);
      for (std::size_t i = 0; i < local.size(); ++i) {
        local[i] = static_cast<float>(static_cast<double>(global[i]) + shift * rng.normal());
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace tradefl::fl
