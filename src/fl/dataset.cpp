#include "fl/dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/string_util.h"

namespace tradefl::fl {

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar10Like: return "CIFAR10-like";
    case DatasetKind::kFmnistLike: return "FMNIST-like";
    case DatasetKind::kSvhnLike: return "SVHN-like";
    case DatasetKind::kEurosatLike: return "EuroSat-like";
  }
  return "?";
}

DatasetKind dataset_kind_from_string(const std::string& text) {
  const std::string lowered = to_lower(text);
  if (lowered == "cifar10" || lowered == "cifar") return DatasetKind::kCifar10Like;
  if (lowered == "fmnist" || lowered == "fashion") return DatasetKind::kFmnistLike;
  if (lowered == "svhn") return DatasetKind::kSvhnLike;
  if (lowered == "eurosat") return DatasetKind::kEurosatLike;
  throw std::invalid_argument("unknown dataset kind: " + text);
}

DatasetSpec DatasetSpec::builtin(DatasetKind kind, std::uint64_t concept_seed,
                                 double size_scale) {
  if (size_scale <= 0.0 || size_scale > 1.0) {
    throw std::invalid_argument("dataset: size_scale must be in (0, 1]");
  }
  DatasetSpec spec;
  spec.kind = kind;
  spec.concept_seed = concept_seed;
  spec.sample_seed = concept_seed;
  auto scaled = [size_scale](std::size_t extent) {
    return std::max<std::size_t>(4, static_cast<std::size_t>(
                                        std::lround(size_scale * static_cast<double>(extent))));
  };
  switch (kind) {
    case DatasetKind::kCifar10Like:
      spec.channels = 3;
      spec.height = spec.width = scaled(12);
      spec.class_separation = 0.9;
      spec.noise = 2.6;       // hard: natural-image-like confusability
      spec.label_noise = 0.02;
      break;
    case DatasetKind::kFmnistLike:
      spec.channels = 1;
      spec.height = spec.width = scaled(12);
      spec.class_separation = 1.2;
      spec.noise = 2.4;       // easier grayscale task
      spec.label_noise = 0.01;
      break;
    case DatasetKind::kSvhnLike:
      spec.channels = 3;
      spec.height = spec.width = scaled(12);
      spec.class_separation = 0.8;
      spec.noise = 3.0;       // cluttered digits: hardest profile
      spec.label_noise = 0.04;
      break;
    case DatasetKind::kEurosatLike:
      spec.channels = 3;
      spec.height = spec.width = scaled(12);
      spec.class_separation = 1.4;
      spec.noise = 2.0;       // satellite textures: well separated
      spec.label_noise = 0.01;
      break;
  }
  return spec;
}

Dataset::Dataset(DatasetSpec spec, std::size_t samples) : spec_(spec) {
  if (samples == 0) throw std::invalid_argument("dataset: need >= 1 sample");
  if (spec_.classes < 2) throw std::invalid_argument("dataset: need >= 2 classes");
  image_elements_ = spec_.channels * spec_.height * spec_.width;

  Rng rng(spec_.sample_seed ^ 0xA5A5A5A5DEADBEEFULL);
  // Per-class templates: smooth low-frequency patterns so that nearby pixels
  // correlate (closer to natural images than white noise) scaled by the
  // class-separation knob.
  std::vector<std::vector<float>> templates(spec_.classes,
                                            std::vector<float>(image_elements_));
  for (std::size_t cls = 0; cls < spec_.classes; ++cls) {
    Rng class_rng(spec_.concept_seed * 1315423911ULL + cls + 1);
    const double phase_x = class_rng.uniform(0.0, 2.0 * M_PI);
    const double phase_y = class_rng.uniform(0.0, 2.0 * M_PI);
    const double freq_x = class_rng.uniform(0.5, 2.5);
    const double freq_y = class_rng.uniform(0.5, 2.5);
    std::size_t flat = 0;
    for (std::size_t c = 0; c < spec_.channels; ++c) {
      const double channel_shift = class_rng.uniform(-0.5, 0.5);
      for (std::size_t y = 0; y < spec_.height; ++y) {
        for (std::size_t x = 0; x < spec_.width; ++x, ++flat) {
          const double u = static_cast<double>(x) / static_cast<double>(spec_.width);
          const double v = static_cast<double>(y) / static_cast<double>(spec_.height);
          const double pattern = std::sin(2.0 * M_PI * freq_x * u + phase_x) *
                                 std::cos(2.0 * M_PI * freq_y * v + phase_y);
          templates[cls][flat] =
              static_cast<float>(spec_.class_separation * (pattern + channel_shift));
        }
      }
    }
  }

  // Normalize pixels to roughly unit variance (the standard dataset
  // normalization transform); the template RMS is separation/sqrt(2) per the
  // sin*cos pattern, independent of the noise level, so SNR is unchanged.
  const float normalizer = static_cast<float>(
      1.0 / std::sqrt(spec_.noise * spec_.noise +
                      0.5 * spec_.class_separation * spec_.class_separation));

  // Class sampler: uniform, or weighted when the spec carries non-IID
  // class weights (cumulative-sum inversion).
  std::vector<double> cumulative;
  if (!spec_.class_weights.empty()) {
    if (spec_.class_weights.size() != spec_.classes) {
      throw std::invalid_argument("dataset: class_weights size mismatch");
    }
    double total = 0.0;
    for (double w : spec_.class_weights) {
      if (w < 0.0) throw std::invalid_argument("dataset: negative class weight");
      total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("dataset: class weights sum to zero");
    double run = 0.0;
    for (double w : spec_.class_weights) {
      run += w / total;
      cumulative.push_back(run);
    }
    cumulative.back() = 1.0;
  }
  auto draw_class = [&]() -> std::size_t {
    if (cumulative.empty()) {
      return static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(spec_.classes) - 1));
    }
    const double u = rng.uniform01();
    return static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) - cumulative.begin());
  };

  images_.resize(samples * image_elements_);
  labels_.resize(samples);
  for (std::size_t n = 0; n < samples; ++n) {
    const std::size_t cls = draw_class();
    std::size_t label = cls;
    if (spec_.label_noise > 0.0 && rng.bernoulli(spec_.label_noise)) {
      label = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(spec_.classes) - 1));
    }
    labels_[n] = label;
    float* image = images_.data() + n * image_elements_;
    for (std::size_t i = 0; i < image_elements_; ++i) {
      image[i] = (templates[cls][i] + static_cast<float>(rng.normal(0.0, spec_.noise))) *
                 normalizer;
    }
  }
}

Tensor Dataset::batch(const std::vector<std::size_t>& indices) const {
  return batch_span(indices.data(), indices.size());
}

Tensor Dataset::batch_span(const std::size_t* indices, std::size_t count) const {
  if (count == 0) throw std::invalid_argument("dataset: empty batch");
  Tensor out({count, spec_.channels, spec_.height, spec_.width});
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t index = indices[b];
    if (index >= size()) throw std::out_of_range("dataset: sample index out of range");
    const float* src = images_.data() + index * image_elements_;
    float* dst = out.data() + b * image_elements_;
    std::copy(src, src + image_elements_, dst);
  }
  return out;
}

Tensor Dataset::batch_range(std::size_t start, std::size_t count) const {
  if (count == 0) throw std::invalid_argument("dataset: empty batch");
  if (start + count > size()) throw std::out_of_range("dataset: batch range out of range");
  Tensor out({count, spec_.channels, spec_.height, spec_.width});
  const float* src = images_.data() + start * image_elements_;
  std::copy(src, src + count * image_elements_, out.data());
  return out;
}

void Dataset::batch_labels_into(const std::size_t* indices, std::size_t count,
                                std::vector<std::size_t>& out) const {
  out.resize(count);
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t index = indices[b];
    if (index >= size()) throw std::out_of_range("dataset: label index out of range");
    out[b] = labels_[index];
  }
}

std::vector<std::size_t> Dataset::batch_labels(const std::vector<std::size_t>& indices) const {
  std::vector<std::size_t> out;
  out.reserve(indices.size());
  for (std::size_t index : indices) out.push_back(labels_.at(index));
  return out;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> histogram(spec_.classes, 0);
  for (std::size_t label : labels_) ++histogram[label];
  return histogram;
}

std::vector<double> dirichlet_class_weights(std::size_t classes, double alpha, Rng& rng) {
  if (classes == 0) throw std::invalid_argument("dirichlet: need >= 1 class");
  if (alpha <= 0.0) throw std::invalid_argument("dirichlet: alpha must be > 0");
  // Gamma(alpha, 1) draws normalized; Marsaglia-Tsang for alpha >= 1 and the
  // boost trick Gamma(a) = Gamma(a+1) * U^(1/a) for alpha < 1.
  auto gamma_draw = [&rng](double shape) {
    double boost = 1.0;
    double a = shape;
    if (a < 1.0) {
      boost = std::pow(std::max(rng.uniform01(), 1e-300), 1.0 / a);
      a += 1.0;
    }
    const double d = a - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
      double x = rng.normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = rng.uniform01();
      if (u < 1.0 - 0.0331 * x * x * x * x) return boost * d * v;
      if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return boost * d * v;
      }
    }
  };
  std::vector<double> weights(classes);
  double total = 0.0;
  for (double& w : weights) {
    w = gamma_draw(alpha);
    total += w;
  }
  if (total <= 0.0) {
    // Numerically degenerate draw (alpha tiny): fall back to a point mass.
    weights.assign(classes, 0.0);
    weights[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(classes) - 1))] = 1.0;
    return weights;
  }
  for (double& w : weights) w /= total;
  return weights;
}

std::vector<std::size_t> contributed_indices(const Dataset& dataset, double fraction,
                                             std::uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("contributed_indices: fraction must be in [0, 1]");
  }
  Rng rng(seed);
  std::vector<std::size_t> permutation = rng.permutation(dataset.size());
  const std::size_t take = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(dataset.size())));
  permutation.resize(std::max<std::size_t>(take, fraction > 0.0 ? 1 : 0));
  return permutation;
}

}  // namespace tradefl::fl
