// Cache-blocked single-precision GEMM + im2col, the compute backend behind
// Conv2D and Dense. Row-major throughout, no external BLAS.
//
// Determinism contract (what makes threads=1 == threads=N bit-identical):
// every output element C(i, j) is accumulated by exactly one worker, in a
// fixed ascending-k order that depends only on the operand shapes — k-tiling
// walks tiles in ascending order and rows are parallelized, never the k
// dimension. The naive seed kernels remain available behind
// set_kernel_backend(kNaive) as the reference for equivalence tests and the
// bench_kernels speedup baseline.
#pragma once

#include <cstddef>

#include "common/parallel.h"

namespace tradefl::fl {

/// Runtime switch between the seed loops (kNaive) and the GEMM path (kGemm)
/// in Conv2D/Dense. Process-wide; flip only between forward/backward passes.
enum class KernelBackend { kNaive, kGemm };
void set_kernel_backend(KernelBackend backend);
[[nodiscard]] KernelBackend kernel_backend();

namespace gemm {

/// C(m, n) = A(m, k) * B(k, n) [+ C when accumulate]. Rows of C are
/// parallelized over `pool` (nullptr = serial); lda/ldb/ldc are row strides.
void sgemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, bool accumulate, float* c, std::size_t ldc,
              ThreadPool* pool = nullptr);

/// C(m, n) = A(m, k) * B(n, k)^T [+ C when accumulate] (B stored row-major
/// (n, k), so each output is a contiguous dot product).
void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, bool accumulate, float* c, std::size_t ldc,
              ThreadPool* pool = nullptr);

/// C(m, n) = A(k, m)^T * B(k, n) [+ C when accumulate] (A stored row-major
/// (k, m); the accumulation kernel of dW += dY^T X).
void sgemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, bool accumulate, float* c, std::size_t ldc,
              ThreadPool* pool = nullptr);

/// Geometry of one convolution group on one sample.
struct ConvGeom {
  std::size_t channels = 0;  // input channels in this group
  std::size_t in_h = 0, in_w = 0;
  std::size_t kernel = 0, stride = 1, pad = 0;
  std::size_t out_h = 0, out_w = 0;

  [[nodiscard]] std::size_t patch() const { return channels * kernel * kernel; }
  [[nodiscard]] std::size_t out_area() const { return out_h * out_w; }
};

/// Unfolds one (channels, in_h, in_w) image into a (patch, out_area) matrix:
/// row ((c * kernel + ky) * kernel + kx), column (oy * out_w + ox). Padding
/// positions are written as exact zeros.
void im2col(const float* image, const ConvGeom& geom, float* col);

/// Transpose of im2col as a scatter-add: folds a (patch, out_area) matrix
/// back into the (channels, in_h, in_w) image, accumulating overlaps.
/// `image` must be pre-zeroed (or hold a partial gradient to accumulate into).
void col2im_add(const float* col, const ConvGeom& geom, float* image);

}  // namespace gemm
}  // namespace tradefl::fl
