// Neural-network layers with explicit forward/backward passes. Everything the
// lite model zoo needs: dense, convolution (with groups, so depthwise-
// separable MobileNet blocks work), pooling, ReLU, flatten, residual and
// dense-concat composite blocks. Caches live in the layer (one in-flight
// batch at a time, matching the FedAvg training loop).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fl/tensor.h"

namespace tradefl::fl {

/// A trainable parameter tensor paired with its gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor initial) : value(std::move(initial)), grad(value.shape(), 0.0f) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; caches whatever backward() needs.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Propagates gradients; accumulates into parameter .grad members and
  /// returns the gradient with respect to the layer input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> parameters() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Fully connected layer: y = x W^T + b, x is (batch, in), W is (out, in).
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Dense"; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
};

/// 2-D convolution over (batch, channels, h, w), 'same' padding when
/// pad == kernel/2. Supports grouped convolution; groups == in_channels with
/// out == in gives a depthwise convolution (MobileNet).
class Conv2D final : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, std::size_t groups, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override { return {&weight_, &bias_}; }
  [[nodiscard]] std::string name() const override { return "Conv2D"; }

 private:
  std::size_t in_channels_, out_channels_, kernel_, stride_, pad_, groups_;
  Param weight_;  // (out, in/groups, k, k)
  Param bias_;    // (out)
  Tensor cached_input_;
};

/// ReLU activation (any rank).
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// 2x2 max pooling with stride 2 over (batch, c, h, w); floors odd extents.
class MaxPool2D final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2D"; }

 private:
  Tensor cached_input_;
  std::vector<std::size_t> argmax_;
};

/// Global average pooling: (batch, c, h, w) -> (batch, c).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

/// (batch, ...) -> (batch, features).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

/// Residual block: y = relu(body(x) + x). The body must preserve shape
/// (ResNet-lite basic block).
class Residual final : public Layer {
 public:
  explicit Residual(std::vector<LayerPtr> body);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] std::string name() const override { return "Residual"; }

 private:
  std::vector<LayerPtr> body_;
  Tensor cached_sum_;
};

/// Dense-concat block: y = concat_channels(x, body(x)) (DenseNet-lite).
class DenseConcat final : public Layer {
 public:
  explicit DenseConcat(std::vector<LayerPtr> body);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> parameters() override;
  [[nodiscard]] std::string name() const override { return "DenseConcat"; }

 private:
  std::vector<LayerPtr> body_;
  std::size_t cached_input_channels_ = 0;
};

/// Inverted dropout; identity during evaluation.
class Dropout final : public Layer {
 public:
  Dropout(double rate, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  Rng* rng_;
  Tensor mask_;
  bool last_training_ = false;
};

}  // namespace tradefl::fl
