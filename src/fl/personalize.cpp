#include "fl/personalize.h"

#include <algorithm>
#include <stdexcept>

#include "fl/loss.h"

namespace tradefl::fl {
namespace {

/// Accuracy of `net` on an index subset of a dataset.
double subset_accuracy(Net& net, const Dataset& data, const std::vector<std::size_t>& subset,
                       std::size_t batch_size) {
  if (subset.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t start = 0; start < subset.size(); start += batch_size) {
    const std::size_t end = std::min(subset.size(), start + batch_size);
    const std::vector<std::size_t> indices(subset.begin() + static_cast<std::ptrdiff_t>(start),
                                           subset.begin() + static_cast<std::ptrdiff_t>(end));
    const Tensor logits = net.forward(data.batch(indices), /*training=*/false);
    correct += softmax_cross_entropy(logits, data.batch_labels(indices)).correct;
  }
  return static_cast<double>(correct) / static_cast<double>(subset.size());
}

}  // namespace

PersonalizeResult personalize(const ModelSpec& model_spec, const FedAvgResult& federated,
                              const std::vector<FedClient>& clients,
                              const Dataset& test_set, const PersonalizeOptions& options) {
  if (federated.final_weights.empty()) {
    throw std::invalid_argument("personalize: federated result carries no weights");
  }
  if (options.epochs == 0) throw std::invalid_argument("personalize: epochs must be >= 1");
  if (options.batch_size == 0) throw std::invalid_argument("personalize: batch_size >= 1");

  PersonalizeResult result;
  Net worker = build_model(model_spec);
  worker.set_weights(federated.final_weights);
  result.global_model_accuracy = evaluate(worker, test_set).accuracy;

  Rng shuffle_rng(options.shuffle_seed);
  double local_sum = 0.0, global_sum = 0.0;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    const FedClient& client = clients[c];
    if (client.data == nullptr) throw std::invalid_argument("personalize: null client data");
    const std::vector<std::size_t> subset =
        client.fraction > 0.0 ? contributed_indices(*client.data, client.fraction, client.seed)
                              : std::vector<std::size_t>{};

    worker.set_weights(federated.final_weights);
    if (!subset.empty()) {
      Sgd optimizer(options.sgd);
      for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
        const std::vector<std::size_t> shuffle = shuffle_rng.permutation(subset.size());
        for (std::size_t start = 0; start < subset.size(); start += options.batch_size) {
          const std::size_t end = std::min(subset.size(), start + options.batch_size);
          std::vector<std::size_t> indices;
          indices.reserve(end - start);
          for (std::size_t k = start; k < end; ++k) indices.push_back(subset[shuffle[k]]);
          worker.zero_grad();
          const Tensor logits = worker.forward(client.data->batch(indices), /*training=*/true);
          const LossResult loss =
              softmax_cross_entropy(logits, client.data->batch_labels(indices));
          worker.backward(loss.grad);
          optimizer.step(worker.parameters());
        }
      }
    }

    PersonalizedModel personalized;
    personalized.client_index = c;
    personalized.weights = worker.weights();
    personalized.local_accuracy =
        subset.empty() ? 0.0 : subset_accuracy(worker, *client.data, subset, options.batch_size);
    personalized.global_accuracy = evaluate(worker, test_set).accuracy;
    local_sum += personalized.local_accuracy;
    global_sum += personalized.global_accuracy;
    result.models.push_back(std::move(personalized));
  }
  const double inv = clients.empty() ? 0.0 : 1.0 / static_cast<double>(clients.size());
  result.mean_local_accuracy = local_sum * inv;
  result.mean_global_accuracy = global_sum * inv;
  return result;
}

}  // namespace tradefl::fl
