#include "fl/model_zoo.h"

#include <stdexcept>

#include "common/string_util.h"

namespace tradefl::fl {
namespace {

std::vector<LayerPtr> conv_relu(std::size_t in, std::size_t out, std::size_t kernel,
                                std::size_t pad, Rng& rng) {
  std::vector<LayerPtr> layers;
  layers.push_back(std::make_unique<Conv2D>(in, out, kernel, 1, pad, 1, rng));
  layers.push_back(std::make_unique<ReLU>());
  return layers;
}

void extend(Net& net, std::vector<LayerPtr> layers) {
  for (auto& layer : layers) net.append(std::move(layer));
}

Net build_resnet18_lite(const ModelSpec& spec, Rng& rng) {
  const std::size_t width = spec.base_width;
  Net net;
  extend(net, conv_relu(spec.channels, width, 3, 1, rng));
  net.append(std::make_unique<MaxPool2D>());
  for (int block = 0; block < 2; ++block) {
    std::vector<LayerPtr> body;
    body.push_back(std::make_unique<Conv2D>(width, width, 3, 1, 1, 1, rng));
    body.push_back(std::make_unique<ReLU>());
    auto last_conv = std::make_unique<Conv2D>(width, width, 3, 1, 1, 1, rng);
    // Fixup-style: zero the residual branch's last conv so every block
    // starts as the identity — keeps deep-ish stacks trainable without
    // normalization layers.
    for (Param* param : last_conv->parameters()) param->value.fill(0.0f);
    body.push_back(std::move(last_conv));
    net.append(std::make_unique<Residual>(std::move(body)));
  }
  net.append(std::make_unique<Flatten>());
  const std::size_t spatial = (spec.height / 2) * (spec.width / 2);
  net.append(std::make_unique<Dense>(width * spatial, spec.classes, rng));
  return net;
}

Net build_alexnet_lite(const ModelSpec& spec, Rng& rng) {
  const std::size_t width = spec.base_width;
  Net net;
  extend(net, conv_relu(spec.channels, width, 3, 1, rng));
  net.append(std::make_unique<MaxPool2D>());
  extend(net, conv_relu(width, width * 2, 3, 1, rng));
  net.append(std::make_unique<MaxPool2D>());
  net.append(std::make_unique<Flatten>());
  const std::size_t spatial = (spec.height / 4) * (spec.width / 4);
  net.append(std::make_unique<Dense>(width * 2 * spatial, 32, rng));
  net.append(std::make_unique<ReLU>());
  net.append(std::make_unique<Dense>(32, spec.classes, rng));
  return net;
}

Net build_densenet_lite(const ModelSpec& spec, Rng& rng) {
  const std::size_t width = spec.base_width;
  const std::size_t growth = width / 2 == 0 ? 1 : width / 2;
  Net net;
  extend(net, conv_relu(spec.channels, width, 3, 1, rng));
  net.append(std::make_unique<MaxPool2D>());
  std::size_t channels = width;
  for (int block = 0; block < 2; ++block) {
    std::vector<LayerPtr> body;
    body.push_back(std::make_unique<Conv2D>(channels, growth, 3, 1, 1, 1, rng));
    body.push_back(std::make_unique<ReLU>());
    net.append(std::make_unique<DenseConcat>(std::move(body)));
    channels += growth;
  }
  net.append(std::make_unique<Flatten>());
  const std::size_t spatial = (spec.height / 2) * (spec.width / 2);
  net.append(std::make_unique<Dense>(channels * spatial, spec.classes, rng));
  return net;
}

Net build_mobilenet_lite(const ModelSpec& spec, Rng& rng) {
  const std::size_t width = spec.base_width;
  Net net;
  extend(net, conv_relu(spec.channels, width, 3, 1, rng));
  net.append(std::make_unique<MaxPool2D>());
  for (int block = 0; block < 2; ++block) {
    // Depthwise 3x3 followed by pointwise 1x1 — the separable-conv motif.
    net.append(std::make_unique<Conv2D>(width, width, 3, 1, 1, width, rng));
    net.append(std::make_unique<ReLU>());
    net.append(std::make_unique<Conv2D>(width, width, 1, 1, 0, 1, rng));
    net.append(std::make_unique<ReLU>());
  }
  net.append(std::make_unique<Flatten>());
  const std::size_t spatial = (spec.height / 2) * (spec.width / 2);
  net.append(std::make_unique<Dense>(width * spatial, spec.classes, rng));
  return net;
}

Net build_mlp(const ModelSpec& spec, Rng& rng) {
  Net net;
  net.append(std::make_unique<Flatten>());
  const std::size_t features = spec.channels * spec.height * spec.width;
  net.append(std::make_unique<Dense>(features, 32, rng));
  net.append(std::make_unique<ReLU>());
  net.append(std::make_unique<Dense>(32, spec.classes, rng));
  return net;
}

}  // namespace

const char* model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet18Lite: return "ResNet18-lite";
    case ModelKind::kAlexNetLite: return "AlexNet-lite";
    case ModelKind::kDenseNetLite: return "DenseNet-lite";
    case ModelKind::kMobileNetLite: return "MobileNet-lite";
    case ModelKind::kMlp: return "MLP";
  }
  return "?";
}

ModelKind model_kind_from_string(const std::string& text) {
  const std::string lowered = to_lower(text);
  if (lowered == "resnet18" || lowered == "resnet") return ModelKind::kResNet18Lite;
  if (lowered == "alexnet") return ModelKind::kAlexNetLite;
  if (lowered == "densenet") return ModelKind::kDenseNetLite;
  if (lowered == "mobilenet") return ModelKind::kMobileNetLite;
  if (lowered == "mlp") return ModelKind::kMlp;
  throw std::invalid_argument("unknown model kind: " + text);
}

Net build_model(const ModelSpec& spec) {
  if (spec.classes < 2) throw std::invalid_argument("model: need >= 2 classes");
  Rng rng(spec.seed);
  switch (spec.kind) {
    case ModelKind::kResNet18Lite: return build_resnet18_lite(spec, rng);
    case ModelKind::kAlexNetLite: return build_alexnet_lite(spec, rng);
    case ModelKind::kDenseNetLite: return build_densenet_lite(spec, rng);
    case ModelKind::kMobileNetLite: return build_mobilenet_lite(spec, rng);
    case ModelKind::kMlp: return build_mlp(spec, rng);
  }
  throw std::invalid_argument("model: unknown kind");
}

}  // namespace tradefl::fl
