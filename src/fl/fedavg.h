// FedAvg training loop (Sec. III-B): organizations hold local datasets,
// contribute a d_i fraction of their samples, train locally for a few
// epochs, and the server aggregates weight vectors with contribution-
// proportional weights (Eq. 3). Synchronous rounds; the round deadline τ is
// modeled analytically by the game layer (Organization::round_time), not by
// wall-clock here.
#pragma once

#include <cstdint>
#include <vector>

#include "common/faults.h"
#include "common/snapshot.h"
#include "fl/dataset.h"
#include "fl/model_zoo.h"
#include "fl/optimizer.h"
#include "fl/robust_agg.h"

namespace tradefl::fl {

struct FedAvgOptions {
  std::size_t rounds = 10;       // G — global aggregation rounds
  std::size_t local_epochs = 1;  // local passes per round
  std::size_t batch_size = 32;
  std::size_t max_batches_per_epoch = 0;  // 0 = no cap
  SgdOptions sgd{};
  std::uint64_t shuffle_seed = 7;

  /// Fault injection (nullptr = fault-free run; must outlive the call).
  const FaultInjector* faults = nullptr;
  /// Aggregation rule for the per-round update combine (default: the paper's
  /// Eq. (3) weighted mean). The spec is part of the checkpoint fingerprint —
  /// resuming under a different rule fails closed.
  AggregatorSpec aggregator{};
  /// Minimum surviving clients a round needs; below it the round is skipped
  /// (global weights untouched, RoundMetrics::skipped set) rather than
  /// renormalizing Eq. (3) over a degenerate survivor set.
  std::size_t quorum = 1;
  /// A straggler whose injected delay scale reaches this cutoff misses the
  /// round deadline τ and sits the round out. 0 = stragglers are recorded but
  /// never excluded (synchronous FedAvg waits for them).
  double straggler_cutoff = 0.0;

  /// Crash-consistent checkpointing (empty = none). Every `checkpoint_every`
  /// completed rounds the full training state — global weights, per-client
  /// RNG words, metric history, fault totals — is snapshotted atomically to
  /// `checkpoint_path`. With `resume`, an existing snapshot is loaded and
  /// training continues at the next round, bit-identically to a run that was
  /// never interrupted (the Sgd optimizer holds no cross-round state: it is
  /// rebuilt per client per round, so weights + RNG streams are the complete
  /// state). A corrupt or mismatched snapshot aborts with the snapshot
  /// layer's typed error — resume never silently restarts from scratch.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  bool resume = false;

  /// Cooperative cancellation (nullptr = never cancelled; must outlive the
  /// call). Checked at the top of every round; a fired token throws
  /// OperationCancelled after the previous round's checkpoint is already
  /// durable, so a cancelled-then-resumed training run stays bit-identical.
  const std::atomic<bool>* cancel = nullptr;
};

/// One organization's training view: a pointer to its local dataset and the
/// contributed fraction d_i of it.
struct FedClient {
  const Dataset* data = nullptr;
  double fraction = 1.0;       // d_i
  std::uint64_t seed = 1;      // selects WHICH samples are contributed
};

struct RoundMetrics {
  std::size_t round = 0;
  double train_loss = 0.0;     // mean local loss over participating batches
  double test_loss = 0.0;
  double test_accuracy = 0.0;
  std::size_t participants = 0;  // clients aggregated into Eq. (3) this round
  std::size_t dropped = 0;       // dropout + straggler exclusions this round
  std::size_t quarantined = 0;   // non-finite updates discarded this round
  bool skipped = false;          // quorum failure: no aggregation happened
  std::size_t attacked = 0;      // adversarial updates submitted this round
  std::size_t rejected = 0;      // updates the aggregator gave zero influence
  std::size_t clipped = 0;       // updates norm-clipped by the aggregator
  /// Aggregate influence share the attacked silos' updates retained in [0, 1]
  /// — the per-round attacker-containment metric (0 when no attack fired).
  double attacker_influence = 0.0;
};

struct FedAvgResult {
  std::vector<RoundMetrics> history;
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  std::size_t total_contributed_samples = 0;
  std::vector<float> final_weights;
  std::size_t rounds_skipped = 0;
  std::size_t total_dropped = 0;
  std::size_t total_quarantined = 0;
  std::size_t total_attacked = 0;
  std::size_t total_rejected = 0;
  std::size_t total_clipped = 0;
  /// Per-client mean aggregation influence over the non-skipped rounds (the
  /// deviation audit's per-silo containment signal); empty when no round
  /// aggregated.
  std::vector<double> client_influence;
  /// Per-client count of rounds in which the aggregator rejected the
  /// client's update outright.
  std::vector<std::uint64_t> client_rejected;
};

/// Snapshot codecs for the training result types, shared by the FedAvg
/// checkpoint and the trading-session checkpoint (tradefl/session.cpp).
void put_round_metrics(SnapshotWriter& writer, const RoundMetrics& metrics);
[[nodiscard]] RoundMetrics get_round_metrics(SnapshotReader& reader);
void put_fedavg_result(SnapshotWriter& writer, const FedAvgResult& result);
[[nodiscard]] FedAvgResult get_fedavg_result(SnapshotReader& reader);

/// Evaluates mean loss / accuracy of `net` on a dataset.
struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};
EvalResult evaluate(Net& net, const Dataset& data, std::size_t batch_size = 64);

/// Runs FedAvg for the given model over the clients, testing on `test_set`
/// each round. Clients contributing zero samples are skipped (they cannot
/// join training, matching the participation rule of Sec. III-A).
FedAvgResult train_fedavg(const ModelSpec& model_spec, const std::vector<FedClient>& clients,
                          const Dataset& test_set, const FedAvgOptions& options = {});

}  // namespace tradefl::fl
