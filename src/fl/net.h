// Sequential network container plus flat weight-vector (de)serialization —
// the interface FedAvg aggregation works against (Eq. 3 averages weight
// vectors across organizations).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fl/layers.h"

namespace tradefl::fl {

class Net {
 public:
  Net() = default;
  explicit Net(std::vector<LayerPtr> layers);

  void append(LayerPtr layer);

  /// Forward pass through all layers.
  Tensor forward(const Tensor& input, bool training);

  /// Backward pass; call after forward(…, training = true).
  void backward(const Tensor& grad_output);

  [[nodiscard]] std::vector<Param*> parameters();
  void zero_grad();

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t parameter_count();

  /// Copies all parameter values into one flat vector (layer order).
  [[nodiscard]] std::vector<float> weights();

  /// Loads a flat vector produced by weights() from an identical topology.
  void set_weights(const std::vector<float>& flat);

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] std::string summary();

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace tradefl::fl
