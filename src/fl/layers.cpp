#include "fl/layers.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/parallel.h"
#include "fl/gemm.h"

namespace tradefl::fl {
namespace {

/// He-normal initialization for a tensor with the given fan-in.
Tensor he_init(std::vector<std::size_t> shape, std::size_t fan_in, Rng& rng) {
  Tensor tensor(std::move(shape));
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return tensor;
}

/// Per-thread im2col scratch: each pool worker (and the main thread) owns its
/// buffer, so concurrent forwards through the same Conv2D never share state.
/// Capacity only grows, so steady-state training does no allocation here.
std::vector<float>& col_scratch(std::size_t elements) {
  thread_local std::vector<float> buffer;
  if (buffer.size() < elements) buffer.resize(elements);
  return buffer;
}

/// Second buffer for backward passes that need the input patches and the
/// gradient patches alive at the same time.
std::vector<float>& col_scratch2(std::size_t elements) {
  thread_local std::vector<float> buffer;
  if (buffer.size() < elements) buffer.resize(elements);
  return buffer;
}

/// Samples per chunk when reducing weight/bias gradients across the batch.
/// Fixed (never derived from the pool size) so the partial-sum tree — and
/// with it every float rounding step — is identical for any thread count.
constexpr std::size_t kGradChunkSamples = 8;

}  // namespace

// ---------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(he_init({out_features, in_features}, in_features, rng)),
      bias_(Tensor({out_features}, 0.0f)) {}

Tensor Dense::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Dense: expected (batch, " + std::to_string(in_features_) +
                                "), got " + input.shape_string());
  }
  if (training) cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor output({batch, out_features_});
  if (kernel_backend() == KernelBackend::kNaive) {
    for (std::size_t n = 0; n < batch; ++n) {
      for (std::size_t o = 0; o < out_features_; ++o) {
        float total = bias_.value[o];
        const float* w_row = weight_.value.data() + o * in_features_;
        const float* x_row = input.data() + n * in_features_;
        for (std::size_t k = 0; k < in_features_; ++k) total += w_row[k] * x_row[k];
        output.at2(n, o) = total;
      }
    }
    return output;
  }
  // Y = X W^T + b: one contiguous dot per output, rows parallelized.
  ThreadPool* pool = global_pool();
  gemm::sgemm_nt(batch, out_features_, in_features_, input.data(), in_features_,
                 weight_.value.data(), in_features_, /*accumulate=*/false, output.data(),
                 out_features_, pool);
  for (std::size_t n = 0; n < batch; ++n) {
    float* row = output.data() + n * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) row[o] += bias_.value[o];
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_features_) {
    throw std::invalid_argument("Dense: bad grad shape " + grad_output.shape_string());
  }
  Tensor grad_input({batch, in_features_});
  if (kernel_backend() == KernelBackend::kNaive) {
    for (std::size_t n = 0; n < batch; ++n) {
      const float* g_row = grad_output.data() + n * out_features_;
      const float* x_row = cached_input_.data() + n * in_features_;
      for (std::size_t o = 0; o < out_features_; ++o) {
        const float g = g_row[o];
        bias_.grad[o] += g;
        float* w_grad_row = weight_.grad.data() + o * in_features_;
        const float* w_row = weight_.value.data() + o * in_features_;
        float* gi_row = grad_input.data() + n * in_features_;
        for (std::size_t k = 0; k < in_features_; ++k) {
          w_grad_row[k] += g * x_row[k];
          gi_row[k] += g * w_row[k];
        }
      }
    }
    return grad_input;
  }
  ThreadPool* pool = global_pool();
  // dX = dY W (each grad_input row owned by one worker).
  gemm::sgemm_nn(batch, in_features_, out_features_, grad_output.data(), out_features_,
                 weight_.value.data(), in_features_, /*accumulate=*/false, grad_input.data(),
                 in_features_, pool);
  // dW += dY^T X (each weight-grad row owned by one worker, k = batch in
  // ascending order — the same accumulation order at every thread count).
  gemm::sgemm_tn(out_features_, in_features_, batch, grad_output.data(), out_features_,
                 cached_input_.data(), in_features_, /*accumulate=*/true, weight_.grad.data(),
                 in_features_, pool);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* g_row = grad_output.data() + n * out_features_;
    for (std::size_t o = 0; o < out_features_; ++o) bias_.grad[o] += g_row[o];
  }
  return grad_input;
}

// --------------------------------------------------------------- Conv2D ----

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, std::size_t groups, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      groups_(groups),
      weight_(he_init({out_channels, in_channels / groups, kernel, kernel},
                      (in_channels / groups) * kernel * kernel, rng)),
      bias_(Tensor({out_channels}, 0.0f)) {
  if (groups == 0 || in_channels % groups != 0 || out_channels % groups != 0) {
    throw std::invalid_argument("Conv2D: channels must divide groups");
  }
  if (stride == 0) throw std::invalid_argument("Conv2D: stride must be >= 1");
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2D: expected (n, " + std::to_string(in_channels_) +
                                ", h, w), got " + input.shape_string());
  }
  if (training) cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t in_h = input.dim(2);
  const std::size_t in_w = input.dim(3);
  // Guard the unsigned subtraction below: a kernel larger than the padded
  // input would wrap out_h/out_w around to ~2^64 and allocate accordingly.
  TFL_CHECK(in_h + 2 * pad_ >= kernel_ && in_w + 2 * pad_ >= kernel_,
            "kernel ", kernel_, " exceeds padded input ", input.shape_string(),
            " with pad ", pad_);
  const std::size_t out_h = (in_h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::size_t out_w = (in_w + 2 * pad_ - kernel_) / stride_ + 1;
  const std::size_t cin_per_group = in_channels_ / groups_;
  const std::size_t cout_per_group = out_channels_ / groups_;

  Tensor output({batch, out_channels_, out_h, out_w});
  if (kernel_backend() == KernelBackend::kNaive) {
    for (std::size_t n = 0; n < batch; ++n) {
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        const std::size_t group = oc / cout_per_group;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            float total = bias_.value[oc];
            for (std::size_t ic = 0; ic < cin_per_group; ++ic) {
              const std::size_t in_c = group * cin_per_group + ic;
              for (std::size_t ky = 0; ky < kernel_; ++ky) {
                const std::ptrdiff_t iy =
                    static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) continue;
                for (std::size_t kx = 0; kx < kernel_; ++kx) {
                  const std::ptrdiff_t ix =
                      static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                      static_cast<std::ptrdiff_t>(pad_);
                  if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) continue;
                  total += weight_.value.at4(oc, ic, ky, kx) *
                           input.at4(n, in_c, static_cast<std::size_t>(iy),
                                     static_cast<std::size_t>(ix));
                }
              }
            }
            output.at4(n, oc, oy, ox) = total;
          }
        }
      }
    }
    return output;
  }
  // GEMM path: per sample and group, Y_g = W_g * im2col(x_g) on top of the
  // broadcast bias. Samples are disjoint outputs, so the batch parallelizes
  // with no reduction at all.
  const gemm::ConvGeom geom{cin_per_group, in_h, in_w, kernel_, stride_, pad_, out_h, out_w};
  const std::size_t patch = geom.patch();
  const std::size_t area = geom.out_area();
  const std::size_t in_sample = in_channels_ * in_h * in_w;
  const std::size_t out_sample = out_channels_ * area;
  parallel_for(global_pool(), 0, batch, 1, [&](std::size_t lo, std::size_t hi, std::size_t) {
    float* col = col_scratch(patch * area).data();
    for (std::size_t n = lo; n < hi; ++n) {
      for (std::size_t g = 0; g < groups_; ++g) {
        gemm::im2col(input.data() + n * in_sample + g * cin_per_group * in_h * in_w, geom, col);
        float* out_g = output.data() + n * out_sample + g * cout_per_group * area;
        for (std::size_t ocg = 0; ocg < cout_per_group; ++ocg) {
          const float b = bias_.value[g * cout_per_group + ocg];
          float* row = out_g + ocg * area;
          for (std::size_t p = 0; p < area; ++p) row[p] = b;
        }
        gemm::sgemm_nn(cout_per_group, area, patch,
                       weight_.value.data() + g * cout_per_group * patch, patch, col, area,
                       /*accumulate=*/true, out_g, area, nullptr);
      }
    }
  });
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t in_h = cached_input_.dim(2);
  const std::size_t in_w = cached_input_.dim(3);
  const std::size_t out_h = grad_output.dim(2);
  const std::size_t out_w = grad_output.dim(3);
  const std::size_t cin_per_group = in_channels_ / groups_;
  const std::size_t cout_per_group = out_channels_ / groups_;

  Tensor grad_input(cached_input_.shape());
  if (kernel_backend() == KernelBackend::kGemm) {
    const gemm::ConvGeom geom{cin_per_group, in_h, in_w, kernel_, stride_, pad_, out_h, out_w};
    const std::size_t patch = geom.patch();
    const std::size_t area = geom.out_area();
    const std::size_t in_sample = in_channels_ * in_h * in_w;
    const std::size_t out_sample = out_channels_ * area;
    ThreadPool* pool = global_pool();
    // dX: per sample/group, fold W_g^T dY_g back through col2im. Samples are
    // disjoint outputs, so the batch parallelizes without a reduction.
    parallel_for(pool, 0, batch, 1, [&](std::size_t lo, std::size_t hi, std::size_t) {
      float* dcol = col_scratch(patch * area).data();
      for (std::size_t n = lo; n < hi; ++n) {
        for (std::size_t g = 0; g < groups_; ++g) {
          gemm::sgemm_tn(patch, area, cout_per_group,
                         weight_.value.data() + g * cout_per_group * patch, patch,
                         grad_output.data() + n * out_sample + g * cout_per_group * area, area,
                         /*accumulate=*/false, dcol, area, nullptr);
          gemm::col2im_add(dcol, geom,
                           grad_input.data() + n * in_sample + g * cin_per_group * in_h * in_w);
        }
      }
    });
    // dW/db: partial sums over fixed-size sample chunks, folded serially in
    // chunk order — the partial-sum tree depends only on the batch size, so
    // gradients are bit-identical at any thread count.
    struct GradPartial {
      std::vector<float> w;
      std::vector<float> b;
    };
    const std::size_t chunks = chunk_count(batch, kGradChunkSamples);
    GradPartial total = ordered_reduce<GradPartial>(
        pool, chunks,
        GradPartial{std::vector<float>(weight_.grad.size(), 0.0f),
                    std::vector<float>(out_channels_, 0.0f)},
        [&](std::size_t chunk, std::size_t) {
          GradPartial local{std::vector<float>(weight_.grad.size(), 0.0f),
                            std::vector<float>(out_channels_, 0.0f)};
          const std::size_t n_lo = chunk * kGradChunkSamples;
          const std::size_t n_hi = std::min(batch, n_lo + kGradChunkSamples);
          float* col = col_scratch2(patch * area).data();
          for (std::size_t n = n_lo; n < n_hi; ++n) {
            for (std::size_t g = 0; g < groups_; ++g) {
              gemm::im2col(cached_input_.data() + n * in_sample +
                               g * cin_per_group * in_h * in_w,
                           geom, col);
              const float* dy_g =
                  grad_output.data() + n * out_sample + g * cout_per_group * area;
              gemm::sgemm_nt(cout_per_group, patch, area, dy_g, area, col, area,
                             /*accumulate=*/true, local.w.data() + g * cout_per_group * patch,
                             patch, nullptr);
              for (std::size_t ocg = 0; ocg < cout_per_group; ++ocg) {
                const float* dy_row = dy_g + ocg * area;
                float& b = local.b[g * cout_per_group + ocg];
                for (std::size_t p = 0; p < area; ++p) b += dy_row[p];
              }
            }
          }
          return local;
        },
        [](GradPartial& acc, GradPartial&& part) {
          for (std::size_t i = 0; i < acc.w.size(); ++i) acc.w[i] += part.w[i];
          for (std::size_t i = 0; i < acc.b.size(); ++i) acc.b[i] += part.b[i];
        });
    for (std::size_t i = 0; i < total.w.size(); ++i) weight_.grad[i] += total.w[i];
    for (std::size_t i = 0; i < total.b.size(); ++i) bias_.grad[i] += total.b[i];
    return grad_input;
  }
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const std::size_t group = oc / cout_per_group;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          const float g = grad_output.at4(n, oc, oy, ox);
          if (g == 0.0f) continue;
          bias_.grad[oc] += g;
          for (std::size_t ic = 0; ic < cin_per_group; ++ic) {
            const std::size_t in_c = group * cin_per_group + ic;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) continue;
                const std::size_t uy = static_cast<std::size_t>(iy);
                const std::size_t ux = static_cast<std::size_t>(ix);
                weight_.grad.at4(oc, ic, ky, kx) += g * cached_input_.at4(n, in_c, uy, ux);
                grad_input.at4(n, in_c, uy, ux) += g * weight_.value.at4(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

// ----------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0f) output[i] = 0.0f;
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  TFL_ASSERT(grad_output.same_shape(cached_input_), "grad ", grad_output.shape_string(),
             " vs cached input ", cached_input_.shape_string());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_input[i] = 0.0f;
  }
  return grad_input;
}

// ------------------------------------------------------------ MaxPool2D ----

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("MaxPool2D: need rank-4 input");
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t out_h = input.dim(2) / 2, out_w = input.dim(3) / 2;
  if (out_h == 0 || out_w == 0) throw std::invalid_argument("MaxPool2D: input too small");
  Tensor output({batch, channels, out_h, out_w});
  // The argmax bookkeeping exists only for backward; the evaluation path
  // skips it so a shared net can run concurrent eval forwards (parallel
  // evaluate()) without writing any layer state.
  if (training) argmax_.assign(output.size(), 0);
  std::size_t flat = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox, ++flat) {
          float best = -3.4e38f;
          std::size_t best_index = 0;
          for (std::size_t ky = 0; ky < 2; ++ky) {
            for (std::size_t kx = 0; kx < 2; ++kx) {
              const std::size_t iy = oy * 2 + ky, ix = ox * 2 + kx;
              const float value = input.at4(n, c, iy, ix);
              if (value > best) {
                best = value;
                best_index = ((n * channels + c) * input.dim(2) + iy) * input.dim(3) + ix;
              }
            }
          }
          output[flat] = best;
          if (training) argmax_[flat] = best_index;
        }
      }
    }
  }
  if (training) cached_input_ = input;
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  TFL_ASSERT(grad_output.size() == argmax_.size(), "grad size ", grad_output.size(),
             " vs argmax ", argmax_.size());
  Tensor grad_input(cached_input_.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

// -------------------------------------------------------- GlobalAvgPool ----

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("GlobalAvgPool: need rank-4 input");
  if (training) cached_shape_ = input.shape();
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t area = input.dim(2) * input.dim(3);
  Tensor output({batch, channels});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      double total = 0.0;
      const float* base = input.data() + (n * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) total += static_cast<double>(base[i]);
      output.at2(n, c) = static_cast<float>(total / static_cast<double>(area));
    }
  }
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_shape_);
  const std::size_t batch = cached_shape_[0], channels = cached_shape_[1];
  const std::size_t area = cached_shape_[2] * cached_shape_[3];
  const float inv_area = 1.0f / static_cast<float>(area);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float g = grad_output.at2(n, c) * inv_area;
      float* base = grad_input.data() + (n * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) base[i] = g;
    }
  }
  return grad_input;
}

// -------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (training) cached_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

// ------------------------------------------------------------- Residual ----

Residual::Residual(std::vector<LayerPtr> body) : body_(std::move(body)) {
  if (body_.empty()) throw std::invalid_argument("Residual: empty body");
}

Tensor Residual::forward(const Tensor& input, bool training) {
  Tensor hidden = input;
  for (auto& layer : body_) hidden = layer->forward(hidden, training);
  if (!hidden.same_shape(input)) {
    throw std::invalid_argument("Residual: body must preserve shape (" +
                                input.shape_string() + " -> " + hidden.shape_string() + ")");
  }
  hidden.add_scaled(input, 1.0f);
  if (training) cached_sum_ = hidden;
  Tensor output = hidden;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0f) output[i] = 0.0f;
  }
  return output;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor grad_sum = grad_output;
  for (std::size_t i = 0; i < grad_sum.size(); ++i) {
    if (cached_sum_[i] <= 0.0f) grad_sum[i] = 0.0f;
  }
  Tensor grad_body = grad_sum;
  for (std::size_t i = body_.size(); i-- > 0;) grad_body = body_[i]->backward(grad_body);
  grad_body.add_scaled(grad_sum, 1.0f);  // skip connection
  return grad_body;
}

std::vector<Param*> Residual::parameters() {
  std::vector<Param*> params;
  for (auto& layer : body_) {
    for (Param* param : layer->parameters()) params.push_back(param);
  }
  return params;
}

// ---------------------------------------------------------- DenseConcat ----

DenseConcat::DenseConcat(std::vector<LayerPtr> body) : body_(std::move(body)) {
  if (body_.empty()) throw std::invalid_argument("DenseConcat: empty body");
}

Tensor DenseConcat::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("DenseConcat: need rank-4 input");
  Tensor hidden = input;
  for (auto& layer : body_) hidden = layer->forward(hidden, training);
  if (hidden.rank() != 4 || hidden.dim(0) != input.dim(0) ||
      hidden.dim(2) != input.dim(2) || hidden.dim(3) != input.dim(3)) {
    throw std::invalid_argument("DenseConcat: body must preserve spatial shape");
  }
  if (training) cached_input_channels_ = input.dim(1);
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1) + hidden.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  Tensor output({batch, channels, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < input.dim(1); ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) output.at4(n, c, y, x) = input.at4(n, c, y, x);
      }
    }
    for (std::size_t c = 0; c < hidden.dim(1); ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          output.at4(n, input.dim(1) + c, y, x) = hidden.at4(n, c, y, x);
        }
      }
    }
  }
  return output;
}

Tensor DenseConcat::backward(const Tensor& grad_output) {
  const std::size_t batch = grad_output.dim(0);
  const std::size_t h = grad_output.dim(2), w = grad_output.dim(3);
  TFL_CHECK(grad_output.dim(1) >= cached_input_channels_,
            "grad channels ", grad_output.dim(1), " below passthrough ",
            cached_input_channels_);
  const std::size_t body_channels = grad_output.dim(1) - cached_input_channels_;

  Tensor grad_body({batch, body_channels, h, w});
  Tensor grad_passthrough({batch, cached_input_channels_, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < cached_input_channels_; ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          grad_passthrough.at4(n, c, y, x) = grad_output.at4(n, c, y, x);
        }
      }
    }
    for (std::size_t c = 0; c < body_channels; ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          grad_body.at4(n, c, y, x) = grad_output.at4(n, cached_input_channels_ + c, y, x);
        }
      }
    }
  }
  for (std::size_t i = body_.size(); i-- > 0;) grad_body = body_[i]->backward(grad_body);
  grad_body.add_scaled(grad_passthrough, 1.0f);
  return grad_body;
}

std::vector<Param*> DenseConcat::parameters() {
  std::vector<Param*> params;
  for (auto& layer : body_) {
    for (Param* param : layer->parameters()) params.push_back(param);
  }
  return params;
}

// -------------------------------------------------------------- Dropout ----

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(&rng) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  // No state writes on the eval path (concurrent eval forwards share layers).
  if (!training || rate_ == 0.0) return input;
  last_training_ = true;
  mask_ = Tensor(input.shape());
  Tensor output = input;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t i = 0; i < output.size(); ++i) {
    const bool keep = !rng_->bernoulli(rate_);
    mask_[i] = keep ? keep_scale : 0.0f;
    output[i] *= mask_[i];
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || rate_ == 0.0) return grad_output;
  TFL_ASSERT(grad_output.same_shape(mask_), "grad ", grad_output.shape_string(),
             " vs mask ", mask_.shape_string());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) grad_input[i] *= mask_[i];
  return grad_input;
}

}  // namespace tradefl::fl
