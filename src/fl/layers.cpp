#include "fl/layers.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace tradefl::fl {
namespace {

/// He-normal initialization for a tensor with the given fan-in.
Tensor he_init(std::vector<std::size_t> shape, std::size_t fan_in, Rng& rng) {
  Tensor tensor(std::move(shape));
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
  return tensor;
}

}  // namespace

// ---------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(he_init({out_features, in_features}, in_features, rng)),
      bias_(Tensor({out_features}, 0.0f)) {}

Tensor Dense::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Dense: expected (batch, " + std::to_string(in_features_) +
                                "), got " + input.shape_string());
  }
  if (training) cached_input_ = input;
  const std::size_t batch = input.dim(0);
  Tensor output({batch, out_features_});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t o = 0; o < out_features_; ++o) {
      float total = bias_.value[o];
      const float* w_row = weight_.value.data() + o * in_features_;
      const float* x_row = input.data() + n * in_features_;
      for (std::size_t k = 0; k < in_features_; ++k) total += w_row[k] * x_row[k];
      output.at2(n, o) = total;
    }
  }
  return output;
}

Tensor Dense::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_features_) {
    throw std::invalid_argument("Dense: bad grad shape " + grad_output.shape_string());
  }
  Tensor grad_input({batch, in_features_});
  for (std::size_t n = 0; n < batch; ++n) {
    const float* g_row = grad_output.data() + n * out_features_;
    const float* x_row = cached_input_.data() + n * in_features_;
    for (std::size_t o = 0; o < out_features_; ++o) {
      const float g = g_row[o];
      bias_.grad[o] += g;
      float* w_grad_row = weight_.grad.data() + o * in_features_;
      const float* w_row = weight_.value.data() + o * in_features_;
      float* gi_row = grad_input.data() + n * in_features_;
      for (std::size_t k = 0; k < in_features_; ++k) {
        w_grad_row[k] += g * x_row[k];
        gi_row[k] += g * w_row[k];
      }
    }
  }
  return grad_input;
}

// --------------------------------------------------------------- Conv2D ----

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, std::size_t groups, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      groups_(groups),
      weight_(he_init({out_channels, in_channels / groups, kernel, kernel},
                      (in_channels / groups) * kernel * kernel, rng)),
      bias_(Tensor({out_channels}, 0.0f)) {
  if (groups == 0 || in_channels % groups != 0 || out_channels % groups != 0) {
    throw std::invalid_argument("Conv2D: channels must divide groups");
  }
  if (stride == 0) throw std::invalid_argument("Conv2D: stride must be >= 1");
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2D: expected (n, " + std::to_string(in_channels_) +
                                ", h, w), got " + input.shape_string());
  }
  if (training) cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t in_h = input.dim(2);
  const std::size_t in_w = input.dim(3);
  // Guard the unsigned subtraction below: a kernel larger than the padded
  // input would wrap out_h/out_w around to ~2^64 and allocate accordingly.
  TFL_CHECK(in_h + 2 * pad_ >= kernel_ && in_w + 2 * pad_ >= kernel_,
            "kernel ", kernel_, " exceeds padded input ", input.shape_string(),
            " with pad ", pad_);
  const std::size_t out_h = (in_h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::size_t out_w = (in_w + 2 * pad_ - kernel_) / stride_ + 1;
  const std::size_t cin_per_group = in_channels_ / groups_;
  const std::size_t cout_per_group = out_channels_ / groups_;

  Tensor output({batch, out_channels_, out_h, out_w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const std::size_t group = oc / cout_per_group;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          float total = bias_.value[oc];
          for (std::size_t ic = 0; ic < cin_per_group; ++ic) {
            const std::size_t in_c = group * cin_per_group + ic;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) continue;
                total += weight_.value.at4(oc, ic, ky, kx) *
                         input.at4(n, in_c, static_cast<std::size_t>(iy),
                                   static_cast<std::size_t>(ix));
              }
            }
          }
          output.at4(n, oc, oy, ox) = total;
        }
      }
    }
  }
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t in_h = cached_input_.dim(2);
  const std::size_t in_w = cached_input_.dim(3);
  const std::size_t out_h = grad_output.dim(2);
  const std::size_t out_w = grad_output.dim(3);
  const std::size_t cin_per_group = in_channels_ / groups_;
  const std::size_t cout_per_group = out_channels_ / groups_;

  Tensor grad_input(cached_input_.shape());
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const std::size_t group = oc / cout_per_group;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          const float g = grad_output.at4(n, oc, oy, ox);
          if (g == 0.0f) continue;
          bias_.grad[oc] += g;
          for (std::size_t ic = 0; ic < cin_per_group; ++ic) {
            const std::size_t in_c = group * cin_per_group + ic;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) continue;
                const std::size_t uy = static_cast<std::size_t>(iy);
                const std::size_t ux = static_cast<std::size_t>(ix);
                weight_.grad.at4(oc, ic, ky, kx) += g * cached_input_.at4(n, in_c, uy, ux);
                grad_input.at4(n, in_c, uy, ux) += g * weight_.value.at4(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

// ----------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor output = input;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0f) output[i] = 0.0f;
  }
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  TFL_ASSERT(grad_output.same_shape(cached_input_), "grad ", grad_output.shape_string(),
             " vs cached input ", cached_input_.shape_string());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_input[i] = 0.0f;
  }
  return grad_input;
}

// ------------------------------------------------------------ MaxPool2D ----

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("MaxPool2D: need rank-4 input");
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t out_h = input.dim(2) / 2, out_w = input.dim(3) / 2;
  if (out_h == 0 || out_w == 0) throw std::invalid_argument("MaxPool2D: input too small");
  Tensor output({batch, channels, out_h, out_w});
  argmax_.assign(output.size(), 0);
  std::size_t flat = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox, ++flat) {
          float best = -3.4e38f;
          std::size_t best_index = 0;
          for (std::size_t ky = 0; ky < 2; ++ky) {
            for (std::size_t kx = 0; kx < 2; ++kx) {
              const std::size_t iy = oy * 2 + ky, ix = ox * 2 + kx;
              const float value = input.at4(n, c, iy, ix);
              if (value > best) {
                best = value;
                best_index = ((n * channels + c) * input.dim(2) + iy) * input.dim(3) + ix;
              }
            }
          }
          output[flat] = best;
          argmax_[flat] = best_index;
        }
      }
    }
  }
  if (training) cached_input_ = input;
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  TFL_ASSERT(grad_output.size() == argmax_.size(), "grad size ", grad_output.size(),
             " vs argmax ", argmax_.size());
  Tensor grad_input(cached_input_.shape());
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

// -------------------------------------------------------- GlobalAvgPool ----

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("GlobalAvgPool: need rank-4 input");
  if (training) cached_shape_ = input.shape();
  else cached_shape_ = input.shape();
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t area = input.dim(2) * input.dim(3);
  Tensor output({batch, channels});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      double total = 0.0;
      const float* base = input.data() + (n * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) total += static_cast<double>(base[i]);
      output.at2(n, c) = static_cast<float>(total / static_cast<double>(area));
    }
  }
  return output;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_shape_);
  const std::size_t batch = cached_shape_[0], channels = cached_shape_[1];
  const std::size_t area = cached_shape_[2] * cached_shape_[3];
  const float inv_area = 1.0f / static_cast<float>(area);
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const float g = grad_output.at2(n, c) * inv_area;
      float* base = grad_input.data() + (n * channels + c) * area;
      for (std::size_t i = 0; i < area; ++i) base[i] = g;
    }
  }
  return grad_input;
}

// -------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (training) cached_shape_ = input.shape();
  else cached_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.size() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

// ------------------------------------------------------------- Residual ----

Residual::Residual(std::vector<LayerPtr> body) : body_(std::move(body)) {
  if (body_.empty()) throw std::invalid_argument("Residual: empty body");
}

Tensor Residual::forward(const Tensor& input, bool training) {
  Tensor hidden = input;
  for (auto& layer : body_) hidden = layer->forward(hidden, training);
  if (!hidden.same_shape(input)) {
    throw std::invalid_argument("Residual: body must preserve shape (" +
                                input.shape_string() + " -> " + hidden.shape_string() + ")");
  }
  hidden.add_scaled(input, 1.0f);
  cached_sum_ = hidden;
  Tensor output = hidden;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] < 0.0f) output[i] = 0.0f;
  }
  return output;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor grad_sum = grad_output;
  for (std::size_t i = 0; i < grad_sum.size(); ++i) {
    if (cached_sum_[i] <= 0.0f) grad_sum[i] = 0.0f;
  }
  Tensor grad_body = grad_sum;
  for (std::size_t i = body_.size(); i-- > 0;) grad_body = body_[i]->backward(grad_body);
  grad_body.add_scaled(grad_sum, 1.0f);  // skip connection
  return grad_body;
}

std::vector<Param*> Residual::parameters() {
  std::vector<Param*> params;
  for (auto& layer : body_) {
    for (Param* param : layer->parameters()) params.push_back(param);
  }
  return params;
}

// ---------------------------------------------------------- DenseConcat ----

DenseConcat::DenseConcat(std::vector<LayerPtr> body) : body_(std::move(body)) {
  if (body_.empty()) throw std::invalid_argument("DenseConcat: empty body");
}

Tensor DenseConcat::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("DenseConcat: need rank-4 input");
  Tensor hidden = input;
  for (auto& layer : body_) hidden = layer->forward(hidden, training);
  if (hidden.rank() != 4 || hidden.dim(0) != input.dim(0) ||
      hidden.dim(2) != input.dim(2) || hidden.dim(3) != input.dim(3)) {
    throw std::invalid_argument("DenseConcat: body must preserve spatial shape");
  }
  cached_input_channels_ = input.dim(1);
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1) + hidden.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  Tensor output({batch, channels, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < input.dim(1); ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) output.at4(n, c, y, x) = input.at4(n, c, y, x);
      }
    }
    for (std::size_t c = 0; c < hidden.dim(1); ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          output.at4(n, input.dim(1) + c, y, x) = hidden.at4(n, c, y, x);
        }
      }
    }
  }
  return output;
}

Tensor DenseConcat::backward(const Tensor& grad_output) {
  const std::size_t batch = grad_output.dim(0);
  const std::size_t h = grad_output.dim(2), w = grad_output.dim(3);
  TFL_CHECK(grad_output.dim(1) >= cached_input_channels_,
            "grad channels ", grad_output.dim(1), " below passthrough ",
            cached_input_channels_);
  const std::size_t body_channels = grad_output.dim(1) - cached_input_channels_;

  Tensor grad_body({batch, body_channels, h, w});
  Tensor grad_passthrough({batch, cached_input_channels_, h, w});
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < cached_input_channels_; ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          grad_passthrough.at4(n, c, y, x) = grad_output.at4(n, c, y, x);
        }
      }
    }
    for (std::size_t c = 0; c < body_channels; ++c) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
          grad_body.at4(n, c, y, x) = grad_output.at4(n, cached_input_channels_ + c, y, x);
        }
      }
    }
  }
  for (std::size_t i = body_.size(); i-- > 0;) grad_body = body_[i]->backward(grad_body);
  grad_body.add_scaled(grad_passthrough, 1.0f);
  return grad_body;
}

std::vector<Param*> DenseConcat::parameters() {
  std::vector<Param*> params;
  for (auto& layer : body_) {
    for (Param* param : layer->parameters()) params.push_back(param);
  }
  return params;
}

// -------------------------------------------------------------- Dropout ----

Dropout::Dropout(double rate, Rng& rng) : rate_(rate), rng_(&rng) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_training_ = training;
  if (!training || rate_ == 0.0) return input;
  mask_ = Tensor(input.shape());
  Tensor output = input;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (std::size_t i = 0; i < output.size(); ++i) {
    const bool keep = !rng_->bernoulli(rate_);
    mask_[i] = keep ? keep_scale : 0.0f;
    output[i] *= mask_[i];
  }
  return output;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!last_training_ || rate_ == 0.0) return grad_output;
  TFL_ASSERT(grad_output.same_shape(mask_), "grad ", grad_output.shape_string(),
             " vs mask ", mask_.shape_string());
  Tensor grad_input = grad_output;
  for (std::size_t i = 0; i < grad_input.size(); ++i) grad_input[i] *= mask_[i];
  return grad_input;
}

}  // namespace tradefl::fl
