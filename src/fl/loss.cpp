#include "fl/loss.h"

#include <cmath>
#include <stdexcept>

namespace tradefl::fl {

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  return softmax_cross_entropy(logits, labels.data(), labels.size());
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::size_t* labels,
                                 std::size_t count) {
  if (logits.rank() != 2) throw std::invalid_argument("loss: logits must be rank 2");
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  if (count != batch) throw std::invalid_argument("loss: label count mismatch");

  LossResult result;
  result.grad = Tensor(logits.shape());
  double total_loss = 0.0;
  for (std::size_t n = 0; n < batch; ++n) {
    if (labels[n] >= classes) throw std::invalid_argument("loss: label out of range");
    const float* row = logits.data() + n * classes;
    float max_logit = row[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > max_logit) {
        max_logit = row[c];
        argmax = c;
      }
    }
    if (argmax == labels[n]) ++result.correct;
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(row[c] - max_logit));
    }
    const double log_denom = std::log(denom);
    total_loss += -(static_cast<double>(row[labels[n]] - max_logit) - log_denom);
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c] - max_logit)) / denom;
      result.grad.at2(n, c) =
          (static_cast<float>(p) - (c == labels[n] ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  result.mean_loss = total_loss / static_cast<double>(batch);
  return result;
}

}  // namespace tradefl::fl
