// Softmax cross-entropy loss over logits (Eq. 1's per-sample loss l(w, x)).
#pragma once

#include <cstdint>
#include <vector>

#include "fl/tensor.h"

namespace tradefl::fl {

struct LossResult {
  double mean_loss = 0.0;
  Tensor grad;          // d(mean loss)/d(logits), same shape as logits
  std::size_t correct = 0;  // argmax == label count (for accuracy)
};

/// logits: (batch, classes); labels: batch entries in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<std::size_t>& labels);

/// Pointer-span variant: `count` labels starting at `labels`. Lets callers
/// evaluate on a slice of Dataset::labels() without copying a label vector
/// per batch.
LossResult softmax_cross_entropy(const Tensor& logits, const std::size_t* labels,
                                 std::size_t count);

}  // namespace tradefl::fl
