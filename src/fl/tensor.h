// Minimal dense float tensor for the federated-learning substrate. Row-major,
// value semantics, shape checked at every op. Deliberately simple: the lite
// models in this repo are small enough that clarity beats BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace tradefl::fl {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f);

  [[nodiscard]] static Tensor from_values(std::vector<std::size_t> shape,
                                          std::vector<float> values);

  [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const;

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  float& operator[](std::size_t flat_index) { return data_[flat_index]; }
  float operator[](std::size_t flat_index) const { return data_[flat_index]; }

  /// 2-D accessors (rows x cols); throws unless rank() == 2.
  float& at2(std::size_t row, std::size_t col);
  [[nodiscard]] float at2(std::size_t row, std::size_t col) const;

  /// 4-D accessors (n, c, h, w); throws unless rank() == 4.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  void fill(float value);
  [[nodiscard]] bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Reinterprets the layout with a new shape of identical element count.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Elementwise in-place: this += factor * other. Shapes must match.
  void add_scaled(const Tensor& other, float factor);

  /// Elementwise in-place scale.
  void scale(float factor);

  [[nodiscard]] float sum() const;
  [[nodiscard]] float max_abs() const;

  [[nodiscard]] std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace tradefl::fl
