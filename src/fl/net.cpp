#include "fl/net.h"

#include <sstream>
#include <stdexcept>

namespace tradefl::fl {

Net::Net(std::vector<LayerPtr> layers) : layers_(std::move(layers)) {}

void Net::append(LayerPtr layer) {
  if (!layer) throw std::invalid_argument("net: null layer");
  layers_.push_back(std::move(layer));
}

Tensor Net::forward(const Tensor& input, bool training) {
  Tensor activation = input;
  for (auto& layer : layers_) activation = layer->forward(activation, training);
  return activation;
}

void Net::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) grad = layers_[i]->backward(grad);
}

std::vector<Param*> Net::parameters() {
  std::vector<Param*> params;
  for (auto& layer : layers_) {
    for (Param* param : layer->parameters()) params.push_back(param);
  }
  return params;
}

void Net::zero_grad() {
  for (Param* param : parameters()) param->grad.fill(0.0f);
}

std::size_t Net::parameter_count() {
  std::size_t count = 0;
  for (Param* param : parameters()) count += param->value.size();
  return count;
}

std::vector<float> Net::weights() {
  std::vector<float> flat;
  flat.reserve(parameter_count());
  for (Param* param : parameters()) {
    const float* data = param->value.data();
    flat.insert(flat.end(), data, data + param->value.size());
  }
  return flat;
}

void Net::set_weights(const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (Param* param : parameters()) {
    if (offset + param->value.size() > flat.size()) {
      throw std::invalid_argument("net: weight vector too short");
    }
    for (std::size_t i = 0; i < param->value.size(); ++i) {
      param->value[i] = flat[offset + i];
    }
    offset += param->value.size();
  }
  if (offset != flat.size()) throw std::invalid_argument("net: weight vector too long");
}

std::string Net::summary() {
  std::ostringstream out;
  out << "Net(" << layers_.size() << " layers, " << parameter_count() << " params):";
  for (auto& layer : layers_) out << ' ' << layer->name();
  return out.str();
}

}  // namespace tradefl::fl
