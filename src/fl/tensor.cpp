#include "fl/tensor.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace tradefl::fl {
namespace {

std::size_t element_count(const std::vector<std::size_t>& shape) {
  std::size_t count = 1;
  for (std::size_t dim : shape) {
    if (dim == 0) throw std::invalid_argument("tensor: zero dimension");
    TFL_CHECK(count <= std::numeric_limits<std::size_t>::max() / dim,
              "element count overflow for dimension ", dim);
    count *= dim;
  }
  return count;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(element_count(shape_), fill) {}

Tensor Tensor::from_values(std::vector<std::size_t> shape, std::vector<float> values) {
  Tensor tensor;
  if (element_count(shape) != values.size()) {
    throw std::invalid_argument("tensor: value count does not match shape");
  }
  tensor.shape_ = std::move(shape);
  tensor.data_ = std::move(values);
  return tensor;
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) throw std::out_of_range("tensor: axis out of range");
  return shape_[axis];
}

float& Tensor::at2(std::size_t row, std::size_t col) {
  if (rank() != 2) throw std::invalid_argument("tensor: at2 needs rank 2, have " + shape_string());
  TFL_CHECK(row < shape_[0] && col < shape_[1],
            "index (", row, ", ", col, ") outside ", shape_string());
  return data_[row * shape_[1] + col];
}

float Tensor::at2(std::size_t row, std::size_t col) const {
  if (rank() != 2) throw std::invalid_argument("tensor: at2 needs rank 2, have " + shape_string());
  TFL_CHECK(row < shape_[0] && col < shape_[1],
            "index (", row, ", ", col, ") outside ", shape_string());
  return data_[row * shape_[1] + col];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  if (rank() != 4) throw std::invalid_argument("tensor: at4 needs rank 4, have " + shape_string());
  TFL_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
            "index (", n, ", ", c, ", ", h, ", ", w, ") outside ", shape_string());
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  if (rank() != 4) throw std::invalid_argument("tensor: at4 needs rank 4, have " + shape_string());
  TFL_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
            "index (", n, ", ", c, ", ", h, ", ", w, ") outside ", shape_string());
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::fill(float value) {
  for (float& x : data_) x = value;
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (element_count(new_shape) != data_.size()) {
    throw std::invalid_argument("tensor: reshape element count mismatch");
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::add_scaled(const Tensor& other, float factor) {
  if (!same_shape(other)) throw std::invalid_argument("tensor: add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += factor * other.data_[i];
}

void Tensor::scale(float factor) {
  for (float& x : data_) x *= factor;
}

float Tensor::sum() const {
  double total = 0.0;
  for (float x : data_) total += static_cast<double>(x);
  return static_cast<float>(total);
}

float Tensor::max_abs() const {
  float best = 0.0f;
  for (float x : data_) best = std::max(best, std::abs(x));
  return best;
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << 'x';
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace tradefl::fl
