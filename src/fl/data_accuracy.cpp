#include "fl/data_accuracy.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/logging.h"

namespace tradefl::fl {

DataAccuracyCurve measure_data_accuracy(ModelKind model, DatasetKind dataset,
                                        const DataAccuracyOptions& options) {
  if (options.org_count < 2) throw std::invalid_argument("data_accuracy: need >= 2 orgs");
  if (options.d_grid.empty()) throw std::invalid_argument("data_accuracy: empty d grid");

  DataAccuracyCurve curve;
  curve.model = model;
  curve.dataset = dataset;

  // Shared concept seed: every shard and the test set describe the SAME task.
  const DatasetSpec concept_spec = DatasetSpec::builtin(dataset, options.seed);
  const DatasetSpec test_spec = concept_spec.with_sample_seed(options.seed + 999);
  const Dataset test_set(test_spec, options.test_samples);

  ModelSpec model_spec;
  model_spec.kind = model;
  model_spec.channels = test_spec.channels;
  model_spec.height = test_spec.height;
  model_spec.width = test_spec.width;
  model_spec.classes = test_spec.classes;
  model_spec.seed = options.seed;

  // Untrained accuracy: the freshly initialized global model.
  {
    Net untrained = build_model(model_spec);
    curve.untrained_accuracy = evaluate(untrained, test_set).accuracy;
  }

  // Per-organization local datasets (i.i.d. shards, footnote 4).
  std::vector<Dataset> locals;
  locals.reserve(options.org_count);
  for (std::size_t org = 0; org < options.org_count; ++org) {
    locals.emplace_back(concept_spec.with_sample_seed(options.seed + org + 1),
                        options.samples_per_org);
  }

  const std::size_t replications = std::max<std::size_t>(1, options.replications);
  for (double d : options.d_grid) {
    DataAccuracyPoint point;
    point.d = d;
    for (std::size_t rep = 0; rep < replications; ++rep) {
      std::vector<FedClient> clients;
      clients.reserve(options.org_count);
      for (std::size_t org = 0; org < options.org_count; ++org) {
        FedClient client;
        client.data = &locals[org];
        client.fraction = org == 0 ? d : options.others_fraction;
        client.seed = options.seed * 31 + org + rep * 1009;
        clients.push_back(client);
      }
      ModelSpec rep_spec = model_spec;
      rep_spec.seed = options.seed + rep * 7919;
      FedAvgOptions rep_options = options.fedavg;
      rep_options.shuffle_seed += rep;
      const FedAvgResult trained = train_fedavg(rep_spec, clients, test_set, rep_options);
      point.omega_samples += static_cast<double>(trained.total_contributed_samples);
      point.accuracy += trained.final_accuracy;
    }
    point.omega_samples /= static_cast<double>(replications);
    point.accuracy /= static_cast<double>(replications);
    point.performance = point.accuracy - curve.untrained_accuracy;
    curve.points.push_back(point);
    TFL_DEBUG << "data_accuracy " << model_name(model) << "/" << dataset_name(dataset)
              << " d=" << d << " acc=" << point.accuracy;
  }

  std::vector<double> xs, ys;
  for (const auto& point : curve.points) {
    xs.push_back(point.omega_samples);
    ys.push_back(point.performance);
  }
  curve.fit = fit_sqrt_saturation(xs, ys);
  // Accuracy measurements carry sampling noise of order 1/sqrt(test set);
  // allow that much slack when checking Eq. (5) empirically.
  const double tol = 2.0 / std::sqrt(static_cast<double>(options.test_samples));
  std::vector<double> ds;
  for (const auto& point : curve.points) ds.push_back(point.d);
  curve.shape = check_monotone_concave(ds, ys, tol);
  return curve;
}

game::AccuracyModelPtr empirical_accuracy_model(const DataAccuracyCurve& curve, double a0) {
  return std::make_shared<const game::EmpiricalAccuracyModel>(curve.fit, a0);
}

}  // namespace tradefl::fl
