#include "fl/optimizer.h"

#include <stdexcept>

namespace tradefl::fl {

Sgd::Sgd(SgdOptions options) : options_(options) {
  if (options_.learning_rate <= 0.0) throw std::invalid_argument("sgd: lr must be > 0");
  if (options_.momentum < 0.0 || options_.momentum >= 1.0) {
    throw std::invalid_argument("sgd: momentum must be in [0, 1)");
  }
  if (options_.weight_decay < 0.0) throw std::invalid_argument("sgd: weight_decay must be >= 0");
}

void Sgd::step(const std::vector<Param*>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.assign(params.size(), {});
    for (std::size_t p = 0; p < params.size(); ++p) {
      velocity_[p].assign(params[p]->value.size(), 0.0f);
    }
  }
  const float lr = static_cast<float>(options_.learning_rate);
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);
  for (std::size_t p = 0; p < params.size(); ++p) {
    Param& param = *params[p];
    if (velocity_[p].size() != param.value.size()) {
      throw std::invalid_argument("sgd: parameter shape changed between steps");
    }
    for (std::size_t i = 0; i < param.value.size(); ++i) {
      const float g = param.grad[i] + wd * param.value[i];
      velocity_[p][i] = mu * velocity_[p][i] + g;
      param.value[i] -= lr * velocity_[p][i];
    }
  }
}

void Sgd::reset() { velocity_.clear(); }

}  // namespace tradefl::fl
