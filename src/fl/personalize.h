// Personalization — the paper's stated future work (Sec. VII: "we will
// further consider personalizing the global model assigned to organizations
// to meet their individual needs"). Implemented as local fine-tuning: each
// organization copies the trained global weights and continues SGD on its own
// contributed subset, yielding a per-organization model that trades global
// generalization for local fit.
#pragma once

#include "fl/fedavg.h"

namespace tradefl::fl {

struct PersonalizeOptions {
  std::size_t epochs = 2;        // local fine-tuning passes
  std::size_t batch_size = 32;
  SgdOptions sgd{0.005, 0.9, 1e-4};  // gentler than global training
  std::uint64_t shuffle_seed = 17;
};

struct PersonalizedModel {
  std::size_t client_index = 0;
  std::vector<float> weights;
  double local_accuracy = 0.0;   // on the client's own (held-in) data
  double global_accuracy = 0.0;  // on the shared test set
};

struct PersonalizeResult {
  std::vector<PersonalizedModel> models;
  double mean_local_accuracy = 0.0;
  double mean_global_accuracy = 0.0;
  double global_model_accuracy = 0.0;  // un-personalized baseline on the test set
};

/// Fine-tunes the trained global model (from `federated.final_weights`) for
/// every client with a non-empty contribution. Clients with zero contributed
/// samples keep the plain global model (they could not personalize — and per
/// Sec. III-A they would not have received the model at all).
PersonalizeResult personalize(const ModelSpec& model_spec,
                              const FedAvgResult& federated,
                              const std::vector<FedClient>& clients,
                              const Dataset& test_set,
                              const PersonalizeOptions& options = {});

}  // namespace tradefl::fl
