#include "fl/fedavg.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "fl/loss.h"
#include "obs/obs.h"

namespace tradefl::fl {

EvalResult evaluate(Net& net, const Dataset& data, std::size_t batch_size) {
  EvalResult result;
  std::size_t correct = 0;
  double loss_sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(data.size(), start + batch_size);
    std::vector<std::size_t> indices;
    indices.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) indices.push_back(i);
    const Tensor logits = net.forward(data.batch(indices), /*training=*/false);
    const LossResult loss = softmax_cross_entropy(logits, data.batch_labels(indices));
    loss_sum += loss.mean_loss * static_cast<double>(indices.size());
    correct += loss.correct;
    counted += indices.size();
  }
  result.loss = loss_sum / static_cast<double>(counted);
  result.accuracy = static_cast<double>(correct) / static_cast<double>(counted);
  return result;
}

namespace {

/// Trains `net` (already loaded with the global weights) on the client's
/// contributed subset; returns the mean batch loss observed.
double train_local(Net& net, const Dataset& data, const std::vector<std::size_t>& contributed,
                   const FedAvgOptions& options, Rng& shuffle_rng) {
  Sgd optimizer(options.sgd);
  double loss_sum = 0.0;
  std::size_t batches = 0;
  for (std::size_t epoch = 0; epoch < options.local_epochs; ++epoch) {
    // Epoch-local shuffle of the contributed subset.
    std::vector<std::size_t> order = contributed;
    const std::vector<std::size_t> shuffle = shuffle_rng.permutation(order.size());
    std::vector<std::size_t> shuffled(order.size());
    for (std::size_t i = 0; i < order.size(); ++i) shuffled[i] = order[shuffle[i]];

    std::size_t epoch_batches = 0;
    for (std::size_t start = 0; start < shuffled.size(); start += options.batch_size) {
      if (options.max_batches_per_epoch > 0 &&
          epoch_batches >= options.max_batches_per_epoch) {
        break;
      }
      const std::size_t end = std::min(shuffled.size(), start + options.batch_size);
      std::vector<std::size_t> indices(shuffled.begin() + static_cast<std::ptrdiff_t>(start),
                                       shuffled.begin() + static_cast<std::ptrdiff_t>(end));
      net.zero_grad();
      const Tensor logits = net.forward(data.batch(indices), /*training=*/true);
      const LossResult loss = softmax_cross_entropy(logits, data.batch_labels(indices));
      net.backward(loss.grad);
      optimizer.step(net.parameters());
      loss_sum += loss.mean_loss;
      ++batches;
      ++epoch_batches;
    }
  }
  return batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
}

}  // namespace

FedAvgResult train_fedavg(const ModelSpec& model_spec, const std::vector<FedClient>& clients,
                          const Dataset& test_set, const FedAvgOptions& options) {
  TFL_SPAN("fedavg.train");
  if (clients.empty()) throw std::invalid_argument("fedavg: need >= 1 client");
  if (options.rounds == 0) throw std::invalid_argument("fedavg: need >= 1 round");
  if (options.batch_size == 0) throw std::invalid_argument("fedavg: batch_size must be >= 1");

  // Pre-select each client's contributed subset (fixed across rounds: the
  // organization commits d_i |S_i| samples for the whole training run).
  std::vector<std::vector<std::size_t>> subsets(clients.size());
  FedAvgResult result;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    if (clients[c].data == nullptr) throw std::invalid_argument("fedavg: null client dataset");
    if (clients[c].fraction > 0.0) {
      subsets[c] = contributed_indices(*clients[c].data, clients[c].fraction, clients[c].seed);
    }
    result.total_contributed_samples += subsets[c].size();
  }
  if (result.total_contributed_samples == 0) {
    throw std::invalid_argument("fedavg: no client contributes any data");
  }

  Net global = build_model(model_spec);
  std::vector<float> global_weights = global.weights();
  Net worker = build_model(model_spec);  // reused for every client's local pass
  Rng shuffle_rng(options.shuffle_seed);

  for (std::size_t round = 1; round <= options.rounds; ++round) {
    TFL_SPAN("fedavg.round");
    std::vector<double> aggregate(global_weights.size(), 0.0);
    double weight_total = 0.0;
    double train_loss_sum = 0.0;
    std::size_t participants = 0;

    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (subsets[c].empty()) continue;
      worker.set_weights(global_weights);
      double local_loss = 0.0;
      {
        TFL_SCOPED_TIMER("fl.local_train.seconds");
        local_loss = train_local(worker, *clients[c].data, subsets[c], options, shuffle_rng);
      }
      // Aggregation weight per Eq. (3): proportional to contributed samples
      // d_i |S_i| (normalized below so the weights sum to one).
      const double weight = static_cast<double>(subsets[c].size());
      const std::vector<float> local_weights = worker.weights();
      for (std::size_t i = 0; i < aggregate.size(); ++i) {
        aggregate[i] += weight * static_cast<double>(local_weights[i]);
      }
      weight_total += weight;
      train_loss_sum += local_loss;
      ++participants;
    }

    {
      TFL_SCOPED_TIMER("fl.aggregate.seconds");
      for (std::size_t i = 0; i < global_weights.size(); ++i) {
        global_weights[i] = static_cast<float>(aggregate[i] / weight_total);
      }
      global.set_weights(global_weights);
    }
    TFL_COUNTER_INC("fl.rounds.count");
    TFL_COUNTER_ADD("fl.clients.participating", participants);

    EvalResult eval;
    {
      TFL_SCOPED_TIMER("fl.eval.seconds");
      eval = evaluate(global, test_set);
    }
    TFL_SERIES_APPEND("fl.accuracy.trajectory", eval.accuracy);
    RoundMetrics metrics;
    metrics.round = round;
    metrics.train_loss = participants == 0 ? 0.0
                                           : train_loss_sum / static_cast<double>(participants);
    metrics.test_loss = eval.loss;
    metrics.test_accuracy = eval.accuracy;
    result.history.push_back(metrics);
    TFL_DEBUG << "fedavg round " << round << ": test acc " << eval.accuracy << ", loss "
              << eval.loss;
  }

  result.final_accuracy = result.history.back().test_accuracy;
  result.final_loss = result.history.back().test_loss;
  result.final_weights = std::move(global_weights);
  return result;
}

}  // namespace tradefl::fl
