#include "fl/fedavg.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/snapshot.h"
#include "fl/loss.h"
#include "obs/obs.h"

namespace tradefl::fl {

EvalResult evaluate(Net& net, const Dataset& data, std::size_t batch_size) {
  if (batch_size == 0) throw std::invalid_argument("evaluate: batch_size must be >= 1");
  EvalResult result;
  // Batches are independent eval forwards (the layers write no state when
  // training == false), so they fan out over the pool; per-batch results land
  // in indexed slots and are folded serially in batch order, keeping the
  // float summation identical at any thread count.
  const std::size_t batches = chunk_count(data.size(), batch_size);
  std::vector<double> batch_loss(batches, 0.0);
  std::vector<std::size_t> batch_correct(batches, 0);
  ThreadPool* pool = global_pool();
  TFL_GAUGE_SET("parallel.queue.depth", pool == nullptr ? 0 : batches);
  run_chunks(pool, batches, [&](std::size_t b, std::size_t) {
    const std::size_t start = b * batch_size;
    const std::size_t count = std::min(data.size() - start, batch_size);
    const Tensor logits = net.forward(data.batch_range(start, count), /*training=*/false);
    const LossResult loss = softmax_cross_entropy(logits, data.labels().data() + start, count);
    batch_loss[b] = loss.mean_loss * static_cast<double>(count);
    batch_correct[b] = loss.correct;
  });
  double loss_sum = 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    loss_sum += batch_loss[b];
    correct += batch_correct[b];
  }
  result.loss = loss_sum / static_cast<double>(data.size());
  result.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
  return result;
}

namespace {

/// Trains `net` (already loaded with the global weights) on the client's
/// contributed subset; returns the mean batch loss observed. `shuffle_rng`
/// is the client's private stream, so local schedules are independent of how
/// clients interleave across threads.
double train_local(Net& net, const Dataset& data, const std::vector<std::size_t>& contributed,
                   const FedAvgOptions& options, Rng& shuffle_rng) {
  Sgd optimizer(options.sgd);
  double loss_sum = 0.0;
  std::size_t batches = 0;
  // Epoch order and label buffers are reused across epochs/batches: the seed
  // rebuilt three vectors per epoch plus one per batch, which dominated the
  // allocator profile of small-model rounds.
  std::vector<std::size_t> shuffled = contributed;
  std::vector<std::size_t> labels;
  for (std::size_t epoch = 0; epoch < options.local_epochs; ++epoch) {
    shuffle_rng.shuffle(shuffled);

    std::size_t epoch_batches = 0;
    for (std::size_t start = 0; start < shuffled.size(); start += options.batch_size) {
      if (options.max_batches_per_epoch > 0 &&
          epoch_batches >= options.max_batches_per_epoch) {
        break;
      }
      const std::size_t end = std::min(shuffled.size(), start + options.batch_size);
      const std::size_t count = end - start;
      net.zero_grad();
      const Tensor logits =
          net.forward(data.batch_span(shuffled.data() + start, count), /*training=*/true);
      data.batch_labels_into(shuffled.data() + start, count, labels);
      const LossResult loss = softmax_cross_entropy(logits, labels.data(), count);
      net.backward(loss.grad);
      optimizer.step(net.parameters());
      loss_sum += loss.mean_loss;
      ++batches;
      ++epoch_batches;
    }
  }
  return batches == 0 ? 0.0 : loss_sum / static_cast<double>(batches);
}

// ----- checkpointing -----

// v2: aggregator spec joined the fingerprint; round metrics and result carry
// the robust-aggregation fields (attacked/rejected/clipped/influence).
constexpr std::uint32_t kFedAvgSnapshotVersion = 2;
constexpr const char* kFedAvgSnapshotKind = "fl.fedavg";

}  // namespace

void put_round_metrics(SnapshotWriter& writer, const RoundMetrics& metrics) {
  writer.put_u64(metrics.round);
  writer.put_f64(metrics.train_loss);
  writer.put_f64(metrics.test_loss);
  writer.put_f64(metrics.test_accuracy);
  writer.put_u64(metrics.participants);
  writer.put_u64(metrics.dropped);
  writer.put_u64(metrics.quarantined);
  writer.put_bool(metrics.skipped);
  writer.put_u64(metrics.attacked);
  writer.put_u64(metrics.rejected);
  writer.put_u64(metrics.clipped);
  writer.put_f64(metrics.attacker_influence);
}

RoundMetrics get_round_metrics(SnapshotReader& reader) {
  RoundMetrics metrics;
  metrics.round = static_cast<std::size_t>(reader.get_u64());
  metrics.train_loss = reader.get_f64();
  metrics.test_loss = reader.get_f64();
  metrics.test_accuracy = reader.get_f64();
  metrics.participants = static_cast<std::size_t>(reader.get_u64());
  metrics.dropped = static_cast<std::size_t>(reader.get_u64());
  metrics.quarantined = static_cast<std::size_t>(reader.get_u64());
  metrics.skipped = reader.get_bool();
  metrics.attacked = static_cast<std::size_t>(reader.get_u64());
  metrics.rejected = static_cast<std::size_t>(reader.get_u64());
  metrics.clipped = static_cast<std::size_t>(reader.get_u64());
  metrics.attacker_influence = reader.get_f64();
  return metrics;
}

void put_fedavg_result(SnapshotWriter& writer, const FedAvgResult& result) {
  writer.put_u64(result.history.size());
  for (const RoundMetrics& metrics : result.history) put_round_metrics(writer, metrics);
  writer.put_f64(result.final_accuracy);
  writer.put_f64(result.final_loss);
  writer.put_u64(result.total_contributed_samples);
  writer.put_f32s(result.final_weights);
  writer.put_u64(result.rounds_skipped);
  writer.put_u64(result.total_dropped);
  writer.put_u64(result.total_quarantined);
  writer.put_u64(result.total_attacked);
  writer.put_u64(result.total_rejected);
  writer.put_u64(result.total_clipped);
  writer.put_f64s(result.client_influence);
  writer.put_u64s(result.client_rejected);
}

FedAvgResult get_fedavg_result(SnapshotReader& reader) {
  FedAvgResult result;
  const std::uint64_t history_count = reader.get_u64();
  for (std::uint64_t i = 0; i < history_count; ++i) {
    result.history.push_back(get_round_metrics(reader));
  }
  result.final_accuracy = reader.get_f64();
  result.final_loss = reader.get_f64();
  result.total_contributed_samples = static_cast<std::size_t>(reader.get_u64());
  result.final_weights = reader.get_f32s();
  result.rounds_skipped = static_cast<std::size_t>(reader.get_u64());
  result.total_dropped = static_cast<std::size_t>(reader.get_u64());
  result.total_quarantined = static_cast<std::size_t>(reader.get_u64());
  result.total_attacked = static_cast<std::size_t>(reader.get_u64());
  result.total_rejected = static_cast<std::size_t>(reader.get_u64());
  result.total_clipped = static_cast<std::size_t>(reader.get_u64());
  result.client_influence = reader.get_f64s();
  result.client_rejected = reader.get_u64s();
  return result;
}

namespace {

/// The bits a resumed run must see exactly as the interrupted run left them.
struct FedAvgCheckpoint {
  // Fingerprint: a snapshot resumed under a different configuration would
  // silently train a different experiment, so mismatches fail closed.
  std::uint64_t client_count = 0;
  std::uint64_t weight_count = 0;
  std::uint64_t shuffle_seed = 0;
  std::uint64_t contributed_samples = 0;
  AggregatorSpec aggregator{};

  std::uint64_t round_completed = 0;
  std::vector<float> global_weights;
  std::vector<Rng::State> rng_states;
  std::vector<RoundMetrics> history;
  std::uint64_t rounds_skipped = 0;
  std::uint64_t total_dropped = 0;
  std::uint64_t total_quarantined = 0;
  std::uint64_t total_attacked = 0;
  std::uint64_t total_rejected = 0;
  std::uint64_t total_clipped = 0;
  // Raw per-client influence sums (normalized to means only in the final
  // result), so a resumed run keeps accumulating bit-identically.
  std::vector<double> influence_sums;
  std::vector<std::uint64_t> client_rejected;
};

Result<std::size_t> write_fedavg_checkpoint(const std::string& path,
                                            const FedAvgCheckpoint& state) {
  SnapshotWriter writer;
  writer.put_u64(state.client_count);
  writer.put_u64(state.weight_count);
  writer.put_u64(state.shuffle_seed);
  writer.put_u64(state.contributed_samples);
  put_aggregator_spec(writer, state.aggregator);
  writer.put_u64(state.round_completed);
  writer.put_f32s(state.global_weights);
  writer.put_u64(state.rng_states.size());
  for (const Rng::State& rng : state.rng_states) {
    for (std::uint64_t word : rng) writer.put_u64(word);
  }
  writer.put_u64(state.history.size());
  for (const RoundMetrics& metrics : state.history) put_round_metrics(writer, metrics);
  writer.put_u64(state.rounds_skipped);
  writer.put_u64(state.total_dropped);
  writer.put_u64(state.total_quarantined);
  writer.put_u64(state.total_attacked);
  writer.put_u64(state.total_rejected);
  writer.put_u64(state.total_clipped);
  writer.put_f64s(state.influence_sums);
  writer.put_u64s(state.client_rejected);
  return write_snapshot_file(path, kFedAvgSnapshotKind, kFedAvgSnapshotVersion, writer);
}

Result<FedAvgCheckpoint> read_fedavg_checkpoint(const std::string& path) {
  auto payload = read_snapshot_file(path, kFedAvgSnapshotKind, kFedAvgSnapshotVersion);
  if (!payload.ok()) return payload.error();
  return decode_snapshot<FedAvgCheckpoint>(payload.value(), [](SnapshotReader& reader) {
    FedAvgCheckpoint state;
    state.client_count = reader.get_u64();
    state.weight_count = reader.get_u64();
    state.shuffle_seed = reader.get_u64();
    state.contributed_samples = reader.get_u64();
    state.aggregator = get_aggregator_spec(reader);
    state.round_completed = reader.get_u64();
    state.global_weights = reader.get_f32s();
    const std::uint64_t rng_count = reader.get_u64();
    for (std::uint64_t i = 0; i < rng_count; ++i) {
      Rng::State rng{};
      for (std::uint64_t& word : rng) word = reader.get_u64();
      state.rng_states.push_back(rng);
    }
    const std::uint64_t history_count = reader.get_u64();
    for (std::uint64_t i = 0; i < history_count; ++i) {
      state.history.push_back(get_round_metrics(reader));
    }
    state.rounds_skipped = reader.get_u64();
    state.total_dropped = reader.get_u64();
    state.total_quarantined = reader.get_u64();
    state.total_attacked = reader.get_u64();
    state.total_rejected = reader.get_u64();
    state.total_clipped = reader.get_u64();
    state.influence_sums = reader.get_f64s();
    state.client_rejected = reader.get_u64s();
    return state;
  });
}

[[noreturn]] void fail_resume(const char* pipeline, const Error& error) {
  throw std::runtime_error(std::string(pipeline) + " resume failed closed [" + error.code +
                           "]: " + error.message);
}

}  // namespace

FedAvgResult train_fedavg(const ModelSpec& model_spec, const std::vector<FedClient>& clients,
                          const Dataset& test_set, const FedAvgOptions& options) {
  TFL_SPAN("fedavg.train");
  if (clients.empty()) throw std::invalid_argument("fedavg: need >= 1 client");
  if (options.rounds == 0) throw std::invalid_argument("fedavg: need >= 1 round");
  if (options.batch_size == 0) throw std::invalid_argument("fedavg: batch_size must be >= 1");

  // Pre-select each client's contributed subset (fixed across rounds: the
  // organization commits d_i |S_i| samples for the whole training run).
  std::vector<std::vector<std::size_t>> subsets(clients.size());
  FedAvgResult result;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    if (clients[c].data == nullptr) throw std::invalid_argument("fedavg: null client dataset");
    if (clients[c].fraction > 0.0) {
      subsets[c] = contributed_indices(*clients[c].data, clients[c].fraction, clients[c].seed);
    }
    result.total_contributed_samples += subsets[c].size();
  }
  if (result.total_contributed_samples == 0) {
    throw std::invalid_argument("fedavg: no client contributes any data");
  }

  Net global = build_model(model_spec);
  std::vector<float> global_weights = global.weights();

  ThreadPool* pool = global_pool();
  const std::size_t workers = pool == nullptr ? 1 : pool->size();
  TFL_GAUGE_SET("parallel.pool.size", workers);

  // One scratch net per pool worker: run_chunks assigns client c to worker
  // c % workers, so each net is only ever touched by one thread at a time.
  std::vector<Net> worker_nets;
  worker_nets.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) worker_nets.push_back(build_model(model_spec));

  // Per-client shuffle streams derived statelessly from the shared seed:
  // client c's epoch orders depend only on (shuffle_seed, c), never on which
  // thread ran it or which clients ran before it. Streams persist across
  // rounds, matching the serial semantics of one long-lived RNG per client.
  std::vector<Rng> client_rngs;
  client_rngs.reserve(clients.size());
  for (std::size_t c = 0; c < clients.size(); ++c) {
    client_rngs.emplace_back(Rng::derive_stream_seed(options.shuffle_seed, c));
  }

  const FaultInjector* faults =
      (options.faults != nullptr && options.faults->enabled()) ? options.faults : nullptr;
  const std::size_t quorum = std::max<std::size_t>(options.quorum, 1);

  // Per-client influence bookkeeping for the deviation audit: raw sums here,
  // normalized to per-round means only once training finishes.
  std::vector<double> influence_sums(clients.size(), 0.0);
  std::vector<std::uint64_t> client_rejected(clients.size(), 0);

  // Resume: restore the completed-round state exactly. The contributed
  // subsets are re-derived above (pure functions of the client seeds), so the
  // snapshot only needs weights + RNG words + metric history.
  std::size_t first_round = 1;
  if (options.resume && !options.checkpoint_path.empty() &&
      snapshot_exists(options.checkpoint_path)) {
    auto loaded = read_fedavg_checkpoint(options.checkpoint_path);
    if (!loaded.ok()) fail_resume("fedavg", loaded.error());
    FedAvgCheckpoint& state = loaded.value();
    if (state.client_count != clients.size() || state.weight_count != global_weights.size() ||
        state.shuffle_seed != options.shuffle_seed ||
        state.contributed_samples != result.total_contributed_samples) {
      fail_resume("fedavg", Error{"snapshot.mismatch",
                                  options.checkpoint_path +
                                      " was written by a differently-configured run"});
    }
    if (state.aggregator != options.aggregator) {
      fail_resume("fedavg",
                  Error{"snapshot.mismatch",
                        options.checkpoint_path + " was written under aggregator '" +
                            state.aggregator.spec_string() + "', this run requests '" +
                            options.aggregator.spec_string() + "'"});
    }
    if (state.rng_states.size() != clients.size() ||
        state.influence_sums.size() != clients.size() ||
        state.client_rejected.size() != clients.size()) {
      fail_resume("fedavg",
                  Error{"snapshot.mismatch", "per-client state count does not match"});
    }
    global_weights = std::move(state.global_weights);
    global.set_weights(global_weights);
    for (std::size_t c = 0; c < clients.size(); ++c) client_rngs[c].restore(state.rng_states[c]);
    result.history = std::move(state.history);
    result.rounds_skipped = static_cast<std::size_t>(state.rounds_skipped);
    result.total_dropped = static_cast<std::size_t>(state.total_dropped);
    result.total_quarantined = static_cast<std::size_t>(state.total_quarantined);
    result.total_attacked = static_cast<std::size_t>(state.total_attacked);
    result.total_rejected = static_cast<std::size_t>(state.total_rejected);
    result.total_clipped = static_cast<std::size_t>(state.total_clipped);
    influence_sums = std::move(state.influence_sums);
    client_rejected = std::move(state.client_rejected);
    first_round = static_cast<std::size_t>(state.round_completed) + 1;
    TFL_COUNTER_INC("snapshot.resumes");
    TFL_INFO << "fedavg resumed at round " << first_round << " from "
             << options.checkpoint_path;
  }

  const auto checkpoint_now = [&](std::size_t round_completed) {
    if (options.checkpoint_path.empty()) return;
    const std::size_t every = std::max<std::size_t>(options.checkpoint_every, 1);
    if (round_completed % every != 0 && round_completed != options.rounds) return;
    FedAvgCheckpoint state;
    state.client_count = clients.size();
    state.weight_count = global_weights.size();
    state.shuffle_seed = options.shuffle_seed;
    state.contributed_samples = result.total_contributed_samples;
    state.aggregator = options.aggregator;
    state.round_completed = round_completed;
    state.global_weights = global_weights;
    for (const Rng& rng : client_rngs) state.rng_states.push_back(rng.state());
    state.history = result.history;
    state.rounds_skipped = result.rounds_skipped;
    state.total_dropped = result.total_dropped;
    state.total_quarantined = result.total_quarantined;
    state.total_attacked = result.total_attacked;
    state.total_rejected = result.total_rejected;
    state.total_clipped = result.total_clipped;
    state.influence_sums = influence_sums;
    state.client_rejected = client_rejected;
    const auto written = write_fedavg_checkpoint(options.checkpoint_path, state);
    if (!written.ok()) {
      throw std::runtime_error("fedavg checkpoint write failed [" + written.error().code +
                               "]: " + written.error().message);
    }
    TFL_COUNTER_INC("snapshot.writes");
    TFL_COUNTER_ADD("snapshot.bytes", written.value());
  };

  for (std::size_t round = first_round; round <= options.rounds; ++round) {
    TFL_SPAN("fedavg.round");
    check_cancelled(options.cancel);
    // Injected crashes fire at the top of a round: everything up to and
    // including the previous checkpoint is durable, everything since is the
    // loss the resume path must reconstruct.
    crash_if_scheduled(faults, round);
    std::vector<double> local_losses(clients.size(), 0.0);
    std::vector<std::vector<float>> local_weights(clients.size());

    // The round's fault schedule is decided serially up front: every drop /
    // straggle / corruption is a pure function of (plan, round, client), so
    // the same plan replays identically at any thread count.
    std::vector<std::uint8_t> excluded(clients.size(), 0);
    std::vector<CorruptionSpec> corruption(clients.size());
    std::vector<AttackSpec> attacks(clients.size());
    std::size_t dropped = 0;
    std::size_t attacked = 0;
    if (faults != nullptr) {
      for (std::size_t c = 0; c < clients.size(); ++c) {
        if (subsets[c].empty()) continue;
        if (faults->drop_client(round, c)) {
          excluded[c] = 1;
          ++dropped;
          TFL_COUNTER_INC("fault.injected.dropout");
          continue;
        }
        const double scale = faults->straggler_scale(round, c);
        if (scale > 1.0) {
          TFL_COUNTER_INC("fault.injected.straggler");
          if (options.straggler_cutoff > 0.0 && scale >= options.straggler_cutoff) {
            // Missed the round deadline τ: synchronous FedAvg aggregates
            // without this client (same Eq. (3) renormalization as dropout).
            excluded[c] = 1;
            ++dropped;
            continue;
          }
        }
        corruption[c] = faults->corrupt_update(round, c);
        if (corruption[c].corrupt) TFL_COUNTER_INC("fault.injected.corruption");
        // Adversarial behaviour is decided at this serial point like every
        // other fault; the parallel loop below only applies the stored spec.
        attacks[c] = faults->attack_update(round, c);
        if (attacks[c].attack) {
          ++attacked;
          switch (attacks[c].kind) {
            case FaultKind::kSignFlip: TFL_COUNTER_INC("fault.injected.signflip"); break;
            case FaultKind::kScaleAttack: TFL_COUNTER_INC("fault.injected.scale_attack"); break;
            case FaultKind::kFreeRide: TFL_COUNTER_INC("fault.injected.freeride"); break;
            case FaultKind::kCollude: TFL_COUNTER_INC("fault.injected.collude"); break;
            default: break;
          }
        }
      }
    }

    {
      TFL_SCOPED_TIMER("fl.local_train.seconds");
      TFL_GAUGE_SET("parallel.queue.depth", pool == nullptr ? 0 : clients.size());
      run_chunks(pool, clients.size(), [&](std::size_t c, std::size_t w) {
        if (subsets[c].empty() || excluded[c] != 0) return;
        Net& net = worker_nets[w];
        net.set_weights(global_weights);
        local_losses[c] = train_local(net, *clients[c].data, subsets[c], options, client_rngs[c]);
        local_weights[c] = net.weights();
        // Attacks transform the honest update before any corruption stacks on
        // top: a Byzantine silo still trains (its RNG streams advance
        // identically to truthful play) but submits a crafted vector.
        if (attacks[c].attack) {
          apply_update_attack(local_weights[c], global_weights, attacks[c], *faults, round);
        }
        if (corruption[c].corrupt) {
          if (corruption[c].use_nan) {
            // Poison the update the way a diverged local step would: the
            // aggregation quarantine below must catch and discard it.
            local_weights[c].front() = std::numeric_limits<float>::quiet_NaN();
          } else {
            // Additive noise from the client's private stateless stream.
            Rng noise = faults->corruption_rng(round, c);
            for (float& weight : local_weights[c]) {
              weight += static_cast<float>(noise.normal(0.0, corruption[c].noise_stddev));
            }
          }
        }
      });
    }

    double train_loss_sum = 0.0;
    std::size_t participants = 0;
    std::size_t quarantined = 0;
    std::size_t rejected = 0;
    std::size_t clipped = 0;
    double attacker_influence = 0.0;
    bool skipped = false;
    {
      TFL_SCOPED_TIMER("fl.aggregate.seconds");
      // Survivors collect in fixed client order; the aggregator (default:
      // Eq. (3) weighted mean, bit-identical to the historical fold) then
      // combines them with thread-count-invariant arithmetic. Survivors
      // renormalize the weight sum, so dropouts shift influence, never scale.
      std::vector<ClientUpdate> updates;
      for (std::size_t c = 0; c < clients.size(); ++c) {
        if (local_weights[c].empty()) continue;
        // Quarantine: a non-finite update would poison every aggregated
        // weight through the shared sums, so it is discarded before Eq. (3).
        double finite_probe = 0.0;
        for (const float weight : local_weights[c]) {
          finite_probe += static_cast<double>(weight);
        }
        if (!std::isfinite(finite_probe)) {
          ++quarantined;
          TFL_COUNTER_INC("fl.updates.quarantined");
          continue;
        }
        updates.push_back({&local_weights[c], static_cast<double>(subsets[c].size()), c});
        train_loss_sum += local_losses[c];
        ++participants;
      }
      if (participants < quorum) {
        // Quorum failure: the round is skipped outright — the global model
        // stays put and the (possibly empty) survivor set is discarded, so
        // aggregation never sees a degenerate population.
        skipped = true;
        TFL_COUNTER_INC("fl.rounds.skipped");
        TFL_WARN << "fedavg round " << round << " skipped: " << participants
                 << " survivors below quorum " << quorum;
      } else {
        AggregateOutcome outcome =
            aggregate_updates(options.aggregator, updates, global_weights, pool);
        for (std::size_t k = 0; k < updates.size(); ++k) {
          const std::size_t c = updates[k].client;
          influence_sums[c] += outcome.influence[k];
          if (outcome.influence[k] == 0.0) ++client_rejected[c];
          if (attacks[c].attack) attacker_influence += outcome.influence[k];
        }
        rejected = outcome.rejected;
        clipped = outcome.clipped;
        global_weights = std::move(outcome.weights);
        global.set_weights(global_weights);
      }
    }
    TFL_COUNTER_ADD("fl.agg.rejected", rejected);
    TFL_COUNTER_ADD("fl.agg.clipped", clipped);
    TFL_SERIES_APPEND("fl.agg.influence", attacker_influence);
    TFL_COUNTER_INC("fl.rounds.count");
    TFL_COUNTER_ADD("fl.clients.participating", participants);
    TFL_GAUGE_SET("round.participation", participants);
    TFL_SERIES_APPEND("round.participation", participants);
    // Emitted from this serial point (never inside the parallel client loop)
    // so the run ledger keeps its cross-thread-count byte identity.
    TFL_LEDGER_EVENT("fedavg.round", {"round", static_cast<double>(round)},
                     {"participants", static_cast<double>(participants)});

    EvalResult eval;
    {
      TFL_SCOPED_TIMER("fl.eval.seconds");
      eval = evaluate(global, test_set);
    }
    TFL_SERIES_APPEND("fl.accuracy.trajectory", eval.accuracy);
    RoundMetrics metrics;
    metrics.round = round;
    metrics.train_loss = participants == 0 ? 0.0
                                           : train_loss_sum / static_cast<double>(participants);
    metrics.test_loss = eval.loss;
    metrics.test_accuracy = eval.accuracy;
    metrics.participants = participants;
    metrics.dropped = dropped;
    metrics.quarantined = quarantined;
    metrics.skipped = skipped;
    metrics.attacked = attacked;
    metrics.rejected = rejected;
    metrics.clipped = clipped;
    metrics.attacker_influence = attacker_influence;
    result.history.push_back(metrics);
    result.rounds_skipped += skipped ? 1 : 0;
    result.total_dropped += dropped;
    result.total_quarantined += quarantined;
    result.total_attacked += attacked;
    result.total_rejected += rejected;
    result.total_clipped += clipped;
    checkpoint_now(round);
    TFL_DEBUG << "fedavg round " << round << ": test acc " << eval.accuracy << ", loss "
              << eval.loss;
  }

  if (result.history.empty()) {
    // A fully-resumed run (checkpoint already covers every round) re-executes
    // nothing; the restored history would still be empty only if the snapshot
    // itself recorded zero rounds, which the round loop above makes
    // impossible for a fresh run.
    throw std::runtime_error("fedavg: resume checkpoint holds no completed rounds");
  }
  result.final_accuracy = result.history.back().test_accuracy;
  result.final_loss = result.history.back().test_loss;
  result.final_weights = std::move(global_weights);
  // Normalize influence sums to per-round means over the rounds that actually
  // aggregated (sums of zero stay zero when every round skipped).
  std::size_t aggregated_rounds = 0;
  for (const RoundMetrics& metrics : result.history) {
    if (!metrics.skipped) ++aggregated_rounds;
  }
  result.client_influence.assign(clients.size(), 0.0);
  if (aggregated_rounds > 0) {
    for (std::size_t c = 0; c < clients.size(); ++c) {
      result.client_influence[c] = influence_sums[c] / static_cast<double>(aggregated_rounds);
    }
  }
  result.client_rejected = std::move(client_rejected);
  return result;
}

}  // namespace tradefl::fl
