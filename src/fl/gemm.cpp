#include "fl/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace tradefl::fl {
namespace {

std::atomic<KernelBackend> g_backend{KernelBackend::kGemm};

// k-dimension tile: small enough that a B tile (kTileK rows) stays in L1/L2
// while a chunk of C rows streams over it. Tiles are walked in ascending
// order, so per-element accumulation order stays the plain ascending-k
// sequence regardless of tiling or chunking.
constexpr std::size_t kTileK = 64;

/// Rows-per-chunk for parallelizing an m-row output: aim for ~4 chunks per
/// worker so static round-robin balances without shrinking chunks to
/// cache-hostile slivers. Serial callers get one chunk.
std::size_t row_grain(std::size_t m, ThreadPool* pool) {
  const std::size_t workers = pool == nullptr ? 1 : pool->size();
  if (workers <= 1 || m == 0) return m == 0 ? 1 : m;
  return std::max<std::size_t>(1, (m + workers * 4 - 1) / (workers * 4));
}

void prepare_rows(float* c, std::size_t ldc, std::size_t lo, std::size_t hi, std::size_t n,
                  bool accumulate) {
  if (accumulate) return;
  for (std::size_t i = lo; i < hi; ++i) std::memset(c + i * ldc, 0, n * sizeof(float));
}

}  // namespace

void set_kernel_backend(KernelBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

KernelBackend kernel_backend() { return g_backend.load(std::memory_order_relaxed); }

namespace gemm {

void sgemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, bool accumulate, float* c, std::size_t ldc,
              ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  parallel_for(pool, 0, m, row_grain(m, pool),
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 prepare_rows(c, ldc, lo, hi, n, accumulate);
                 for (std::size_t kb = 0; kb < k; kb += kTileK) {
                   const std::size_t kend = std::min(k, kb + kTileK);
                   for (std::size_t i = lo; i < hi; ++i) {
                     const float* a_row = a + i * lda;
                     float* c_row = c + i * ldc;
                     for (std::size_t kk = kb; kk < kend; ++kk) {
                       const float aik = a_row[kk];
                       const float* b_row = b + kk * ldb;
                       for (std::size_t j = 0; j < n; ++j) c_row[j] += aik * b_row[j];
                     }
                   }
                 }
               });
}

void sgemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, bool accumulate, float* c, std::size_t ldc,
              ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  parallel_for(pool, 0, m, row_grain(m, pool),
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   const float* a_row = a + i * lda;
                   float* c_row = c + i * ldc;
                   for (std::size_t j = 0; j < n; ++j) {
                     const float* b_row = b + j * ldb;
                     // Four-lane dot product: lane partials combine in a fixed
                     // order, so results never depend on the pool size.
                     float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
                     std::size_t kk = 0;
                     for (; kk + 4 <= k; kk += 4) {
                       acc0 += a_row[kk] * b_row[kk];
                       acc1 += a_row[kk + 1] * b_row[kk + 1];
                       acc2 += a_row[kk + 2] * b_row[kk + 2];
                       acc3 += a_row[kk + 3] * b_row[kk + 3];
                     }
                     for (; kk < k; ++kk) acc0 += a_row[kk] * b_row[kk];
                     const float total = (acc0 + acc1) + (acc2 + acc3);
                     c_row[j] = accumulate ? c_row[j] + total : total;
                   }
                 }
               });
}

void sgemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
              const float* b, std::size_t ldb, bool accumulate, float* c, std::size_t ldc,
              ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  parallel_for(pool, 0, m, row_grain(m, pool),
               [&](std::size_t lo, std::size_t hi, std::size_t) {
                 prepare_rows(c, ldc, lo, hi, n, accumulate);
                 for (std::size_t kk = 0; kk < k; ++kk) {
                   const float* a_row = a + kk * lda;
                   const float* b_row = b + kk * ldb;
                   for (std::size_t i = lo; i < hi; ++i) {
                     const float aki = a_row[i];
                     float* c_row = c + i * ldc;
                     for (std::size_t j = 0; j < n; ++j) c_row[j] += aki * b_row[j];
                   }
                 }
               });
}

void im2col(const float* image, const ConvGeom& geom, float* col) {
  const std::size_t plane = geom.in_h * geom.in_w;
  float* out = col;
  for (std::size_t c = 0; c < geom.channels; ++c) {
    const float* channel = image + c * plane;
    for (std::size_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::size_t kx = 0; kx < geom.kernel; ++kx) {
        for (std::size_t oy = 0; oy < geom.out_h; ++oy) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * geom.stride + ky) -
                                    static_cast<std::ptrdiff_t>(geom.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(geom.in_h)) {
            for (std::size_t ox = 0; ox < geom.out_w; ++ox) *out++ = 0.0f;
            continue;
          }
          const float* in_row = channel + static_cast<std::size_t>(iy) * geom.in_w;
          for (std::size_t ox = 0; ox < geom.out_w; ++ox) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * geom.stride + kx) -
                                      static_cast<std::ptrdiff_t>(geom.pad);
            *out++ = (ix < 0 || ix >= static_cast<std::ptrdiff_t>(geom.in_w))
                         ? 0.0f
                         : in_row[static_cast<std::size_t>(ix)];
          }
        }
      }
    }
  }
}

void col2im_add(const float* col, const ConvGeom& geom, float* image) {
  const std::size_t plane = geom.in_h * geom.in_w;
  const float* in = col;
  for (std::size_t c = 0; c < geom.channels; ++c) {
    float* channel = image + c * plane;
    for (std::size_t ky = 0; ky < geom.kernel; ++ky) {
      for (std::size_t kx = 0; kx < geom.kernel; ++kx) {
        for (std::size_t oy = 0; oy < geom.out_h; ++oy) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * geom.stride + ky) -
                                    static_cast<std::ptrdiff_t>(geom.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(geom.in_h)) {
            in += geom.out_w;
            continue;
          }
          float* out_row = channel + static_cast<std::size_t>(iy) * geom.in_w;
          for (std::size_t ox = 0; ox < geom.out_w; ++ox) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * geom.stride + kx) -
                                      static_cast<std::ptrdiff_t>(geom.pad);
            if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(geom.in_w)) {
              out_row[static_cast<std::size_t>(ix)] += *in;
            }
            ++in;
          }
        }
      }
    }
  }
}

}  // namespace gemm
}  // namespace tradefl::fl
