// Stochastic gradient descent with momentum and weight decay — the local
// training rule each organization runs (Sec. III-B, phase 2).
#pragma once

#include <vector>

#include "fl/layers.h"

namespace tradefl::fl {

struct SgdOptions {
  double learning_rate = 0.01;
  double momentum = 0.9;
  double weight_decay = 1e-4;
};

class Sgd {
 public:
  explicit Sgd(SgdOptions options = {});

  /// Applies one update to the given parameters from their .grad members.
  /// Velocity buffers are keyed by position, so pass the same parameter list
  /// every step.
  void step(const std::vector<Param*>& params);

  void reset();

  [[nodiscard]] const SgdOptions& options() const { return options_; }

 private:
  SgdOptions options_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace tradefl::fl
