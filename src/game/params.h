// Global mechanism/game parameters (Table II plus the constants the paper
// uses but does not tabulate). All defaults are calibrated so the default
// 10-organization game lands in the regime of the paper's Figs. 4-12; see
// DESIGN.md §3 and bench_calibration.
#pragma once

#include "common/result.h"
#include "common/types.h"

namespace tradefl::game {

struct GameParams {
  /// Incentive intensity γ — price of compensation per unit of contributed
  /// resource difference (Eq. 9). The paper finds γ* ≈ 5.12e-9 optimal.
  double gamma = 5.12e-9;

  /// λ — scales computational resources f (Hz) into the same magnitude as
  /// data contribution d·s (bits) inside the redistribution rule (Eq. 9).
  double lambda = 2.0;

  /// ϖ_e — weighting factor of the training overhead in the payoff (Eq. 11).
  double omega_e = 0.05;

  /// κ — effective capacitance of the computation chipset (Table II: 1e-27).
  double kappa = 1e-27;

  /// τ — training deadline in seconds (constraint C^(3)).
  Seconds tau = 45.0;

  /// D_min — minimum fraction of local data a participant must contribute.
  double d_min = 0.01;

  /// A(0) — accuracy loss of the untrained model (defines P via Eq. 4).
  double a0 = 0.75;

  /// G — number of training epochs in the accuracy-loss bound (footnote 7).
  double epochs_g = 10.0;

  /// Scale that converts contributed bits into the "effective data" units Ω
  /// fed to the accuracy model (see DESIGN.md §3: raw bits would flatten the
  /// marginal contribution of a single organization to machine epsilon).
  double data_scale = 1e9;

  /// Validates ranges (positivity, d_min in (0,1], ...).
  [[nodiscard]] Status validate() const;
};

}  // namespace tradefl::game
