// Organization (silo) description — the per-player constants of Sec. III-A/B:
// local data size s_i, sample count |S_i|, profitability p_i, compute
// characteristics, and the fixed per-round communication times T^(1), T^(3).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace tradefl::game {

// Re-export the shared aliases so dependents can say game::OrgId etc.
using ::tradefl::Bits;
using ::tradefl::Hertz;
using ::tradefl::Joules;
using ::tradefl::Money;
using ::tradefl::OrgId;
using ::tradefl::Seconds;

struct Organization {
  std::string name;

  /// s_i — size of the local dataset in bits.
  Bits data_size_bits = 20e9;

  /// |S_i| — number of local data samples (used by the FL evaluation).
  std::size_t sample_count = 1500;

  /// p_i — profitability: revenue per unit of global-model performance.
  double profitability = 1500.0;

  /// η_i — CPU cycles required to process one bit of local data.
  double cycles_per_bit = 20.0;

  /// F_i^{(1..m)} — selectable CPU frequency levels in Hz, ascending.
  std::vector<Hertz> freq_levels{3e9, 4e9, 5e9};

  /// T_i^{(1)} / T_i^{(3)} — average model download / upload times (s).
  Seconds download_time = 2.0;
  Seconds upload_time = 2.0;

  /// Energy drawn per second while downloading / uploading (E_DL, E_UL).
  double e_download_per_s = 1.0;
  double e_upload_per_s = 1.0;

  /// T_i^{(2)}(d, f) = η_i d s_i / f — local training time (Eq. 2).
  [[nodiscard]] Seconds local_training_time(double d, Hertz f) const;

  /// Total per-round time T^(1) + T^(2) + T^(3).
  [[nodiscard]] Seconds round_time(double d, Hertz f) const;

  /// E_i^{comm} = E_DL T^(1) + E_UL T^(3) — communication energy (Sec. III-D).
  [[nodiscard]] Joules comm_energy() const;

  /// E_i^{comp}(d, f) = κ f^2 η_i d s_i — computation energy (Sec. III-D).
  [[nodiscard]] Joules comp_energy(double d, Hertz f, double kappa) const;

  /// Largest d meeting the deadline at frequency f: from C^(3),
  /// d <= (τ - T^(1) - T^(3)) f / (η_i s_i). May be < 0 when even d = 0
  /// misses the deadline.
  [[nodiscard]] double max_data_fraction_for_deadline(Hertz f, Seconds tau) const;

  /// Basic sanity checks (positive sizes, ascending frequency levels, ...).
  [[nodiscard]] bool is_valid() const;
};

}  // namespace tradefl::game
