// CoopetitionGame — the non-cooperative game G of Sec. IV-A. Bundles the
// organizations, the competition matrix ρ, the data-accuracy model P, and
// the mechanism parameters, and exposes every economic quantity of
// Sec. III-C–E: revenue, coopetition damage (Eqs. 6-7), training overhead
// (Eq. 8), payoff redistribution (Eqs. 9-10), payoff C_i (Eq. 11), and
// social welfare.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "game/accuracy_model.h"
#include "game/competition.h"
#include "game/org.h"
#include "game/params.h"
#include "game/strategy.h"

namespace tradefl::game {

/// Per-organization payoff decomposition (the four terms of Eq. 11).
struct PayoffBreakdown {
  double revenue = 0.0;         // p_i P(d_i, d_-i)
  double energy_cost = 0.0;     // ϖ_e E_i
  double damage = 0.0;          // D_i(d_i, d_-i)
  double redistribution = 0.0;  // R_i
  [[nodiscard]] double total() const {
    return revenue - energy_cost - damage + redistribution;
  }
};

class CoopetitionGame {
 public:
  CoopetitionGame(std::vector<Organization> orgs, CompetitionMatrix rho,
                  AccuracyModelPtr accuracy, GameParams params);

  [[nodiscard]] std::size_t size() const { return orgs_.size(); }
  [[nodiscard]] const Organization& org(OrgId i) const { return orgs_.at(i); }
  [[nodiscard]] const std::vector<Organization>& orgs() const { return orgs_; }
  [[nodiscard]] const CompetitionMatrix& rho() const { return rho_; }
  [[nodiscard]] const AccuracyModel& accuracy() const { return *accuracy_; }
  [[nodiscard]] const AccuracyModelPtr& accuracy_ptr() const { return accuracy_; }
  [[nodiscard]] const GameParams& params() const { return params_; }

  /// f_i value selected by a strategy.
  [[nodiscard]] Hertz frequency(OrgId i, const Strategy& strategy) const;

  /// Contribution weight w_i = s_i / data_scale: Ω = Σ w_i d_i.
  [[nodiscard]] double contribution_weight(OrgId i) const;

  /// Ω(π) = Σ_i d_i s_i / data_scale — total effective contributed data.
  [[nodiscard]] double omega(const StrategyProfile& profile) const;

  /// Ω with organization `excluded` contributing zero (for P(0, d_-i)).
  [[nodiscard]] double omega_excluding(const StrategyProfile& profile, OrgId excluded) const;

  /// P(d_i, d_-i) — global-model performance at this profile (Eq. 4).
  [[nodiscard]] double performance(const StrategyProfile& profile) const;

  /// p_i P — revenue organization i derives from the global model.
  [[nodiscard]] double revenue(OrgId i, const StrategyProfile& profile) const;

  /// ϖ_j — profit competitor j gains from i's contribution (Eq. 6).
  [[nodiscard]] double competitor_profit(OrgId i, OrgId j, const StrategyProfile& profile) const;

  /// D_i — coopetition damage as the ρ-weighted sum of competitor profits (Eq. 7).
  [[nodiscard]] double damage(OrgId i, const StrategyProfile& profile) const;

  /// E_i — total energy (Eq. 8): κ f² η d s + E_DL T¹ + E_UL T³.
  [[nodiscard]] Joules energy(OrgId i, const StrategyProfile& profile) const;

  /// r_{i,j} — pairwise payoff redistribution (Eq. 9).
  [[nodiscard]] double redistribution_pair(OrgId i, OrgId j, const StrategyProfile& profile) const;

  /// R_i = Σ_j r_{i,j} (Eq. 10).
  [[nodiscard]] double redistribution(OrgId i, const StrategyProfile& profile) const;

  /// Full payoff decomposition of Eq. (11).
  [[nodiscard]] PayoffBreakdown payoff_breakdown(OrgId i, const StrategyProfile& profile) const;

  /// C_i(π_i, π_-i) (Eq. 11).
  [[nodiscard]] double payoff(OrgId i, const StrategyProfile& profile) const;

  /// Σ_i C_i — social welfare.
  [[nodiscard]] double social_welfare(const StrategyProfile& profile) const;

  /// Σ_i D_i — total coopetition damage (Fig. 9's metric).
  [[nodiscard]] double total_damage(const StrategyProfile& profile) const;

  /// Σ_i d_i — total data contribution (Fig. 12's metric).
  [[nodiscard]] double total_data_fraction(const StrategyProfile& profile) const;

  /// Upper bound on d_i at frequency level `freq_index`:
  /// min(1, deadline bound of C^(3)). May be below d_min (infeasible level).
  [[nodiscard]] double data_upper_bound(OrgId i, std::size_t freq_index) const;

  /// Frequency levels of org i that admit some feasible d (bound >= d_min).
  [[nodiscard]] std::vector<std::size_t> feasible_freq_levels(OrgId i) const;

  /// Checks C^(1)-C^(3) for every organization.
  [[nodiscard]] bool is_feasible(const StrategyProfile& profile) const;

  /// Per-org reason string for infeasibility (empty when feasible).
  [[nodiscard]] std::string feasibility_report(const StrategyProfile& profile) const;

  /// z_i = p_i - Σ_j ρ_{i,j} p_j (Theorem 1). Guaranteed positive: the
  /// constructor applies enforce_positive_weights.
  [[nodiscard]] double weight_z(OrgId i) const { return z_.at(i); }
  [[nodiscard]] const std::vector<double>& weights_z() const { return z_; }

  /// Scale that was applied to ρ by the z_i > 0 guard (1.0 if none).
  [[nodiscard]] double rho_guard_scale() const { return rho_guard_scale_; }

  /// Minimal feasible profile: d_i = D_min with the fastest feasible
  /// frequency level. Throws std::runtime_error when some organization has
  /// no feasible level at all.
  [[nodiscard]] StrategyProfile minimal_profile() const;

  /// Verifies the NE condition (Definition 6) by grid search over deviations:
  /// for each org, tries every feasible freq level × `grid` data fractions
  /// plus the continuous best response. Returns the largest payoff gain any
  /// single deviation achieves (<= tol means π is a NE up to tol).
  [[nodiscard]] double max_unilateral_gain(const StrategyProfile& profile,
                                           std::size_t grid = 64) const;

 private:
  std::vector<Organization> orgs_;
  CompetitionMatrix rho_;
  AccuracyModelPtr accuracy_;
  GameParams params_;
  std::vector<double> z_;
  double rho_guard_scale_ = 1.0;
};

}  // namespace tradefl::game
