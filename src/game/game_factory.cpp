#include "game/game_factory.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "common/string_util.h"
#include "math/grid.h"

namespace tradefl::game {

CoopetitionGame make_experiment_game(const ExperimentSpec& spec, std::uint64_t seed) {
  if (spec.org_count == 0) throw std::invalid_argument("experiment: need >= 1 organization");
  Rng rng(seed);
  std::vector<Organization> orgs;
  orgs.reserve(spec.org_count);
  for (std::size_t i = 0; i < spec.org_count; ++i) {
    Organization org;
    org.name = "org-" + std::to_string(i);
    org.data_size_bits = rng.uniform(spec.data_bits_lo, spec.data_bits_hi);
    org.sample_count = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(spec.samples_lo),
                        static_cast<std::int64_t>(spec.samples_hi)));
    org.profitability = rng.uniform(spec.profitability_lo, spec.profitability_hi);
    org.cycles_per_bit = rng.uniform(spec.cycles_per_bit_lo, spec.cycles_per_bit_hi);
    const double f_max = rng.uniform(spec.fmax_lo, spec.fmax_hi);
    org.freq_levels = tradefl::math::linspace(spec.freq_base, f_max, spec.freq_levels);
    org.download_time = rng.uniform(spec.comm_time_lo, spec.comm_time_hi);
    org.upload_time = rng.uniform(spec.comm_time_lo, spec.comm_time_hi);
    org.e_download_per_s = spec.comm_energy_per_s;
    org.e_upload_per_s = spec.comm_energy_per_s;
    orgs.push_back(std::move(org));
  }
  CompetitionMatrix rho =
      CompetitionMatrix::random_symmetric(spec.org_count, spec.rho_mean, rng);
  auto accuracy =
      std::make_shared<const SqrtAccuracyModel>(spec.params.epochs_g, spec.params.a0);
  return CoopetitionGame(std::move(orgs), std::move(rho), std::move(accuracy), spec.params);
}

CoopetitionGame make_default_game(std::uint64_t seed) {
  return make_experiment_game(ExperimentSpec{}, seed);
}

CoopetitionGame make_toy_game(double gamma, double rho_mean) {
  std::vector<Organization> orgs(3);
  orgs[0].name = "alpha";
  orgs[0].data_size_bits = 20e9;
  orgs[0].sample_count = 1500;
  orgs[0].profitability = 2000.0;
  orgs[0].cycles_per_bit = 20.0;
  orgs[1].name = "bravo";
  orgs[1].data_size_bits = 16e9;
  orgs[1].sample_count = 1200;
  orgs[1].profitability = 1200.0;
  orgs[1].cycles_per_bit = 18.0;
  orgs[2].name = "carol";
  orgs[2].data_size_bits = 24e9;
  orgs[2].sample_count = 1800;
  orgs[2].profitability = 900.0;
  orgs[2].cycles_per_bit = 22.0;

  CompetitionMatrix rho(3);
  for (OrgId i = 0; i < 3; ++i) {
    for (OrgId j = 0; j < 3; ++j) {
      if (i != j) rho.set(i, j, rho_mean);
    }
  }
  GameParams params;
  params.gamma = gamma;
  auto accuracy = std::make_shared<const SqrtAccuracyModel>(params.epochs_g, params.a0);
  return CoopetitionGame(std::move(orgs), std::move(rho), std::move(accuracy), params);
}

Result<CoopetitionGame> game_from_config(const Config& config) {
  const std::size_t n = static_cast<std::size_t>(config.get_int("orgs", 0));
  if (n < 2) return Error{"game_config", "need orgs >= 2"};

  GameParams params;
  try {
    params.gamma = config.get_double("gamma", params.gamma);
    params.lambda = config.get_double("lambda", params.lambda);
    params.omega_e = config.get_double("omega_e", params.omega_e);
    params.tau = config.get_double("tau", params.tau);
    params.d_min = config.get_double("d_min", params.d_min);
    params.a0 = config.get_double("a0", params.a0);
    params.epochs_g = config.get_double("epochs_g", params.epochs_g);
  } catch (const std::invalid_argument& error) {
    return Error{"game_config", error.what()};
  }
  if (auto status = params.validate(); !status.ok()) return status.error();

  std::vector<Organization> orgs(n);
  CompetitionMatrix rho(n);
  try {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string prefix = "org." + std::to_string(i) + ".";
      Organization& org = orgs[i];
      org.name = config.get_string(prefix + "name", "org-" + std::to_string(i));
      org.data_size_bits = config.get_double(prefix + "s_bits", org.data_size_bits);
      org.sample_count = static_cast<std::size_t>(
          config.get_int(prefix + "samples", static_cast<std::int64_t>(org.sample_count)));
      org.profitability = config.get_double(prefix + "p", org.profitability);
      org.cycles_per_bit = config.get_double(prefix + "eta", org.cycles_per_bit);
      org.download_time = config.get_double(prefix + "t_down", org.download_time);
      org.upload_time = config.get_double(prefix + "t_up", org.upload_time);
      if (const auto freqs = config.get(prefix + "freqs")) {
        std::vector<double> levels;
        for (const std::string& piece : split(*freqs, ',')) {
          std::size_t consumed = 0;
          const std::string token = trim(piece);
          const double value = std::stod(token, &consumed);
          if (consumed != token.size()) {
            return Error{"game_config", prefix + "freqs: bad number '" + token + "'"};
          }
          levels.push_back(value);
        }
        org.freq_levels = std::move(levels);
      }
      if (!org.is_valid()) {
        return Error{"game_config", "organization " + org.name + " is invalid"};
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const std::string key = "rho." + std::to_string(i) + "." + std::to_string(j);
        const double value = config.get_double(key, 0.0);
        if (value < 0.0 || value > 1.0) {
          return Error{"game_config", key + " outside [0, 1]"};
        }
        rho.set(i, j, value);
      }
    }
  } catch (const std::exception& error) {
    return Error{"game_config", error.what()};
  }

  auto accuracy = std::make_shared<const SqrtAccuracyModel>(params.epochs_g, params.a0);
  try {
    return CoopetitionGame(std::move(orgs), std::move(rho), std::move(accuracy), params);
  } catch (const std::exception& error) {
    return Error{"game_config", error.what()};
  }
}

}  // namespace tradefl::game
