// Strategy types of the coopetition game (Sec. IV-A): each organization
// picks π_i = {d_i, f_i} — a continuous data fraction and a discrete CPU
// frequency level.
#pragma once

#include <vector>

#include "common/types.h"

namespace tradefl::game {

struct Strategy {
  /// d_i ∈ [D_min, 1] — fraction of the local dataset contributed.
  double data_fraction = 0.0;

  /// Index into Organization::freq_levels selecting f_i.
  std::size_t freq_index = 0;

  friend bool operator==(const Strategy&, const Strategy&) = default;
};

/// One strategy per organization (π in the paper).
using StrategyProfile = std::vector<Strategy>;

/// Largest |d_i - d_i'| + (freq changed ? 1 : 0)-style distance used by the
/// best-response loop to detect convergence.
inline double strategy_distance(const StrategyProfile& a, const StrategyProfile& b) {
  double worst = a.size() == b.size() ? 0.0 : 1e300;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double d_gap = a[i].data_fraction > b[i].data_fraction
                             ? a[i].data_fraction - b[i].data_fraction
                             : b[i].data_fraction - a[i].data_fraction;
    const double f_gap = a[i].freq_index == b[i].freq_index ? 0.0 : 1.0;
    const double gap = d_gap + f_gap;
    if (gap > worst) worst = gap;
  }
  return worst;
}

}  // namespace tradefl::game
