// Builders for the experiment configurations of Sec. VI (Table II): seeded
// random games with the paper's parameter ranges, plus small hand-built games
// for unit tests and examples.
#pragma once

#include <cstdint>

#include "common/config.h"
#include "game/game.h"

namespace tradefl::game {

/// Knobs for the Table-II generator. Every field has the paper's default.
struct ExperimentSpec {
  std::size_t org_count = 10;       // |N|
  double data_bits_lo = 15e9;       // s_i ~ U[15, 25] * 1e9 bits
  double data_bits_hi = 25e9;
  std::size_t samples_lo = 1000;    // |S_i| ~ U[1000, 2000]
  std::size_t samples_hi = 2000;
  double profitability_lo = 500.0;  // p_i ~ U[500, 2500]
  double profitability_hi = 2500.0;
  // Table II specifies F_i^(m) (the fastest level) in 3-5 GHz; each org's m
  // levels span linearly from freq_base up to its drawn F_i^(m).
  double freq_base = 1.5e9;
  double fmax_lo = 3e9;
  double fmax_hi = 5e9;
  std::size_t freq_levels = 3;      // m
  double cycles_per_bit_lo = 8.0;   // η_i ~ U[8, 12]
  double cycles_per_bit_hi = 12.0;
  double comm_time_lo = 1.0;        // T^(1), T^(3) ~ U[1, 3] s
  double comm_time_hi = 3.0;
  double comm_energy_per_s = 1.0;   // E_DL = E_UL
  double rho_mean = 0.05;           // μ of ρ ~ N(μ, (μ/5)²)
  GameParams params{};              // γ, λ, ϖ_e, κ, τ, D_min, a0, G
};

/// Draws the organizations and ρ from `spec` with the given seed and builds
/// the game with the footnote-7 SqrtAccuracyModel.
CoopetitionGame make_experiment_game(const ExperimentSpec& spec, std::uint64_t seed);

/// Convenience: default Table-II game.
CoopetitionGame make_default_game(std::uint64_t seed = 42);

/// A tiny deterministic 3-organization game with hand-set values; used by
/// unit tests and the quickstart example so results are easy to reason about.
CoopetitionGame make_toy_game(double gamma = 5.12e-9, double rho_mean = 0.05);

/// Builds a fully explicit game from a flat key=value Config — the format
/// the `tradefl` CLI loads from files. Keys:
///   orgs = N                        (required, >= 2)
///   gamma/lambda/omega_e/tau/d_min/a0/epochs_g   (optional GameParams)
///   org.<i>.name / .s_bits / .samples / .p / .eta / .t_down / .t_up
///   org.<i>.freqs = 1.5e9,3e9,5e9   (comma-separated ascending Hz)
///   rho.<i>.<j> = 0.05              (defaults to 0; symmetric entries are
///                                    NOT mirrored automatically)
/// Unknown org fields fall back to Organization's defaults.
Result<CoopetitionGame> game_from_config(const Config& config);

}  // namespace tradefl::game
