#include "game/competition.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tradefl::game {

CompetitionMatrix::CompetitionMatrix(std::size_t n) : n_(n), rho_(n * n, 0.0) {}

CompetitionMatrix CompetitionMatrix::from_rows(const std::vector<std::vector<double>>& rows) {
  CompetitionMatrix m(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != rows.size()) {
      throw std::invalid_argument("competition: matrix must be square");
    }
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (i == j && rows[i][j] != 0.0) {
        throw std::invalid_argument("competition: diagonal must be zero");
      }
      m.set(i, j, rows[i][j]);
    }
  }
  return m;
}

CompetitionMatrix CompetitionMatrix::random_symmetric(std::size_t n, double mean, Rng& rng) {
  if (mean < 0.0 || mean > 1.0) {
    throw std::invalid_argument("competition: mean must lie in [0, 1]");
  }
  CompetitionMatrix m(n);
  const double sigma = mean / 5.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double value =
          mean == 0.0 ? 0.0 : rng.truncated_normal(mean, sigma, 0.0, 1.0);
      m.set(i, j, value);
      m.set(j, i, value);
    }
  }
  return m;
}

void CompetitionMatrix::set(OrgId i, OrgId j, double value) {
  if (i >= n_ || j >= n_) throw std::out_of_range("competition: index out of range");
  if (i == j && value != 0.0) throw std::invalid_argument("competition: diagonal must stay zero");
  if (value < 0.0 || value > 1.0) throw std::invalid_argument("competition: rho must be in [0,1]");
  rho_[i * n_ + j] = value;
}

bool CompetitionMatrix::is_symmetric(double tol) const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (std::abs(at(i, j) - at(j, i)) > tol) return false;
    }
  }
  return true;
}

double CompetitionMatrix::row_sum(OrgId i) const {
  double total = 0.0;
  for (std::size_t j = 0; j < n_; ++j) total += at(i, j);
  return total;
}

double CompetitionMatrix::weighted_row_sum(OrgId i, const std::vector<double>& weights) const {
  if (weights.size() != n_) throw std::invalid_argument("competition: weights size mismatch");
  double total = 0.0;
  for (std::size_t j = 0; j < n_; ++j) total += at(i, j) * weights[j];
  return total;
}

void CompetitionMatrix::scale(double factor) {
  if (factor < 0.0) throw std::invalid_argument("competition: negative scale");
  for (double& value : rho_) value = std::clamp(value * factor, 0.0, 1.0);
}

double CompetitionMatrix::off_diagonal_mean() const {
  if (n_ < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (i != j) total += at(i, j);
    }
  }
  return total / static_cast<double>(n_ * (n_ - 1));
}

std::vector<double> potential_weights(const CompetitionMatrix& rho,
                                      const std::vector<double>& profitability) {
  if (profitability.size() != rho.size()) {
    throw std::invalid_argument("potential_weights: profitability size mismatch");
  }
  std::vector<double> z(rho.size());
  for (std::size_t i = 0; i < rho.size(); ++i) {
    z[i] = profitability[i] - rho.weighted_row_sum(i, profitability);
  }
  return z;
}

double enforce_positive_weights(CompetitionMatrix& rho,
                                const std::vector<double>& profitability,
                                double margin) {
  if (!(margin > 0.0 && margin < 1.0)) {
    throw std::invalid_argument("enforce_positive_weights: margin must be in (0,1)");
  }
  const std::vector<double> z = potential_weights(rho, profitability);
  double worst_ratio = 1.0;  // smallest z_i / p_i observed
  for (std::size_t i = 0; i < z.size(); ++i) {
    worst_ratio = std::min(worst_ratio, z[i] / profitability[i]);
  }
  if (worst_ratio >= margin) return 1.0;
  // z_i/p_i = 1 - (Σ ρ_{i,j} p_j)/p_i is affine in a uniform ρ scale s:
  // ratio(s) = 1 - s * (1 - ratio(1)). Solve ratio(s) = margin.
  const double scale_factor = (1.0 - margin) / (1.0 - worst_ratio);
  rho.scale(scale_factor);
  return scale_factor;
}

}  // namespace tradefl::game
