#include "game/params.h"

#include <string>

namespace tradefl::game {

Status GameParams::validate() const {
  auto fail = [](const std::string& what) -> Status {
    return Error{"params", what};
  };
  if (gamma < 0.0) return fail("gamma must be >= 0");
  if (lambda <= 0.0) return fail("lambda must be > 0");
  if (omega_e < 0.0) return fail("omega_e must be >= 0");
  if (kappa <= 0.0) return fail("kappa must be > 0");
  if (tau <= 0.0) return fail("tau must be > 0");
  if (!(d_min > 0.0 && d_min <= 1.0)) return fail("d_min must lie in (0, 1]");
  if (a0 <= 0.0) return fail("a0 must be > 0");
  if (epochs_g <= 1.0) return fail("epochs_g must be > 1");
  if (data_scale <= 0.0) return fail("data_scale must be > 0");
  if (a0 <= 1.0 / epochs_g) return fail("a0 must exceed 1/G or P cannot be positive");
  return ok_status();
}

}  // namespace tradefl::game
