// The weighted potential function of Theorem 1 and a numerical verifier of
// the weighted-potential identity (Eq. 14). CGBD maximizes the potential;
// its maximizer is a pure-strategy NE of the coopetition game ([33, Thm 2.4]).
//
// Two variants are provided:
//  * `paper_potential` — Eq. (15) literally:
//      U = P(Ω) - Σ_i [ϖ_e κ f_i² η_i d_i s_i / z_i - Σ_j r_{i,j} / z_i].
//    The paper's proof treats the reverse transfers r_{j,i} as constants when
//    π_i moves, so this form satisfies Eq. (14) only approximately (and for
//    symmetric ρ with uniform z its redistribution part vanishes entirely).
//  * `potential` — the exact weighted potential. Writing
//    χ_i = d_i s_i + λ f_i, the redistribution term of C_i contributes
//    ∂C_i/∂χ_i = γ Σ_j ρ_{i,j} (the -χ_j parts are pure externalities), so
//      U = P(Ω) - Σ_i ϖ_e κ f_i² η_i d_i s_i / z_i
//            + γ Σ_i (Σ_j ρ_{i,j}) χ_i / z_i
//    satisfies z_i ΔU = ΔC_i *exactly* for any unilateral deviation. This is
//    the function CGBD maximizes. See DESIGN.md §7.
#pragma once

#include "game/game.h"

namespace tradefl::game {

/// Exact weighted potential (satisfies Eq. 14 identically).
double potential(const CoopetitionGame& game, const StrategyProfile& profile);

/// Eq. (15) exactly as printed in the paper (for Fig. 4 comparisons).
double paper_potential(const CoopetitionGame& game, const StrategyProfile& profile);

/// Analytic ∂U/∂d_i of the exact potential at fixed frequencies (used by the
/// GBD primal solver):
///   ∂U/∂d_i = P'(Ω) w_i - ϖ_e κ f_i² η_i s_i / z_i + γ s_i Σ_j ρ_{i,j} / z_i.
double potential_gradient_d(const CoopetitionGame& game, const StrategyProfile& profile,
                            OrgId i);

/// ∂²U/∂d_i∂d_j = P''(Ω) w_i w_j (rank-one Hessian; energy/redistribution
/// parts are linear in d at fixed f).
double potential_hessian_dd(const CoopetitionGame& game, const StrategyProfile& profile,
                            OrgId i, OrgId j);

/// Result of numerically probing the weighted-potential identity (Eq. 14):
/// z_i [U(π_i', π_-i) - U(π)] vs C_i(π_i', π_-i) - C_i(π).
struct PotentialIdentityCheck {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::size_t deviations_tested = 0;
};

/// Probes Eq. (14) at `samples` random unilateral deviations from `profile`
/// using the exact potential. Errors should be at floating-point level.
PotentialIdentityCheck check_weighted_potential_identity(const CoopetitionGame& game,
                                                         const StrategyProfile& profile,
                                                         std::size_t samples,
                                                         std::uint64_t seed);

/// Same probe against the paper-literal Eq. (15) potential; quantifies how
/// far the printed form is from an exact weighted potential (nonzero when
/// γ > 0 and ρ has any nonzero entries).
PotentialIdentityCheck check_paper_potential_identity(const CoopetitionGame& game,
                                                      const StrategyProfile& profile,
                                                      std::size_t samples,
                                                      std::uint64_t seed);

}  // namespace tradefl::game
