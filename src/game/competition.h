// Competition intensity matrix ρ (Sec. III-C.2). ρ_{i,j} in [0,1] measures
// the similarity of organizations i and j's products; ρ_{i,i} = 0. The
// simulations draw ρ_{i,j} ~ N(μ, (μ/5)^2) symmetric (Sec. VI, Figs. 10-11),
// and Theorem 1 requires ρ small enough that z_i = p_i - Σ_j ρ_{i,j} p_j > 0
// ("ρ_{i,j} is mapped to a small number to ensure z_i > 0").
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace tradefl::game {

class CompetitionMatrix {
 public:
  CompetitionMatrix() = default;

  /// Builds an all-zeros (no-competition) matrix.
  explicit CompetitionMatrix(std::size_t n);

  /// Builds from an explicit row-major matrix; validates shape, a zero
  /// diagonal, and entries in [0, 1]. Throws std::invalid_argument otherwise.
  static CompetitionMatrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Draws a symmetric matrix with off-diagonal entries
  /// ρ_{i,j} ~ N(mean, (mean/5)^2) truncated to [0, 1].
  static CompetitionMatrix random_symmetric(std::size_t n, double mean, Rng& rng);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] double at(OrgId i, OrgId j) const { return rho_[i * n_ + j]; }
  void set(OrgId i, OrgId j, double value);

  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  /// Σ_j ρ_{i,j} — total competitive exposure of organization i.
  [[nodiscard]] double row_sum(OrgId i) const;

  /// Σ_j ρ_{i,j} w_j for arbitrary weights (used for Σ_j ρ_{i,j} p_j).
  [[nodiscard]] double weighted_row_sum(OrgId i, const std::vector<double>& weights) const;

  /// Uniformly rescales all entries by `factor` (clamped to keep entries in
  /// [0, 1]). Used by the z_i > 0 guard.
  void scale(double factor);

  /// Mean of the off-diagonal entries (μ of Figs. 10-11).
  [[nodiscard]] double off_diagonal_mean() const;

 private:
  std::size_t n_ = 0;
  std::vector<double> rho_;
};

/// z_i = p_i - Σ_j ρ_{i,j} p_j for every organization (Theorem 1).
std::vector<double> potential_weights(const CompetitionMatrix& rho,
                                      const std::vector<double>& profitability);

/// Theorem 1's guard: if any z_i <= margin * p_i, rescale ρ uniformly so that
/// min_i z_i = margin * p_i. Returns the scale factor applied (1.0 when no
/// rescale was needed).
double enforce_positive_weights(CompetitionMatrix& rho,
                                const std::vector<double>& profitability,
                                double margin = 0.05);

}  // namespace tradefl::game
