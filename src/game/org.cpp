#include "game/org.h"

#include <algorithm>

namespace tradefl::game {

Seconds Organization::local_training_time(double d, Hertz f) const {
  return cycles_per_bit * d * data_size_bits / f;
}

Seconds Organization::round_time(double d, Hertz f) const {
  return download_time + local_training_time(d, f) + upload_time;
}

Joules Organization::comm_energy() const {
  return e_download_per_s * download_time + e_upload_per_s * upload_time;
}

Joules Organization::comp_energy(double d, Hertz f, double kappa) const {
  return kappa * f * f * cycles_per_bit * d * data_size_bits;
}

double Organization::max_data_fraction_for_deadline(Hertz f, Seconds tau) const {
  const Seconds compute_budget = tau - download_time - upload_time;
  return compute_budget * f / (cycles_per_bit * data_size_bits);
}

bool Organization::is_valid() const {
  if (data_size_bits <= 0.0 || sample_count == 0 || profitability <= 0.0) return false;
  if (cycles_per_bit <= 0.0) return false;
  if (freq_levels.empty()) return false;
  if (!std::is_sorted(freq_levels.begin(), freq_levels.end())) return false;
  if (freq_levels.front() <= 0.0) return false;
  if (download_time < 0.0 || upload_time < 0.0) return false;
  if (e_download_per_s < 0.0 || e_upload_per_s < 0.0) return false;
  return true;
}

}  // namespace tradefl::game
