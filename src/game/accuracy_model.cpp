#include "game/accuracy_model.h"

#include <cmath>
#include <stdexcept>

namespace tradefl::game {

SqrtAccuracyModel::SqrtAccuracyModel(double epochs_g, double a0) : epochs_g_(epochs_g) {
  if (epochs_g <= 1.0) throw std::invalid_argument("SqrtAccuracyModel: G must be > 1");
  const double headroom = a0 - 1.0 / epochs_g;
  if (headroom <= 0.0) {
    throw std::invalid_argument("SqrtAccuracyModel: a0 must exceed 1/G");
  }
  // Choose Ω₀ so A(0) = 1/sqrt(Ω₀ G) + 1/G = a0.
  omega0_ = 1.0 / (epochs_g * headroom * headroom);
}

double SqrtAccuracyModel::loss(double omega) const {
  if (omega < 0.0) throw std::invalid_argument("loss: omega must be >= 0");
  return 1.0 / std::sqrt((omega + omega0_) * epochs_g_) + 1.0 / epochs_g_;
}

double SqrtAccuracyModel::loss_derivative(double omega) const {
  if (omega < 0.0) throw std::invalid_argument("loss_derivative: omega must be >= 0");
  return -0.5 / (std::sqrt(epochs_g_) * std::pow(omega + omega0_, 1.5));
}

double SqrtAccuracyModel::loss_second_derivative(double omega) const {
  if (omega < 0.0) throw std::invalid_argument("loss_second_derivative: omega must be >= 0");
  return 0.75 / (std::sqrt(epochs_g_) * std::pow(omega + omega0_, 2.5));
}

PowerLawAccuracyModel::PowerLawAccuracyModel(double a0, double omega_ref, double alpha)
    : a0_(a0), omega_ref_(omega_ref), alpha_(alpha) {
  if (a0 <= 0.0 || omega_ref <= 0.0) {
    throw std::invalid_argument("PowerLawAccuracyModel: a0 and omega_ref must be > 0");
  }
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw std::invalid_argument("PowerLawAccuracyModel: alpha must be in (0, 1]");
  }
}

double PowerLawAccuracyModel::loss(double omega) const {
  return a0_ * std::pow(1.0 + omega / omega_ref_, -alpha_);
}

double PowerLawAccuracyModel::loss_derivative(double omega) const {
  return -a0_ * alpha_ / omega_ref_ * std::pow(1.0 + omega / omega_ref_, -alpha_ - 1.0);
}

double PowerLawAccuracyModel::loss_second_derivative(double omega) const {
  return a0_ * alpha_ * (alpha_ + 1.0) / (omega_ref_ * omega_ref_) *
         std::pow(1.0 + omega / omega_ref_, -alpha_ - 2.0);
}

ExponentialAccuracyModel::ExponentialAccuracyModel(double a0, double omega_ref)
    : a0_(a0), omega_ref_(omega_ref) {
  if (a0 <= 0.0 || omega_ref <= 0.0) {
    throw std::invalid_argument("ExponentialAccuracyModel: a0 and omega_ref must be > 0");
  }
}

double ExponentialAccuracyModel::loss(double omega) const {
  return a0_ * std::exp(-omega / omega_ref_);
}

double ExponentialAccuracyModel::loss_derivative(double omega) const {
  return -a0_ / omega_ref_ * std::exp(-omega / omega_ref_);
}

double ExponentialAccuracyModel::loss_second_derivative(double omega) const {
  return a0_ / (omega_ref_ * omega_ref_) * std::exp(-omega / omega_ref_);
}

EmpiricalAccuracyModel::EmpiricalAccuracyModel(SqrtSaturationFit fit, double a0)
    : fit_(fit), a0_(a0) {
  if (fit_.b < 0.0) throw std::invalid_argument("EmpiricalAccuracyModel: fit.b must be >= 0");
  if (fit_.c <= 0.0) throw std::invalid_argument("EmpiricalAccuracyModel: fit.c must be > 0");
  if (a0 <= 0.0) throw std::invalid_argument("EmpiricalAccuracyModel: a0 must be > 0");
}

double EmpiricalAccuracyModel::loss(double omega) const {
  if (omega < 0.0) throw std::invalid_argument("loss: omega must be >= 0");
  // accuracy(Ω) - accuracy(0) = b/sqrt(c) - b/sqrt(Ω + c); loss falls by it.
  const double accuracy_gain = fit_.b / std::sqrt(fit_.c) - fit_.b / std::sqrt(omega + fit_.c);
  return a0_ - accuracy_gain;
}

double EmpiricalAccuracyModel::loss_derivative(double omega) const {
  return -0.5 * fit_.b * std::pow(omega + fit_.c, -1.5);
}

double EmpiricalAccuracyModel::loss_second_derivative(double omega) const {
  return 0.75 * fit_.b * std::pow(omega + fit_.c, -2.5);
}

}  // namespace tradefl::game
