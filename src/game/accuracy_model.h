// Data-accuracy function P (Eq. 4) and the accuracy-loss models behind it.
//
// TradeFL deliberately does not assume a functional form for P; it only
// requires the first/second-derivative conditions of Eq. (5):
//   dP/dΩ >= 0 and d²P/dΩ² <= 0 (monotone, diminishing returns).
// We express that as the AccuracyModel interface. The simulations use the
// bound from footnote 7 (SqrtAccuracyModel); the FL evaluation can fit an
// EmpiricalAccuracyModel from measured accuracy-vs-data curves (Fig. 2), and
// alternative smooth forms are provided to exercise the "no specific form"
// claim in tests and ablations.
#pragma once

#include <memory>

#include "common/stats.h"

namespace tradefl::game {

/// Accuracy loss A(Ω) as a function of effective contributed data Ω >= 0
/// (scaled units, see GameParams::data_scale). Implementations must be
/// nonincreasing and convex in Ω so that P(Ω) = A(0) - A(Ω) satisfies Eq. (5).
class AccuracyModel {
 public:
  virtual ~AccuracyModel() = default;

  /// A(Ω) — accuracy loss with effective data Ω.
  [[nodiscard]] virtual double loss(double omega) const = 0;

  /// dA/dΩ (<= 0).
  [[nodiscard]] virtual double loss_derivative(double omega) const = 0;

  /// d²A/dΩ² (>= 0).
  [[nodiscard]] virtual double loss_second_derivative(double omega) const = 0;

  /// A(0) — the untrained-model loss; anchors P (Eq. 4).
  [[nodiscard]] double loss_at_zero() const { return loss(0.0); }

  /// P(Ω) = A(0) - A(Ω) (Eq. 4). P(0) = 0 by construction.
  [[nodiscard]] double performance(double omega) const {
    return loss_at_zero() - loss(omega);
  }
  [[nodiscard]] double performance_derivative(double omega) const {
    return -loss_derivative(omega);
  }
  [[nodiscard]] double performance_second_derivative(double omega) const {
    return -loss_second_derivative(omega);
  }
};

/// Footnote 7's bound, smoothed so that A(0) equals the configured untrained
/// loss a0 exactly:
///   A(Ω) = 1 / sqrt((Ω + Ω₀) G) + 1/G,  Ω₀ = 1 / (G (a0 - 1/G)²).
/// Monotone decreasing and convex for all Ω >= 0, so P satisfies Eq. (5).
class SqrtAccuracyModel final : public AccuracyModel {
 public:
  SqrtAccuracyModel(double epochs_g, double a0);

  [[nodiscard]] double loss(double omega) const override;
  [[nodiscard]] double loss_derivative(double omega) const override;
  [[nodiscard]] double loss_second_derivative(double omega) const override;

  [[nodiscard]] double epochs() const { return epochs_g_; }
  [[nodiscard]] double omega_offset() const { return omega0_; }

 private:
  double epochs_g_;
  double omega0_;
};

/// A(Ω) = a0 (1 + Ω/ω_ref)^(-α), α in (0, 1]: power-law saturation, an
/// alternative form satisfying Eq. (5).
class PowerLawAccuracyModel final : public AccuracyModel {
 public:
  PowerLawAccuracyModel(double a0, double omega_ref, double alpha);

  [[nodiscard]] double loss(double omega) const override;
  [[nodiscard]] double loss_derivative(double omega) const override;
  [[nodiscard]] double loss_second_derivative(double omega) const override;

 private:
  double a0_;
  double omega_ref_;
  double alpha_;
};

/// A(Ω) = a0 exp(-Ω/ω_ref): exponential saturation, another Eq.(5) form.
class ExponentialAccuracyModel final : public AccuracyModel {
 public:
  ExponentialAccuracyModel(double a0, double omega_ref);

  [[nodiscard]] double loss(double omega) const override;
  [[nodiscard]] double loss_derivative(double omega) const override;
  [[nodiscard]] double loss_second_derivative(double omega) const override;

 private:
  double a0_;
  double omega_ref_;
};

/// Built from a SqrtSaturationFit of measured accuracy-vs-data points (the
/// Fig. 2 pre-experiment): accuracy(Ω) ≈ a - b/sqrt(Ω + c), so the loss is
/// A(Ω) = A(0) - (accuracy(Ω) - accuracy(0)). Satisfies Eq. (5) when b >= 0.
class EmpiricalAccuracyModel final : public AccuracyModel {
 public:
  EmpiricalAccuracyModel(SqrtSaturationFit fit, double a0);

  [[nodiscard]] double loss(double omega) const override;
  [[nodiscard]] double loss_derivative(double omega) const override;
  [[nodiscard]] double loss_second_derivative(double omega) const override;

  [[nodiscard]] const SqrtSaturationFit& fit() const { return fit_; }

 private:
  SqrtSaturationFit fit_;
  double a0_;
};

using AccuracyModelPtr = std::shared_ptr<const AccuracyModel>;

}  // namespace tradefl::game
