#include "game/game.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "math/scalar_opt.h"

namespace tradefl::game {

CoopetitionGame::CoopetitionGame(std::vector<Organization> orgs, CompetitionMatrix rho,
                                 AccuracyModelPtr accuracy, GameParams params)
    : orgs_(std::move(orgs)),
      rho_(std::move(rho)),
      accuracy_(std::move(accuracy)),
      params_(params) {
  if (orgs_.empty()) throw std::invalid_argument("game: need at least one organization");
  if (rho_.size() != orgs_.size()) throw std::invalid_argument("game: rho size mismatch");
  if (!accuracy_) throw std::invalid_argument("game: accuracy model required");
  if (auto status = params_.validate(); !status.ok()) {
    throw std::invalid_argument("game: " + status.error().to_string());
  }
  for (const auto& org : orgs_) {
    if (!org.is_valid()) throw std::invalid_argument("game: invalid organization " + org.name);
  }
  // Asymmetric rho is a valid game (the exact potential identity does not
  // need symmetry); the budget-balance precondition is asserted where Thm. 2
  // is actually claimed, in core/mechanism.cpp's run_scheme.
  std::vector<double> profitability(orgs_.size());
  for (std::size_t i = 0; i < orgs_.size(); ++i) profitability[i] = orgs_[i].profitability;
  rho_guard_scale_ = enforce_positive_weights(rho_, profitability);
  z_ = potential_weights(rho_, profitability);
}

Hertz CoopetitionGame::frequency(OrgId i, const Strategy& strategy) const {
  return orgs_.at(i).freq_levels.at(strategy.freq_index);
}

double CoopetitionGame::contribution_weight(OrgId i) const {
  return orgs_.at(i).data_size_bits / params_.data_scale;
}

double CoopetitionGame::omega(const StrategyProfile& profile) const {
  if (profile.size() != orgs_.size()) throw std::invalid_argument("game: profile size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    total += profile[i].data_fraction * contribution_weight(i);
  }
  return total;
}

double CoopetitionGame::omega_excluding(const StrategyProfile& profile, OrgId excluded) const {
  const double rest =
      omega(profile) - profile.at(excluded).data_fraction * contribution_weight(excluded);
  return std::max(0.0, rest);  // guard against floating-point cancellation
}

double CoopetitionGame::performance(const StrategyProfile& profile) const {
  return accuracy_->performance(omega(profile));
}

double CoopetitionGame::revenue(OrgId i, const StrategyProfile& profile) const {
  return orgs_.at(i).profitability * performance(profile);
}

double CoopetitionGame::competitor_profit(OrgId i, OrgId j,
                                          const StrategyProfile& profile) const {
  // ϖ_j = p_j [P(d_i, d_-i) - P(0, d_-i)] (Eq. 6): j's extra profit due to
  // i's marginal contribution to the global model.
  const double with_i = accuracy_->performance(omega(profile));
  const double without_i = accuracy_->performance(omega_excluding(profile, i));
  return orgs_.at(j).profitability * (with_i - without_i);
}

double CoopetitionGame::damage(OrgId i, const StrategyProfile& profile) const {
  const double with_i = accuracy_->performance(omega(profile));
  const double without_i = accuracy_->performance(omega_excluding(profile, i));
  const double marginal = with_i - without_i;
  // Σ_j ρ_{i,j} p_j marginal (Eq. 7), hoisting the shared marginal factor.
  double weighted_profitability = 0.0;
  for (std::size_t j = 0; j < orgs_.size(); ++j) {
    weighted_profitability += rho_.at(i, j) * orgs_[j].profitability;
  }
  return weighted_profitability * marginal;
}

Joules CoopetitionGame::energy(OrgId i, const StrategyProfile& profile) const {
  const Organization& org = orgs_.at(i);
  const Strategy& strategy = profile.at(i);
  return org.comp_energy(strategy.data_fraction, frequency(i, strategy), params_.kappa) +
         org.comm_energy();
}

double CoopetitionGame::redistribution_pair(OrgId i, OrgId j,
                                            const StrategyProfile& profile) const {
  if (i == j) return 0.0;
  // r_{i,j} = γ ρ_{i,j} [(d_i s_i + λ f_i) - (d_j s_j + λ f_j)] (Eq. 9).
  const double contribution_i = profile.at(i).data_fraction * orgs_.at(i).data_size_bits +
                                params_.lambda * frequency(i, profile.at(i));
  const double contribution_j = profile.at(j).data_fraction * orgs_.at(j).data_size_bits +
                                params_.lambda * frequency(j, profile.at(j));
  return params_.gamma * rho_.at(i, j) * (contribution_i - contribution_j);
}

double CoopetitionGame::redistribution(OrgId i, const StrategyProfile& profile) const {
  double total = 0.0;
  for (std::size_t j = 0; j < orgs_.size(); ++j) {
    if (j != i) total += redistribution_pair(i, j, profile);
  }
  return total;
}

PayoffBreakdown CoopetitionGame::payoff_breakdown(OrgId i, const StrategyProfile& profile) const {
  PayoffBreakdown breakdown;
  breakdown.revenue = revenue(i, profile);
  breakdown.energy_cost = params_.omega_e * energy(i, profile);
  breakdown.damage = damage(i, profile);
  breakdown.redistribution = redistribution(i, profile);
  // IR/BB/CE reasoning is meaningless on non-finite payoffs; trap NaN/Inf at
  // the source instead of letting it flow into the solvers.
  TFL_FINITE(breakdown.revenue);
  TFL_FINITE(breakdown.energy_cost);
  TFL_FINITE(breakdown.damage);
  TFL_FINITE(breakdown.redistribution);
  return breakdown;
}

double CoopetitionGame::payoff(OrgId i, const StrategyProfile& profile) const {
  return payoff_breakdown(i, profile).total();
}

double CoopetitionGame::social_welfare(const StrategyProfile& profile) const {
  double total = 0.0;
  for (std::size_t i = 0; i < orgs_.size(); ++i) total += payoff(i, profile);
  return total;
}

double CoopetitionGame::total_damage(const StrategyProfile& profile) const {
  double total = 0.0;
  for (std::size_t i = 0; i < orgs_.size(); ++i) total += damage(i, profile);
  return total;
}

double CoopetitionGame::total_data_fraction(const StrategyProfile& profile) const {
  double total = 0.0;
  for (const Strategy& strategy : profile) total += strategy.data_fraction;
  return total;
}

double CoopetitionGame::data_upper_bound(OrgId i, std::size_t freq_index) const {
  const Organization& org = orgs_.at(i);
  const double deadline_bound =
      org.max_data_fraction_for_deadline(org.freq_levels.at(freq_index), params_.tau);
  return std::min(1.0, deadline_bound);
}

std::vector<std::size_t> CoopetitionGame::feasible_freq_levels(OrgId i) const {
  std::vector<std::size_t> levels;
  for (std::size_t level = 0; level < orgs_.at(i).freq_levels.size(); ++level) {
    if (data_upper_bound(i, level) >= params_.d_min) levels.push_back(level);
  }
  return levels;
}

bool CoopetitionGame::is_feasible(const StrategyProfile& profile) const {
  return feasibility_report(profile).empty();
}

std::string CoopetitionGame::feasibility_report(const StrategyProfile& profile) const {
  std::ostringstream report;
  if (profile.size() != orgs_.size()) {
    report << "profile size " << profile.size() << " != organizations " << orgs_.size();
    return report.str();
  }
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const Strategy& strategy = profile[i];
    const Organization& org = orgs_[i];
    if (strategy.freq_index >= org.freq_levels.size()) {
      report << org.name << ": freq index out of range; ";
      continue;
    }
    if (strategy.data_fraction < params_.d_min - 1e-12 ||
        strategy.data_fraction > 1.0 + 1e-12) {
      report << org.name << ": d=" << strategy.data_fraction << " outside [D_min, 1]; ";
    }
    const Seconds round = org.round_time(strategy.data_fraction, frequency(i, strategy));
    if (round > params_.tau + 1e-9) {
      report << org.name << ": round time " << round << "s exceeds tau=" << params_.tau << "; ";
    }
  }
  return report.str();
}

StrategyProfile CoopetitionGame::minimal_profile() const {
  StrategyProfile profile(orgs_.size());
  for (std::size_t i = 0; i < orgs_.size(); ++i) {
    const std::vector<std::size_t> levels = feasible_freq_levels(i);
    if (levels.empty()) {
      throw std::runtime_error("game: organization " + orgs_[i].name +
                               " cannot meet the deadline even at d = D_min");
    }
    profile[i].data_fraction = params_.d_min;
    profile[i].freq_index = levels.back();  // fastest feasible level
  }
  return profile;
}

double CoopetitionGame::max_unilateral_gain(const StrategyProfile& profile,
                                            std::size_t grid) const {
  double worst_gain = 0.0;
  for (std::size_t i = 0; i < orgs_.size(); ++i) {
    const double current = payoff(i, profile);
    StrategyProfile trial = profile;
    for (std::size_t level : feasible_freq_levels(i)) {
      const double upper = data_upper_bound(i, level);
      trial[i].freq_index = level;
      // Continuous 1-D search (payoff is concave in d_i for Eq. 5 models).
      auto payoff_at = [&](double d) {
        trial[i].data_fraction = d;
        return payoff(i, trial);
      };
      const auto best = tradefl::math::golden_section_maximize(
          payoff_at, params_.d_min, upper, 1e-10);
      worst_gain = std::max(worst_gain, best.value - current);
      // Plus a uniform grid (catches non-concavity in exotic models).
      for (std::size_t g = 0; g <= grid; ++g) {
        const double d = params_.d_min + (upper - params_.d_min) *
                                             static_cast<double>(g) /
                                             static_cast<double>(grid);
        worst_gain = std::max(worst_gain, payoff_at(d) - current);
      }
    }
    trial[i] = profile[i];
  }
  return worst_gain;
}

}  // namespace tradefl::game
