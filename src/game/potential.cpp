#include "game/potential.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace tradefl::game {
namespace {

/// χ_i = d_i s_i + λ f_i — the "contributed resources" scalar of Eq. (9).
double resource_contribution(const CoopetitionGame& game, const StrategyProfile& profile,
                             OrgId i) {
  return profile[i].data_fraction * game.org(i).data_size_bits +
         game.params().lambda * game.frequency(i, profile[i]);
}

double weighted_energy_sum(const CoopetitionGame& game, const StrategyProfile& profile) {
  const GameParams& params = game.params();
  double total = 0.0;
  for (std::size_t i = 0; i < game.size(); ++i) {
    const Organization& org = game.org(i);
    const double f = game.frequency(i, profile[i]);
    const double comp_energy = params.kappa * f * f * org.cycles_per_bit *
                               profile[i].data_fraction * org.data_size_bits;
    total += params.omega_e * comp_energy / game.weight_z(i);
  }
  return total;
}

using Checker = double (*)(const CoopetitionGame&, const StrategyProfile&);

PotentialIdentityCheck run_identity_check(const CoopetitionGame& game,
                                          const StrategyProfile& profile,
                                          std::size_t samples, std::uint64_t seed,
                                          Checker potential_fn) {
  Rng rng(seed);
  PotentialIdentityCheck check;
  const double base_potential = potential_fn(game, profile);

  for (std::size_t sample = 0; sample < samples; ++sample) {
    const OrgId i = static_cast<OrgId>(
        rng.uniform_int(0, static_cast<std::int64_t>(game.size()) - 1));
    const auto levels = game.feasible_freq_levels(i);
    if (levels.empty()) continue;
    const std::size_t level = levels[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(levels.size()) - 1))];
    const double upper = game.data_upper_bound(i, level);
    StrategyProfile deviated = profile;
    deviated[i].freq_index = level;
    deviated[i].data_fraction = rng.uniform(game.params().d_min, upper);

    const double payoff_change = game.payoff(i, deviated) - game.payoff(i, profile);
    const double potential_change =
        game.weight_z(i) * (potential_fn(game, deviated) - base_potential);
    const double abs_error = std::abs(payoff_change - potential_change);
    const double scale = std::max({std::abs(payoff_change), std::abs(potential_change), 1e-12});
    check.max_abs_error = std::max(check.max_abs_error, abs_error);
    check.max_rel_error = std::max(check.max_rel_error, abs_error / scale);
    ++check.deviations_tested;
  }
  return check;
}

}  // namespace

double potential(const CoopetitionGame& game, const StrategyProfile& profile) {
  const GameParams& params = game.params();
  double value = game.accuracy().performance(game.omega(profile));
  value -= weighted_energy_sum(game, profile);
  for (std::size_t i = 0; i < game.size(); ++i) {
    value += params.gamma * game.rho().row_sum(i) * resource_contribution(game, profile, i) /
             game.weight_z(i);
  }
  return value;
}

double paper_potential(const CoopetitionGame& game, const StrategyProfile& profile) {
  double value = game.accuracy().performance(game.omega(profile));
  value -= weighted_energy_sum(game, profile);
  for (std::size_t i = 0; i < game.size(); ++i) {
    value += game.redistribution(i, profile) / game.weight_z(i);
  }
  return value;
}

double potential_gradient_d(const CoopetitionGame& game, const StrategyProfile& profile,
                            OrgId i) {
  const GameParams& params = game.params();
  const Organization& org = game.org(i);
  const double w_i = game.contribution_weight(i);
  const double f = game.frequency(i, profile[i]);

  double gradient = game.accuracy().performance_derivative(game.omega(profile)) * w_i;
  gradient -= params.omega_e * params.kappa * f * f * org.cycles_per_bit * org.data_size_bits /
              game.weight_z(i);
  gradient += params.gamma * org.data_size_bits * game.rho().row_sum(i) / game.weight_z(i);
  return gradient;
}

double potential_hessian_dd(const CoopetitionGame& game, const StrategyProfile& profile,
                            OrgId i, OrgId j) {
  return game.accuracy().performance_second_derivative(game.omega(profile)) *
         game.contribution_weight(i) * game.contribution_weight(j);
}

PotentialIdentityCheck check_weighted_potential_identity(const CoopetitionGame& game,
                                                         const StrategyProfile& profile,
                                                         std::size_t samples,
                                                         std::uint64_t seed) {
  return run_identity_check(game, profile, samples, seed, &potential);
}

PotentialIdentityCheck check_paper_potential_identity(const CoopetitionGame& game,
                                                      const StrategyProfile& profile,
                                                      std::size_t samples,
                                                      std::uint64_t seed) {
  return run_identity_check(game, profile, samples, seed, &paper_potential);
}

}  // namespace tradefl::game
