#include "chain/tx.h"

namespace tradefl::chain {

Address Address::from_name(const std::string& name) {
  const Hash256 digest = sha256("tradefl-address:" + name);
  Address address;
  for (std::size_t i = 0; i < address.bytes.size(); ++i) {
    address.bytes[i] = digest[digest.size() - address.bytes.size() + i];
  }
  return address;
}

std::string Address::to_hex() const {
  return "0x" + tradefl::chain::to_hex(Bytes(bytes.begin(), bytes.end()));
}

bool Address::is_zero() const {
  for (std::uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

Bytes Transaction::serialize() const {
  ByteWriter writer;
  // Exact payload size: two prefixed 20-byte addresses, four 8-byte ints,
  // one prefixed data blob. Submit/seal/validate all hash through here, so
  // the buffer growth otherwise dominates the (hardware-accelerated) SHA.
  writer.reserve(2 * (4 + from.bytes.size()) + 4 * 8 + 4 + data.size());
  writer.put_bytes(from.bytes.data(), from.bytes.size());
  writer.put_bytes(to.bytes.data(), to.bytes.size());
  writer.put_i64(value);
  writer.put_u64(nonce);
  writer.put_bytes(data);
  writer.put_u64(gas_limit);
  writer.put_i64(fee);
  return writer.data();
}

Hash256 Transaction::hash() const { return sha256(serialize()); }

}  // namespace tradefl::chain
