#include "chain/tx.h"

namespace tradefl::chain {

Address Address::from_name(const std::string& name) {
  const Hash256 digest = sha256("tradefl-address:" + name);
  Address address;
  for (std::size_t i = 0; i < address.bytes.size(); ++i) {
    address.bytes[i] = digest[digest.size() - address.bytes.size() + i];
  }
  return address;
}

std::string Address::to_hex() const {
  return "0x" + tradefl::chain::to_hex(Bytes(bytes.begin(), bytes.end()));
}

bool Address::is_zero() const {
  for (std::uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

Bytes Transaction::serialize() const {
  ByteWriter writer;
  writer.put_bytes(Bytes(from.bytes.begin(), from.bytes.end()));
  writer.put_bytes(Bytes(to.bytes.begin(), to.bytes.end()));
  writer.put_i64(value);
  writer.put_u64(nonce);
  writer.put_bytes(data);
  writer.put_u64(gas_limit);
  return writer.data();
}

Hash256 Transaction::hash() const { return sha256(serialize()); }

}  // namespace tradefl::chain
