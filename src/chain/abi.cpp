#include "chain/abi.h"

#include <limits>
#include <stdexcept>

#include "common/check.h"

namespace tradefl::chain {
namespace {

enum class Tag : std::uint8_t {
  kU64 = 1,
  kI64 = 2,
  kString = 3,
  kAddress = 4,
  kBytes = 5,
  kFixed = 6,
};

void encode_value(ByteWriter& writer, const AbiValue& value) {
  if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    writer.put_u8(static_cast<std::uint8_t>(Tag::kU64));
    writer.put_u64(*u);
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    writer.put_u8(static_cast<std::uint8_t>(Tag::kI64));
    writer.put_i64(*i);
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    writer.put_u8(static_cast<std::uint8_t>(Tag::kString));
    writer.put_string(*s);
  } else if (const auto* a = std::get_if<Address>(&value)) {
    writer.put_u8(static_cast<std::uint8_t>(Tag::kAddress));
    writer.put_bytes(Bytes(a->bytes.begin(), a->bytes.end()));
  } else if (const auto* b = std::get_if<Bytes>(&value)) {
    writer.put_u8(static_cast<std::uint8_t>(Tag::kBytes));
    writer.put_bytes(*b);
  } else if (const auto* f = std::get_if<Fixed>(&value)) {
    writer.put_u8(static_cast<std::uint8_t>(Tag::kFixed));
    writer.put_i64(f->raw());
  } else {
    throw std::logic_error("abi: unhandled variant alternative");
  }
}

AbiValue decode_value(ByteReader& reader) {
  const Tag tag = static_cast<Tag>(reader.get_u8());
  switch (tag) {
    case Tag::kU64: return reader.get_u64();
    case Tag::kI64: return reader.get_i64();
    case Tag::kString: return reader.get_string();
    case Tag::kAddress: {
      const Bytes raw = reader.get_bytes();
      if (raw.size() != 20) throw std::invalid_argument("abi: bad address length");
      Address address;
      std::copy(raw.begin(), raw.end(), address.bytes.begin());
      return address;
    }
    case Tag::kBytes: return reader.get_bytes();
    case Tag::kFixed: return Fixed::from_raw(reader.get_i64());
  }
  throw std::invalid_argument("abi: unknown type tag");
}

[[noreturn]] void type_error(std::size_t index, const char* wanted, const AbiValue& got) {
  throw std::invalid_argument("abi: argument " + std::to_string(index) + " must be " + wanted +
                              ", got " + abi_type_name(got));
}

void require_index(const std::vector<AbiValue>& args, std::size_t index) {
  if (index >= args.size()) {
    throw std::invalid_argument("abi: missing argument " + std::to_string(index));
  }
}

}  // namespace

std::string abi_type_name(const AbiValue& value) {
  switch (value.index()) {
    case 0: return "u64";
    case 1: return "i64";
    case 2: return "string";
    case 3: return "address";
    case 4: return "bytes";
    case 5: return "fixed";
    default: return "?";
  }
}

Bytes encode_call(const CallPayload& payload) {
  ByteWriter writer;
  writer.put_string(payload.method);
  TFL_CHECK(payload.args.size() <= std::numeric_limits<std::uint32_t>::max(),
            "argument count overflows u32");
  writer.put_u32(static_cast<std::uint32_t>(payload.args.size()));
  for (const AbiValue& value : payload.args) encode_value(writer, value);
  return writer.data();
}

CallPayload decode_call(const Bytes& data) {
  try {
    ByteReader reader(data);
    CallPayload payload;
    payload.method = reader.get_string();
    const std::uint32_t count = reader.get_u32();
    // Every encoded value occupies at least its 1-byte tag, so a count larger
    // than the payload itself is malformed; checking before reserve() keeps a
    // hostile 4-billion count from allocating gigabytes.
    if (count > data.size()) throw std::invalid_argument("abi: argument count exceeds payload");
    payload.args.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) payload.args.push_back(decode_value(reader));
    if (!reader.exhausted()) throw std::invalid_argument("abi: trailing bytes");
    return payload;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("abi: truncated call payload");
  }
}

Bytes encode_values(const std::vector<AbiValue>& values) {
  ByteWriter writer;
  TFL_CHECK(values.size() <= std::numeric_limits<std::uint32_t>::max(),
            "value count overflows u32");
  writer.put_u32(static_cast<std::uint32_t>(values.size()));
  for (const AbiValue& value : values) encode_value(writer, value);
  return writer.data();
}

std::vector<AbiValue> decode_values(const Bytes& data) {
  try {
    ByteReader reader(data);
    const std::uint32_t count = reader.get_u32();
    if (count > data.size()) throw std::invalid_argument("abi: value count exceeds payload");
    std::vector<AbiValue> values;
    values.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) values.push_back(decode_value(reader));
    if (!reader.exhausted()) throw std::invalid_argument("abi: trailing bytes");
    return values;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("abi: truncated value list");
  }
}

std::uint64_t abi_u64(const std::vector<AbiValue>& args, std::size_t index) {
  require_index(args, index);
  if (const auto* value = std::get_if<std::uint64_t>(&args[index])) return *value;
  type_error(index, "u64", args[index]);
}

std::int64_t abi_i64(const std::vector<AbiValue>& args, std::size_t index) {
  require_index(args, index);
  if (const auto* value = std::get_if<std::int64_t>(&args[index])) return *value;
  type_error(index, "i64", args[index]);
}

const std::string& abi_string(const std::vector<AbiValue>& args, std::size_t index) {
  require_index(args, index);
  if (const auto* value = std::get_if<std::string>(&args[index])) return *value;
  type_error(index, "string", args[index]);
}

Address abi_address(const std::vector<AbiValue>& args, std::size_t index) {
  require_index(args, index);
  if (const auto* value = std::get_if<Address>(&args[index])) return *value;
  type_error(index, "address", args[index]);
}

Fixed abi_fixed(const std::vector<AbiValue>& args, std::size_t index) {
  require_index(args, index);
  if (const auto* value = std::get_if<Fixed>(&args[index])) return *value;
  type_error(index, "fixed", args[index]);
}

}  // namespace tradefl::chain
