// Byte-buffer helpers shared by the chain substrate: hex encoding and a
// little-endian serializer used for transaction/block hashing and ABI
// payloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tradefl::chain {

using Bytes = std::vector<std::uint8_t>;

std::string to_hex(const Bytes& bytes);
Bytes from_hex(const std::string& hex);  // throws std::invalid_argument on bad input

/// Appends fixed-width little-endian integers / length-prefixed blobs.
class ByteWriter {
 public:
  void put_u8(std::uint8_t value);
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_i64(std::int64_t value);
  void put_bytes(const Bytes& value);      // length-prefixed
  void put_bytes(const std::uint8_t* value, std::size_t size);  // same framing
  void put_string(const std::string& value);  // length-prefixed

  /// Pre-sizes the buffer for a known payload (hot hashing paths).
  void reserve(std::size_t capacity) { buffer_.reserve(capacity); }

  [[nodiscard]] const Bytes& data() const { return buffer_; }

 private:
  Bytes buffer_;
};

/// Mirror image of ByteWriter; throws std::out_of_range when reading past
/// the end (malformed payload).
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  Bytes get_bytes();
  std::string get_string();

  [[nodiscard]] bool exhausted() const { return offset_ == data_.size(); }

 private:
  void require(std::size_t count) const;
  const Bytes& data_;
  std::size_t offset_ = 0;
};

}  // namespace tradefl::chain
