// The private chain: account balances, deployed contracts, transaction
// execution with receipts, block sealing, and full-chain validation with
// tamper detection. Single-node by construction (the paper deploys on a
// private Ethereum chain); consensus is out of scope, immutability and
// traceability are in scope and tested.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "chain/block.h"
#include "chain/vm.h"
#include "common/result.h"

namespace tradefl::chain {

struct ChainValidation {
  bool valid = false;
  std::string problem;  // empty when valid
};

/// Rebuilds a contract instance by name during restore_chain_state; the
/// restored state bytes are loaded into the fresh instance afterwards.
using ContractFactory = std::function<ContractPtr(const std::string& name)>;

/// Outcome of a write-ahead-log replay.
struct WalReplay {
  std::size_t blocks_replayed = 0;
  /// True when a torn final record (a crash mid-append) was cut off. All
  /// fully-committed blocks before it were recovered.
  bool tail_truncated = false;
  std::size_t bytes_truncated = 0;
};

class Blockchain {
 public:
  explicit Blockchain(GasSchedule gas_schedule = {});

  // ----- accounts -----

  /// Genesis-style faucet: credits wei out of thin air (testing/setup only).
  void credit(const Address& account, Wei amount);

  [[nodiscard]] Wei balance(const Address& account) const;

  // ----- contracts -----

  /// Deploys a contract; its address derives from the name + deploy nonce.
  Address deploy(ContractPtr contract);

  [[nodiscard]] bool has_contract(const Address& address) const;
  [[nodiscard]] const Contract& contract_at(const Address& address) const;

  // ----- transactions -----

  /// Executes a transaction against the current state and queues it for the
  /// next block. Value transfer and the contract call are atomic: a revert
  /// rolls everything back and the receipt carries the reason.
  Receipt submit(Transaction tx);

  /// Seals all pending transactions into a new block. Returns its index.
  std::uint64_t seal_block();

  /// True when there are unsealed transactions.
  [[nodiscard]] bool has_pending() const { return !pending_.empty(); }

  // ----- inspection -----

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const Block& block(std::size_t index) const { return blocks_.at(index); }
  [[nodiscard]] const std::vector<Receipt>& receipts() const { return receipts_; }
  [[nodiscard]] std::optional<Receipt> receipt_for(const Hash256& tx_hash) const;
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Walks the whole chain re-hashing headers and Merkle roots; detects any
  /// post-hoc mutation of sealed data.
  [[nodiscard]] ChainValidation validate() const;

  /// TEST HOOK: exposes a sealed block for mutation so tamper-detection tests
  /// can corrupt history and watch validate() fail.
  [[nodiscard]] Block& mutable_block_for_test(std::size_t index) { return blocks_.at(index); }

  [[nodiscard]] const GasSchedule& gas_schedule() const { return gas_schedule_; }

  // ----- durability -----

  /// Serializes the complete chain state — balances, deployed contracts (name
  /// + their save_state bytes), nonces, every sealed block, receipts, events,
  /// clocks — as an opaque payload for the snapshot subsystem. Pending
  /// (unsealed) transactions are deliberately excluded: they are not durable
  /// until sealed, exactly like a real mempool.
  [[nodiscard]] Bytes save_chain_state() const;

  /// Restores a save_chain_state payload into this chain (replacing the
  /// genesis-only state). Contracts are re-instantiated through `factory` and
  /// their saved state loaded. Fails closed with a typed Error on malformed
  /// payloads or a factory that does not know a stored contract name.
  Status restore_chain_state(const Bytes& bytes, const ContractFactory& factory);

  /// Attaches a write-ahead block log at `path`: every subsequently sealed
  /// block is appended (CRC-framed) and flushed before seal_block returns.
  /// Any existing file content is replaced by the currently sealed chain, so
  /// the log always mirrors this chain exactly (genesis excluded — it is
  /// reconstructed, never logged).
  Status attach_wal(const std::string& path);

  /// Startup recovery: replays a WAL into this freshly-constructed chain
  /// (genesis only, nothing pending) and attaches it for appends. A torn
  /// final record — the signature of a crash mid-append — is truncated away
  /// and reported; corruption *before* fully-committed records (a damaged
  /// record followed by valid ones) is rejected outright with
  /// Error{"wal.corrupt"}, because silently dropping committed blocks would
  /// forge history.
  Result<WalReplay> replay_wal(const std::string& path);

  [[nodiscard]] bool wal_attached() const { return !wal_path_.empty(); }

 private:
  class HostSession;

  GasSchedule gas_schedule_;
  std::map<Address, Wei> balances_;
  std::map<Address, ContractPtr> contracts_;
  std::map<Address, std::uint64_t> nonces_;
  std::vector<Block> blocks_;
  std::vector<Transaction> pending_;
  std::vector<Receipt> receipts_;
  std::vector<Event> events_;
  std::uint64_t deploy_nonce_ = 0;
  std::uint64_t logical_clock_ = 0;
  std::string wal_path_;  // empty = no WAL attached
};

}  // namespace tradefl::chain
