// The private chain: account balances, deployed contracts, transaction
// execution with receipts, block sealing, and full-chain validation with
// tamper detection. Single-node by construction (the paper deploys on a
// private Ethereum chain); consensus is out of scope, immutability and
// traceability are in scope and tested.
//
// Throughput design (ROADMAP item 4):
//   * submit() rolls back failed transactions through an O(touched) undo
//     journal + copy-on-first-write contract snapshot, never by copying the
//     balance map;
//   * executed transactions queue in a deterministic mempool (nonce asc,
//     fee desc, hash asc) and seal in batches of `seal_every`;
//   * validate() re-hashes headers and Merkle roots in parallel over the
//     shared pool, folding the verdict serially in block order so the
//     result is bit-identical for any thread count;
//   * the WAL keeps a persistent flushed file handle, and snapshot_sync()
//     boots a fresh node from the latest chain snapshot + WAL tail instead
//     of replaying from genesis.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.h"
#include "chain/mempool.h"
#include "chain/vm.h"
#include "common/result.h"

namespace tradefl::chain {

struct ChainValidation {
  bool valid = false;
  std::string problem;  // empty when valid
};

/// Rebuilds a contract instance by name during restore_chain_state; the
/// restored state bytes are loaded into the fresh instance afterwards.
using ContractFactory = std::function<ContractPtr(const std::string& name)>;

/// Outcome of a write-ahead-log replay (full or snapshot-synced).
struct WalReplay {
  std::size_t blocks_replayed = 0;
  /// Records skipped because the restored snapshot already covered them
  /// (snapshot_sync only; a full replay_wal never skips).
  std::size_t blocks_skipped = 0;
  /// True when a torn final record (a crash mid-append) was cut off. All
  /// fully-committed blocks before it were recovered.
  bool tail_truncated = false;
  std::size_t bytes_truncated = 0;
};

class Blockchain {
 public:
  explicit Blockchain(GasSchedule gas_schedule = {});
  ~Blockchain();

  // The chain owns a raw WAL handle; copying it would fork the append
  // stream, so the chain is move/copy-free (sessions hold it by unique_ptr).
  Blockchain(const Blockchain&) = delete;
  Blockchain& operator=(const Blockchain&) = delete;

  // ----- accounts -----

  /// Genesis-style faucet: credits wei out of thin air (testing/setup only).
  void credit(const Address& account, Wei amount);

  [[nodiscard]] Wei balance(const Address& account) const;

  // ----- contracts -----

  /// Deploys a contract; its address derives from the name + deploy nonce.
  Address deploy(ContractPtr contract);

  [[nodiscard]] bool has_contract(const Address& address) const;
  [[nodiscard]] const Contract& contract_at(const Address& address) const;

  // ----- transactions -----

  /// Executes a transaction against the current state and queues it in the
  /// mempool. Value transfer and the contract call are atomic: a revert
  /// rolls everything back (O(touched) via the undo journal) and the receipt
  /// carries the reason. When batch sealing is armed (set_seal_every > 0)
  /// the mempool is sealed inside this call once it reaches the threshold.
  Receipt submit(Transaction tx);

  /// Seals the drained mempool (canonical order) into a new block. Returns
  /// its index.
  std::uint64_t seal_block();

  /// Batch sealing: submit() seals automatically once `every` transactions
  /// are queued. 0 (the construction default) keeps sealing fully manual;
  /// 1 reproduces the dev-chain block-per-transaction behaviour.
  void set_seal_every(std::size_t every) { seal_every_ = every; }
  [[nodiscard]] std::size_t seal_every() const { return seal_every_; }

  /// True when there are unsealed transactions.
  [[nodiscard]] bool has_pending() const { return !mempool_.empty(); }
  [[nodiscard]] std::size_t pending_count() const { return mempool_.size(); }

  // ----- inspection -----

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const Block& block(std::size_t index) const { return blocks_.at(index); }
  [[nodiscard]] const std::vector<Receipt>& receipts() const { return receipts_; }
  [[nodiscard]] std::optional<Receipt> receipt_for(const Hash256& tx_hash) const;
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Walks the whole chain re-hashing headers and Merkle roots; detects any
  /// post-hoc mutation of sealed data. Per-block work runs on the shared
  /// pool; the verdict (and the reported first problem) is identical for
  /// any thread count.
  [[nodiscard]] ChainValidation validate() const;

  /// TEST HOOK: exposes a sealed block for mutation so tamper-detection tests
  /// can corrupt history and watch validate() fail.
  [[nodiscard]] Block& mutable_block_for_test(std::size_t index) { return blocks_.at(index); }

  [[nodiscard]] const GasSchedule& gas_schedule() const { return gas_schedule_; }

  // ----- durability -----

  /// Serializes the complete chain state — balances, deployed contracts (name
  /// + their save_state bytes), nonces, every sealed block, receipts, events,
  /// clocks — as an opaque payload for the snapshot subsystem. Pending
  /// (unsealed) transactions are deliberately excluded: they are not durable
  /// until sealed, exactly like a real mempool.
  [[nodiscard]] Bytes save_chain_state() const;

  /// Restores a save_chain_state payload into this chain (replacing the
  /// genesis-only state). Contracts are re-instantiated through `factory` and
  /// their saved state loaded. Fails closed with a typed Error on malformed
  /// payloads or a factory that does not know a stored contract name.
  /// Detaches any attached WAL — the old log mirrors the old chain, so the
  /// caller must re-attach (attach_wal) to resume durable sealing.
  Status restore_chain_state(const Bytes& bytes, const ContractFactory& factory);

  /// Attaches a write-ahead block log at `path`: every subsequently sealed
  /// block is appended (CRC-framed) through a persistent handle and flushed
  /// before seal_block returns. Any existing file content is replaced by the
  /// currently sealed chain, so the log always mirrors this chain exactly
  /// (genesis excluded — it is reconstructed, never logged).
  Status attach_wal(const std::string& path);

  /// Startup recovery: replays a WAL into this freshly-constructed chain
  /// (genesis only, nothing pending) and attaches it for appends. A torn
  /// final record — the signature of a crash mid-append — is truncated away
  /// and reported; corruption *before* fully-committed records (a damaged
  /// record followed by valid ones) is rejected outright with
  /// Error{"wal.corrupt"}, because silently dropping committed blocks would
  /// forge history.
  Result<WalReplay> replay_wal(const std::string& path);

  /// Persists save_chain_state() under the crash-consistent snapshot framing
  /// (kind "chain.state"); the file snapshot_sync() fast-boots from.
  Status save_snapshot(const std::string& path) const;

  /// Fast catch-up: restores the snapshot at `snapshot_path`, then replays
  /// only the WAL tail — records the snapshot already covers are CRC-checked
  /// and skipped without decoding. Falls back to a full replay_wal when no
  /// snapshot exists (cold start), keeps replay_wal's torn-tail/mid-log
  /// semantics in the tail, and leaves the WAL attached. A WAL that ends
  /// below the snapshot height is rewritten to mirror the restored chain.
  /// Like replay_wal, this recovers the *block history*; execution state
  /// (balances, contract storage, receipts) is the snapshot's — the WAL logs
  /// sealed blocks in canonical mempool order, not execution order, so it is
  /// not an execution journal.
  Result<WalReplay> snapshot_sync(const std::string& snapshot_path,
                                  const std::string& wal_path, const ContractFactory& factory);

  [[nodiscard]] bool wal_attached() const { return wal_file_ != nullptr; }

 private:
  class HostSession;

  /// First 8 bytes of a SHA-256 output, which is already uniform. The map is
  /// lookup-only (never iterated, never serialized), so the implementation-
  /// defined bucket order can't leak into any hash or byte stream.
  struct TxHashKey {
    std::size_t operator()(const Hash256& hash) const noexcept;
  };

  void detach_wal();
  Status open_wal_handle(const std::string& path);
  void rebuild_indexes();

  GasSchedule gas_schedule_;
  std::map<Address, Wei> balances_;
  std::map<Address, ContractPtr> contracts_;
  std::map<Address, std::uint64_t> nonces_;
  std::vector<Block> blocks_;
  Mempool mempool_;
  std::size_t seal_every_ = 0;  // 0 = manual sealing only
  std::vector<Receipt> receipts_;
  std::vector<Event> events_;
  /// tx hash -> receipts_ index; rebuilt on restore/replay, never persisted.
  std::unordered_map<Hash256, std::size_t, TxHashKey> receipt_index_;
  /// header_hashes_[i] == blocks_[i].header.hash(), maintained at seal time
  /// so sealing and WAL replay never re-hash the previous header; validate()
  /// deliberately ignores it and re-hashes from the raw blocks.
  std::vector<Hash256> header_hashes_;
  std::uint64_t deploy_nonce_ = 0;
  std::uint64_t logical_clock_ = 0;
  std::string wal_path_;            // empty = no WAL attached
  std::FILE* wal_file_ = nullptr;   // persistent append handle, flushed per seal
};

}  // namespace tradefl::chain
