// Web3-style client facade (the paper uses the Web3 API for all data
// interaction between organizations and the contract). Wraps transaction
// construction, ABI encoding, submission, and receipt/return decoding in a
// call-like interface, with optional auto-sealing of one block per call (the
// behaviour of a dev-mode private chain).
#pragma once

#include <string>
#include <vector>

#include "chain/blockchain.h"

namespace tradefl::chain {

struct CallOutcome {
  Receipt receipt;
  std::vector<AbiValue> returned;  // decoded return values (empty on revert)
};

class Web3Client {
 public:
  explicit Web3Client(Blockchain& chain, bool auto_seal = true)
      : chain_(&chain), auto_seal_(auto_seal) {}

  /// Sends a contract call transaction. Never throws on revert — inspect
  /// outcome.receipt.success / revert_reason (like a JSON-RPC client).
  CallOutcome call(const Address& from, const Address& contract, const std::string& method,
                   std::vector<AbiValue> args = {}, Wei value = 0);

  /// Like call(), but throws std::runtime_error on revert — for scripted
  /// flows where a failure is a bug.
  CallOutcome call_or_throw(const Address& from, const Address& contract,
                            const std::string& method, std::vector<AbiValue> args = {},
                            Wei value = 0);

  /// Plain value transfer between accounts.
  Receipt transfer(const Address& from, const Address& to, Wei value);

  [[nodiscard]] Wei balance(const Address& account) const { return chain_->balance(account); }
  [[nodiscard]] Blockchain& chain() { return *chain_; }

 private:
  Blockchain* chain_;
  bool auto_seal_;
};

}  // namespace tradefl::chain
