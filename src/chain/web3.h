// Web3-style client facade (the paper uses the Web3 API for all data
// interaction between organizations and the contract). Wraps transaction
// construction, ABI encoding, submission, and receipt/return decoding in a
// call-like interface. Sealing policy is delegated to the chain's batch
// mempool: `seal_every = 1` (the default) reproduces the dev-mode
// block-per-call behaviour, K > 1 seals every K submitted transactions, and
// 0 leaves sealing fully manual.
//
// Fault tolerance: the client accepts a FaultInjector that can make any call
// fail before it reaches the chain — transient submission failures and gas
// exhaustion (retryable) or injected reverts (not retryable) — and a
// RetryPolicy that call_with_retry() uses to survive the transient class with
// capped exponential backoff. Backoff delays are *simulated* (accumulated in
// CallOutcome::simulated_backoff_seconds, never slept), so retried flows stay
// deterministic and fast; the jitter is seeded, not wall-clock derived.
#pragma once

#include <string>
#include <vector>

#include "chain/blockchain.h"
#include "common/faults.h"
#include "common/result.h"

namespace tradefl::chain {

struct CallOutcome {
  Receipt receipt;
  std::vector<AbiValue> returned;  // decoded return values (empty on revert)

  /// True when the receipt was synthesized by the fault injector (the chain
  /// never saw the transaction).
  bool injected_fault = false;
  /// True for failures worth retrying (submission failure, gas exhaustion);
  /// false for reverts, which are contract-level outcomes.
  bool transient = false;

  /// Populated by call_with_retry: attempts consumed and total simulated
  /// backoff "waited" across them.
  int attempts = 1;
  double simulated_backoff_seconds = 0.0;
};

/// Capped exponential backoff with deterministic seeded jitter. The policy is
/// the ONLY sanctioned way to retry contract calls (tfl-lint's ad-hoc-retry
/// rule bans loops around `->call(` elsewhere).
struct RetryPolicy {
  int max_attempts = 4;                 // total attempts, including the first
  double base_backoff_seconds = 0.05;   // delay before the second attempt
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;     // cap per individual delay
  double jitter_fraction = 0.1;         // +/- fraction applied per delay
  std::uint64_t jitter_seed = 17;       // seeds the deterministic jitter
};

class Web3Client {
 public:
  /// Arms the chain's batch sealing with `seal_every` (see
  /// Blockchain::set_seal_every). The previous `bool auto_seal` flag maps
  /// cleanly: true -> 1 (seal per call), false -> 0 (manual).
  explicit Web3Client(Blockchain& chain, std::size_t seal_every = 1) : chain_(&chain) {
    chain_->set_seal_every(seal_every);
  }

  /// Arms fault injection for subsequent calls; nullptr (the default)
  /// restores fault-free behaviour. The injector must outlive the client's
  /// use of it. Calls are keyed by a per-client monotone call index.
  void set_fault_injector(const FaultInjector* injector) { injector_ = injector; }

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Sends a contract call transaction. Never throws on revert — inspect
  /// outcome.receipt.success / revert_reason (like a JSON-RPC client).
  CallOutcome call(const Address& from, const Address& contract, const std::string& method,
                   std::vector<AbiValue> args = {}, Wei value = 0);

  /// Like call(), but throws std::runtime_error on revert — for scripted
  /// flows where a failure is a bug.
  CallOutcome call_or_throw(const Address& from, const Address& contract,
                            const std::string& method, std::vector<AbiValue> args = {},
                            Wei value = 0);

  /// Retrying call: transient failures (injected submission failures and gas
  /// exhaustion) are retried per the RetryPolicy; reverts return an Error
  /// immediately. Returns the successful outcome (with attempts and
  /// simulated backoff populated) or an Error whose code is "revert" or
  /// "retry-exhausted".
  Result<CallOutcome> call_with_retry(const Address& from, const Address& contract,
                                      const std::string& method,
                                      const std::vector<AbiValue>& args = {}, Wei value = 0);

  /// Plain value transfer between accounts.
  Receipt transfer(const Address& from, const Address& to, Wei value);

  [[nodiscard]] Wei balance(const Address& account) const { return chain_->balance(account); }
  [[nodiscard]] Blockchain& chain() { return *chain_; }

  /// Lifetime retry statistics (also exported as obs counters
  /// `retry.attempts` / `retry.giveups` when observability is enabled).
  [[nodiscard]] std::uint64_t retry_attempts() const { return retry_attempts_; }
  [[nodiscard]] std::uint64_t retry_giveups() const { return retry_giveups_; }
  [[nodiscard]] std::uint64_t injected_faults() const { return injected_faults_; }

  /// Checkpoint hooks: the call index keys injector decisions and the retry
  /// sequence keys jitter streams, so a resumed session must restore both for
  /// its fault schedule to continue exactly where the killed run stopped.
  [[nodiscard]] std::uint64_t call_index() const { return call_index_; }
  [[nodiscard]] std::uint64_t retry_sequence() const { return retry_sequence_; }
  void restore_fault_cursor(std::uint64_t call_index, std::uint64_t retry_sequence) {
    call_index_ = call_index;
    retry_sequence_ = retry_sequence;
  }

 private:
  /// Consults the injector for the next call; true when a fault was
  /// synthesized into `outcome` (the chain must not be touched).
  bool inject_fault(const std::string& method, std::uint64_t gas_limit, CallOutcome& outcome);

  Blockchain* chain_;
  const FaultInjector* injector_ = nullptr;
  RetryPolicy retry_policy_{};
  std::uint64_t call_index_ = 0;       // keys injector decisions
  std::uint64_t retry_sequence_ = 0;   // keys jitter streams
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t retry_giveups_ = 0;
  std::uint64_t injected_faults_ = 0;
};

}  // namespace tradefl::chain
