// The TradeFL smart contract (Sec. III-F, Table I, Fig. 3). Implements the
// paper's five ABI functions:
//   depositSubmit()      — issue bonds (escrow) to the contract
//   contributionSubmit() — report the optimal profile {d_i*, f_i*}
//   payoffCalculate()    — compute the redistribution r*_{i,j} (Eq. 9)
//   payoffTransfer()     — execute the redistribution and refund margins
//   profileRecord()      — read back the recorded profile for arbitration
// plus `register()`, which the Fig. 3 procedure performs in step 1.
//
// All arithmetic is deterministic Fixed (1e-9) math. Units: data sizes are
// supplied in GB (s_i / 1e9) and frequencies in GHz, with γ pre-scaled by
// 1e9 accordingly, so χ_i = d_i s_i + λ f_i stays comfortably inside the
// fixed-point range while r_{i,j} keeps its Eq. (9) value.
// Settlement moves integer wei at 1e9 wei per payoff unit; the pairwise
// amounts are computed once per unordered pair and applied antisymmetrically,
// so budget balance holds EXACTLY in integer wei (Definition 5 / Theorem 2).
#pragma once

#include <cstdint>
#include <vector>

#include "chain/vm.h"

namespace tradefl::chain {

struct TradeFlContractConfig {
  /// γ · 1e9 — incentive intensity re-scaled for GB/GHz units (see above).
  Fixed gamma_scaled;

  /// λ — resource-magnitude parameter of Eq. (9).
  Fixed lambda;

  /// ρ — competition matrix, row-major n*n, zero diagonal.
  std::vector<Fixed> rho;
  std::size_t org_count = 0;

  /// s_i in GB, one per organization (fixed facts agreed off-chain).
  std::vector<Fixed> data_size_gb;

  /// Minimum deposit (wei) an organization must escrow before contributing.
  Wei min_deposit = 0;
};

/// Lifecycle phase of a trading round.
enum class ContractPhase : std::uint8_t { kRegistration = 0, kContribution = 1, kSettled = 2 };

class TradeFlContract final : public Contract {
 public:
  explicit TradeFlContract(TradeFlContractConfig config);

  [[nodiscard]] std::string contract_name() const override { return "TradeFL"; }

  /// Methods (ABI):
  ///   register(address org, u64 index)
  ///   depositSubmit()                       [payable]
  ///   contributionSubmit(fixed d, fixed f_ghz)
  ///   payoffCalculate()
  ///   payoffTransfer()
  ///   profileRecord(u64 index) -> [fixed d, fixed f_ghz, i64 payoff_wei, u64 phase]
  ///   newRound()                            [after settlement: next trading round]
  ///   roundOf() -> [u64]
  ///   phase() -> [u64]
  ///   depositOf(u64 index) -> [i64]
  ///   payoffOf(u64 index) -> [i64]    (net redistribution in wei, after calculate)
  std::vector<AbiValue> call(CallContext& context, const std::string& method,
                             const std::vector<AbiValue>& args) override;

  [[nodiscard]] Bytes save_state() const override;
  void load_state(const Bytes& state) override;

 private:
  struct OrgState {
    Address account{};
    bool registered = false;
    Wei deposit = 0;
    bool contributed = false;
    Fixed d{};
    Fixed f_ghz{};
    Wei net_payoff = 0;  // Σ_j r_{i,j} in wei, set by payoffCalculate
  };

  [[nodiscard]] std::size_t org_index_of(const Address& account) const;
  [[nodiscard]] Fixed chi(std::size_t index) const;  // d_i s_i + λ f_i (GB units)

  std::vector<AbiValue> do_register(CallContext& context, const std::vector<AbiValue>& args);
  std::vector<AbiValue> do_deposit(CallContext& context);
  std::vector<AbiValue> do_contribution(CallContext& context, const std::vector<AbiValue>& args);
  std::vector<AbiValue> do_calculate(CallContext& context);
  std::vector<AbiValue> do_transfer(CallContext& context);
  std::vector<AbiValue> do_profile(CallContext& context, const std::vector<AbiValue>& args) const;
  std::vector<AbiValue> do_new_round(CallContext& context);

  TradeFlContractConfig config_;
  std::vector<OrgState> orgs_;
  ContractPhase phase_ = ContractPhase::kRegistration;
  bool payoffs_calculated_ = false;
  std::uint64_t round_ = 1;
};

}  // namespace tradefl::chain
