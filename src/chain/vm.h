// The contract runtime: gas metering, events, revert semantics, and the
// Contract interface native contracts implement. Contracts are deterministic
// C++ objects whose state is snapshot-serialized around every call, so a
// throwing call rolls the contract (and all balance movements) back exactly —
// the behaviour Solidity's revert gives the paper's prototype.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "chain/abi.h"

namespace tradefl::chain {

struct GasSchedule {
  std::uint64_t base_call = 21'000;
  std::uint64_t per_payload_byte = 16;
  std::uint64_t storage_write = 5'000;
  std::uint64_t storage_read = 200;
  std::uint64_t transfer = 9'000;
  std::uint64_t event_emit = 375;
  std::uint64_t compute = 5;  // per arithmetic "step" a contract reports
};

class OutOfGas : public std::runtime_error {
 public:
  OutOfGas() : std::runtime_error("out of gas") {}
};

/// Thrown by contracts to abort with a reason (Solidity's require/revert).
class Revert : public std::runtime_error {
 public:
  explicit Revert(const std::string& reason) : std::runtime_error(reason) {}
};

class GasMeter {
 public:
  GasMeter(std::uint64_t limit, const GasSchedule& schedule)
      : limit_(limit), schedule_(&schedule) {}

  void charge(std::uint64_t amount) {
    used_ += amount;
    if (used_ > limit_) exhausted();
  }
  void charge_storage_write(std::size_t slots = 1) { charge(schedule_->storage_write * slots); }
  void charge_storage_read(std::size_t slots = 1) { charge(schedule_->storage_read * slots); }
  void charge_transfer() { charge(schedule_->transfer); }
  void charge_event() { charge(schedule_->event_emit); }
  void charge_compute(std::size_t steps = 1) { charge(schedule_->compute * steps); }

  [[nodiscard]] std::uint64_t used() const { return used_; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }

 private:
  /// Cold path, out of line (vm.cpp): counts chain.gas.exhausted, then throws
  /// OutOfGas. Keeps the inline charge() fast path free of obs includes.
  [[noreturn]] void exhausted() const;

  std::uint64_t limit_;
  std::uint64_t used_ = 0;
  const GasSchedule* schedule_;
};

struct Event {
  Address contract;
  std::string name;
  std::vector<AbiValue> fields;
  std::uint64_t block_index = 0;
};

/// Host services a contract may use during a call. Implemented by the
/// Blockchain; narrow by design (no arbitrary state access).
class HostInterface {
 public:
  virtual ~HostInterface() = default;

  /// Moves wei out of the CONTRACT's own balance. Throws Revert on
  /// insufficient funds.
  virtual void contract_transfer(const Address& to, Wei amount) = 0;

  /// Balance lookup (read-only).
  [[nodiscard]] virtual Wei balance_of(const Address& account) const = 0;

  virtual void emit_event(std::string name, std::vector<AbiValue> fields) = 0;
};

/// Everything a contract sees about the current call.
struct CallContext {
  Address caller;
  Address self;
  Wei value = 0;            // wei sent along with the call
  std::uint64_t block_index = 0;
  GasMeter* gas = nullptr;
  HostInterface* host = nullptr;
};

class Contract {
 public:
  virtual ~Contract() = default;

  [[nodiscard]] virtual std::string contract_name() const = 0;

  /// Dispatches a method call. Throw Revert to abort with a reason; any other
  /// exception also reverts (reported with the exception message).
  virtual std::vector<AbiValue> call(CallContext& context, const std::string& method,
                                     const std::vector<AbiValue>& args) = 0;

  /// State snapshot used by the runtime to implement revert: save before the
  /// call, load on failure. Must round-trip exactly.
  [[nodiscard]] virtual Bytes save_state() const = 0;
  virtual void load_state(const Bytes& state) = 0;
};

using ContractPtr = std::unique_ptr<Contract>;

}  // namespace tradefl::chain
