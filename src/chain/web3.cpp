#include "chain/web3.h"

#include <stdexcept>

namespace tradefl::chain {

CallOutcome Web3Client::call(const Address& from, const Address& contract,
                             const std::string& method, std::vector<AbiValue> args, Wei value) {
  Transaction tx;
  tx.from = from;
  tx.to = contract;
  tx.value = value;
  tx.data = encode_call(CallPayload{method, std::move(args)});
  CallOutcome outcome;
  outcome.receipt = chain_->submit(std::move(tx));
  if (auto_seal_) chain_->seal_block();
  if (outcome.receipt.success && !outcome.receipt.return_data.empty()) {
    outcome.returned = decode_values(outcome.receipt.return_data);
  }
  return outcome;
}

CallOutcome Web3Client::call_or_throw(const Address& from, const Address& contract,
                                      const std::string& method, std::vector<AbiValue> args,
                                      Wei value) {
  CallOutcome outcome = call(from, contract, method, std::move(args), value);
  if (!outcome.receipt.success) {
    throw std::runtime_error("web3: " + method + " reverted: " + outcome.receipt.revert_reason);
  }
  return outcome;
}

Receipt Web3Client::transfer(const Address& from, const Address& to, Wei value) {
  Transaction tx;
  tx.from = from;
  tx.to = to;
  tx.value = value;
  Receipt receipt = chain_->submit(std::move(tx));
  if (auto_seal_) chain_->seal_block();
  return receipt;
}

}  // namespace tradefl::chain
