#include "chain/web3.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace tradefl::chain {

bool Web3Client::inject_fault(const std::string& method, std::uint64_t gas_limit,
                              CallOutcome& outcome) {
  if (injector_ == nullptr || !injector_->enabled()) return false;
  const std::uint64_t index = call_index_;
  if (injector_->fail_submission(index)) {
    outcome.receipt.success = false;
    outcome.receipt.revert_reason = "fault: submission failure for " + method;
    outcome.receipt.gas_used = 0;
    outcome.injected_fault = true;
    outcome.transient = true;
    TFL_COUNTER_INC("fault.injected.submit_failure");
  } else if (injector_->exhaust_gas(index)) {
    outcome.receipt.success = false;
    outcome.receipt.revert_reason = "fault: gas exhausted for " + method;
    outcome.receipt.gas_used = gas_limit;
    outcome.injected_fault = true;
    outcome.transient = true;
    TFL_COUNTER_INC("fault.injected.gas_exhaustion");
  } else if (injector_->revert_call(index)) {
    outcome.receipt.success = false;
    outcome.receipt.revert_reason = "fault: injected revert for " + method;
    outcome.receipt.gas_used = 0;
    outcome.injected_fault = true;
    outcome.transient = false;
    TFL_COUNTER_INC("fault.injected.revert");
  }
  if (outcome.injected_fault) ++injected_faults_;
  return outcome.injected_fault;
}

CallOutcome Web3Client::call(const Address& from, const Address& contract,
                             const std::string& method, std::vector<AbiValue> args, Wei value) {
  Transaction tx;
  tx.from = from;
  tx.to = contract;
  tx.value = value;
  tx.data = encode_call(CallPayload{method, std::move(args)});
  CallOutcome outcome;
  // Fault injection happens before submission: a synthesized failure means
  // the chain never saw the transaction, so chain state (balances, nonces,
  // blocks) is identical to the call simply not having happened.
  if (inject_fault(method, tx.gas_limit, outcome)) {
    ++call_index_;
    return outcome;
  }
  ++call_index_;
  outcome.receipt = chain_->submit(std::move(tx));
  if (outcome.receipt.success && !outcome.receipt.return_data.empty()) {
    outcome.returned = decode_values(outcome.receipt.return_data);
  }
  return outcome;
}

CallOutcome Web3Client::call_or_throw(const Address& from, const Address& contract,
                                      const std::string& method, std::vector<AbiValue> args,
                                      Wei value) {
  CallOutcome outcome = call(from, contract, method, std::move(args), value);
  if (!outcome.receipt.success) {
    throw std::runtime_error("web3: " + method + " reverted: " +
                             outcome.receipt.revert_reason + " (gas used " +
                             std::to_string(outcome.receipt.gas_used) + ")");
  }
  return outcome;
}

Result<CallOutcome> Web3Client::call_with_retry(const Address& from, const Address& contract,
                                                const std::string& method,
                                                const std::vector<AbiValue>& args, Wei value) {
  const RetryPolicy& policy = retry_policy_;
  const std::uint64_t sequence = retry_sequence_++;
  double backoff = policy.base_backoff_seconds;
  double total_backoff = 0.0;
  for (int attempt = 1;; ++attempt) {
    CallOutcome outcome = call(from, contract, method, args, value);
    outcome.attempts = attempt;
    outcome.simulated_backoff_seconds = total_backoff;
    if (outcome.receipt.success) return outcome;
    if (!outcome.transient) {
      return Error{"revert", method + " reverted: " + outcome.receipt.revert_reason +
                                 " (gas used " + std::to_string(outcome.receipt.gas_used) +
                                 ", attempt " + std::to_string(attempt) + ")"};
    }
    if (attempt >= policy.max_attempts) {
      ++retry_giveups_;
      TFL_COUNTER_INC("retry.giveups");
      return Error{"retry-exhausted",
                   method + " failed after " + std::to_string(attempt) +
                       " attempts: " + outcome.receipt.revert_reason};
    }
    ++retry_attempts_;
    TFL_COUNTER_INC("retry.attempts");
    // Deterministic jitter: the stream depends only on (policy seed, which
    // retried call this is, attempt), never on wall clock or thread timing.
    Rng jitter_rng(Rng::derive_stream_seed(Rng::derive_stream_seed(policy.jitter_seed, sequence),
                                           static_cast<std::uint64_t>(attempt)));
    const double jitter = 1.0 + policy.jitter_fraction * (2.0 * jitter_rng.uniform01() - 1.0);
    const double delay =
        std::min(std::max(backoff * jitter, 0.0), policy.max_backoff_seconds);
    total_backoff += delay;
    TFL_OBSERVE("retry.backoff.seconds", delay);
    backoff = std::min(backoff * policy.backoff_multiplier, policy.max_backoff_seconds);
  }
}

Receipt Web3Client::transfer(const Address& from, const Address& to, Wei value) {
  Transaction tx;
  tx.from = from;
  tx.to = to;
  tx.value = value;
  return chain_->submit(std::move(tx));
}

}  // namespace tradefl::chain
