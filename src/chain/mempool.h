// The explicit mempool: transactions executed by Blockchain::submit queue
// here (with their precomputed hashes) until a seal drains them into a
// block. Draining is deterministic — (nonce asc, fee desc, hash asc) — so
// the sealed block layout depends only on the set of queued transactions,
// never on arrival interleaving, and the fee field gives callers a priority
// lever without touching execution order (execution happens at submit time,
// dev-chain style; the mempool governs durable block layout only).
#pragma once

#include <cstddef>
#include <vector>

#include "chain/tx.h"

namespace tradefl::chain {

/// One queued transaction plus the hash computed once at submit time; the
/// hash doubles as the ordering tiebreak here and the Merkle leaf at seal,
/// so sealing never re-hashes transaction bytes.
struct PendingTx {
  Transaction tx;
  Hash256 hash{};
};

class Mempool {
 public:
  void add(Transaction tx, const Hash256& hash);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Removes and returns every queued transaction in canonical order.
  [[nodiscard]] std::vector<PendingTx> drain();

  /// Canonical order: nonce ascending, fee descending (higher fee seals
  /// earlier within a nonce rank), transaction hash ascending. Per-sender
  /// nonces make hashes unique, so this is a strict total order.
  [[nodiscard]] static bool ordered_before(const PendingTx& a, const PendingTx& b);

 private:
  std::vector<PendingTx> entries_;
};

}  // namespace tradefl::chain
