// Accounts, addresses, and transactions of the in-process Ethereum-like
// chain. Wei is a plain int64 (the simulation's money supply fits easily);
// contract calls carry an ABI-encoded payload in `data`.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "chain/bytes.h"
#include "chain/sha256.h"

namespace tradefl::chain {

using Wei = std::int64_t;

/// 20-byte account identifier, derived like Ethereum's: trailing bytes of a
/// hash of the owner's public name/key material.
struct Address {
  std::array<std::uint8_t, 20> bytes{};

  [[nodiscard]] static Address from_name(const std::string& name);
  [[nodiscard]] static Address zero() { return Address{}; }

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] bool is_zero() const;

  auto operator<=>(const Address&) const = default;
};

struct Transaction {
  Address from;
  Address to;            // zero address = contract deployment
  Wei value = 0;
  std::uint64_t nonce = 0;
  Bytes data;            // ABI-encoded call: method + arguments
  std::uint64_t gas_limit = 10'000'000;
  /// Priority fee: orders the mempool (higher seals earlier within a nonce
  /// rank), is part of the signed/hashed bytes, but is never charged — the
  /// simulation's economics live in the contract, not in gas auctions.
  Wei fee = 0;

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] Hash256 hash() const;
};

/// Execution outcome recorded on-chain next to the transaction.
struct Receipt {
  Hash256 tx_hash{};
  bool success = false;
  std::string revert_reason;
  std::uint64_t gas_used = 0;
  Bytes return_data;
  std::uint64_t block_index = 0;
};

}  // namespace tradefl::chain
