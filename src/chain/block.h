// Blocks: a header chained by SHA-256 over the previous header hash plus a
// Merkle root over the block's transactions. Provides the immutability and
// traceability guarantees the TradeFL prototype needs for arbitration
// (Sec. III-F): any mutation of a past transaction changes the Merkle root,
// which breaks every subsequent prev-hash link.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/tx.h"

namespace tradefl::chain {

struct BlockHeader {
  std::uint64_t index = 0;
  std::uint64_t timestamp = 0;  // logical clock maintained by the chain
  Hash256 prev_hash{};
  Hash256 tx_root{};

  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] Hash256 hash() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  /// Merkle root over the transaction hashes (empty block -> zero root;
  /// odd layers duplicate the last node, Bitcoin-style).
  [[nodiscard]] static Hash256 merkle_root(const std::vector<Transaction>& transactions);

  /// Same tree over precomputed leaf hashes. Takes the leaves by value and
  /// compacts them in place, so the whole reduction reuses one buffer — the
  /// seal path hands over the hashes the mempool already carries and never
  /// re-hashes transaction bytes or allocates per level.
  [[nodiscard]] static Hash256 merkle_root_of_leaves(std::vector<Hash256> leaves);

  /// True when header.tx_root matches the transactions.
  [[nodiscard]] bool verify_tx_root() const;
};

/// Merkle inclusion proof: the sibling hashes from a transaction leaf up to
/// the root. Lets an arbitrator verify "this exact transaction is in that
/// sealed block" with O(log n) hashes and no access to the other
/// transactions — the light-client flavour of the paper's arbitration story.
struct MerkleProof {
  std::uint64_t leaf_index = 0;
  std::vector<Hash256> siblings;  // bottom-up; pairing side derives from index

  /// Builds the proof for transactions[index]. Throws std::out_of_range.
  [[nodiscard]] static MerkleProof build(const std::vector<Transaction>& transactions,
                                         std::size_t index);

  /// Verifies that `leaf` hashes up to `root` along this proof.
  [[nodiscard]] bool verify(const Hash256& leaf, const Hash256& root) const;
};

}  // namespace tradefl::chain
