#include "chain/tradefl_contract.h"

#include <stdexcept>

#include "obs/obs.h"

namespace tradefl::chain {
namespace {

/// 1 payoff unit settles as Fixed::kScale wei: the Fixed raw value IS the
/// wei amount.
Wei fixed_to_wei(Fixed value) {
  // Fixed raw is value * 1e9, which is exactly the wei amount.
  return value.raw();
}

}  // namespace

TradeFlContract::TradeFlContract(TradeFlContractConfig config) : config_(std::move(config)) {
  const std::size_t n = config_.org_count;
  if (n < 2) throw std::invalid_argument("TradeFL contract: need >= 2 organizations");
  if (config_.rho.size() != n * n) {
    throw std::invalid_argument("TradeFL contract: rho must be n*n");
  }
  if (config_.data_size_gb.size() != n) {
    throw std::invalid_argument("TradeFL contract: data_size_gb must have n entries");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (config_.rho[i * n + i].raw() != 0) {
      throw std::invalid_argument("TradeFL contract: rho diagonal must be zero");
    }
  }
  if (config_.min_deposit < 0) {
    throw std::invalid_argument("TradeFL contract: negative min_deposit");
  }
  orgs_.resize(n);
}

std::size_t TradeFlContract::org_index_of(const Address& account) const {
  for (std::size_t i = 0; i < orgs_.size(); ++i) {
    if (orgs_[i].registered && orgs_[i].account == account) return i;
  }
  throw Revert("caller is not a registered organization");
}

Fixed TradeFlContract::chi(std::size_t index) const {
  const OrgState& org = orgs_[index];
  return org.d * config_.data_size_gb[index] + config_.lambda * org.f_ghz;
}

std::vector<AbiValue> TradeFlContract::call(CallContext& context, const std::string& method,
                                            const std::vector<AbiValue>& args) {
  TFL_COUNTER_INC("contract.calls.count");
  TFL_SPAN("contract." + method);
  if (method == "register") return do_register(context, args);
  if (method == "depositSubmit") return do_deposit(context);
  if (method == "contributionSubmit") return do_contribution(context, args);
  if (method == "payoffCalculate") return do_calculate(context);
  if (method == "payoffTransfer") return do_transfer(context);
  if (method == "profileRecord") return do_profile(context, args);
  if (method == "newRound") return do_new_round(context);
  if (method == "roundOf") {
    context.gas->charge_storage_read();
    return {round_};
  }
  if (method == "phase") {
    context.gas->charge_storage_read();
    return {static_cast<std::uint64_t>(phase_)};
  }
  if (method == "depositOf") {
    context.gas->charge_storage_read();
    const std::size_t index = static_cast<std::size_t>(abi_u64(args, 0));
    if (index >= orgs_.size()) throw Revert("org index out of range");
    return {static_cast<std::int64_t>(orgs_[index].deposit)};
  }
  if (method == "payoffOf") {
    context.gas->charge_storage_read();
    const std::size_t index = static_cast<std::size_t>(abi_u64(args, 0));
    if (index >= orgs_.size()) throw Revert("org index out of range");
    if (!payoffs_calculated_) throw Revert("payoffs not calculated yet");
    return {static_cast<std::int64_t>(orgs_[index].net_payoff)};
  }
  throw Revert("unknown method: " + method);
}

std::vector<AbiValue> TradeFlContract::do_register(CallContext& context,
                                                   const std::vector<AbiValue>& args) {
  if (phase_ != ContractPhase::kRegistration) throw Revert("registration closed");
  const Address org_address = abi_address(args, 0);
  const std::size_t index = static_cast<std::size_t>(abi_u64(args, 1));
  if (index >= orgs_.size()) throw Revert("org index out of range");
  if (orgs_[index].registered) throw Revert("index already registered");
  for (const OrgState& other : orgs_) {
    if (other.registered && other.account == org_address) {
      throw Revert("address already registered");
    }
  }
  context.gas->charge_storage_write();
  orgs_[index].registered = true;
  orgs_[index].account = org_address;
  context.host->emit_event("Registered",
                           {org_address, static_cast<std::uint64_t>(index)});
  return {};
}

std::vector<AbiValue> TradeFlContract::do_deposit(CallContext& context) {
  const std::size_t index = org_index_of(context.caller);
  if (phase_ == ContractPhase::kSettled) throw Revert("round already settled");
  if (context.value <= 0) throw Revert("deposit must send positive value");
  context.gas->charge_storage_write();
  orgs_[index].deposit += context.value;
  context.host->emit_event("DepositSubmitted",
                           {context.caller, static_cast<std::int64_t>(context.value)});
  // Once every organization escrowed at least min_deposit, contributions open.
  bool everyone_funded = true;
  for (const OrgState& org : orgs_) {
    if (!org.registered || org.deposit < config_.min_deposit) everyone_funded = false;
  }
  if (everyone_funded && phase_ == ContractPhase::kRegistration) {
    phase_ = ContractPhase::kContribution;
  }
  return {static_cast<std::int64_t>(orgs_[index].deposit)};
}

std::vector<AbiValue> TradeFlContract::do_contribution(CallContext& context,
                                                       const std::vector<AbiValue>& args) {
  const std::size_t index = org_index_of(context.caller);
  if (phase_ != ContractPhase::kContribution) throw Revert("contributions not open");
  if (orgs_[index].deposit < config_.min_deposit) throw Revert("deposit below minimum");
  const Fixed d = abi_fixed(args, 0);
  const Fixed f_ghz = abi_fixed(args, 1);
  if (d < Fixed::from_int(0) || d > Fixed::from_int(1)) throw Revert("d outside [0, 1]");
  if (f_ghz < Fixed::from_int(0)) throw Revert("negative frequency");
  context.gas->charge_storage_write(2);
  orgs_[index].d = d;
  orgs_[index].f_ghz = f_ghz;
  orgs_[index].contributed = true;
  context.host->emit_event("ContributionSubmitted", {context.caller, d, f_ghz});
  return {};
}

std::vector<AbiValue> TradeFlContract::do_calculate(CallContext& context) {
  if (phase_ != ContractPhase::kContribution) throw Revert("contributions not open");
  for (const OrgState& org : orgs_) {
    if (!org.contributed) throw Revert("not all organizations contributed");
  }
  const std::size_t n = orgs_.size();
  // r_{i,j} = γ ρ_{i,j} (χ_i - χ_j) (Eq. 9), computed once per unordered
  // pair with the SYMMETRIZED coefficient so the settlement matrix is
  // exactly antisymmetric in integer wei (budget balance, Definition 5).
  std::vector<Wei> net(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Fixed chi_i = chi(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      context.gas->charge_compute(4);
      const Fixed chi_j = chi(j);
      const Fixed rho_ij = config_.rho[i * n + j];
      const Fixed amount = config_.gamma_scaled * rho_ij * (chi_i - chi_j);
      const Wei wei = fixed_to_wei(amount);
      net[i] += wei;
      net[j] -= wei;
    }
  }
  context.gas->charge_storage_write(n);
  for (std::size_t i = 0; i < n; ++i) orgs_[i].net_payoff = net[i];
  payoffs_calculated_ = true;
  context.host->emit_event("PayoffCalculated", {static_cast<std::uint64_t>(n)});
  return {};
}

std::vector<AbiValue> TradeFlContract::do_transfer(CallContext& context) {
  if (!payoffs_calculated_) throw Revert("payoffCalculate must run first");
  if (phase_ == ContractPhase::kSettled) throw Revert("already settled");

  // Check solvency first: every negative net payoff must be covered by that
  // organization's escrowed deposit, otherwise the whole settlement reverts.
  for (const OrgState& org : orgs_) {
    if (org.net_payoff < 0 && org.deposit < -org.net_payoff) {
      throw Revert("deposit of " + org.account.to_hex() + " cannot cover its redistribution");
    }
  }

  // Apply the redistribution against deposits, then refund the remaining
  // margin to each organization's account ("refunds the margin", Fig. 3).
  for (OrgState& org : orgs_) {
    context.gas->charge_storage_write();
    org.deposit += org.net_payoff;
  }
  for (OrgState& org : orgs_) {
    if (org.deposit > 0) {
      context.host->contract_transfer(org.account, org.deposit);
      context.host->emit_event(
          "PayoffTransferred",
          {org.account, static_cast<std::int64_t>(org.net_payoff),
           static_cast<std::int64_t>(org.deposit)});
      org.deposit = 0;
    }
  }
  phase_ = ContractPhase::kSettled;
  return {};
}

std::vector<AbiValue> TradeFlContract::do_profile(CallContext& context,
                                                  const std::vector<AbiValue>& args) const {
  context.gas->charge_storage_read(3);
  const std::size_t index = static_cast<std::size_t>(abi_u64(args, 0));
  if (index >= orgs_.size()) throw Revert("org index out of range");
  const OrgState& org = orgs_[index];
  if (!org.contributed) throw Revert("no contribution recorded for this organization");
  context.host->emit_event("ProfileRecorded",
                           {org.account, org.d, org.f_ghz,
                            static_cast<std::int64_t>(org.net_payoff)});
  return {org.d, org.f_ghz, static_cast<std::int64_t>(org.net_payoff),
          static_cast<std::uint64_t>(phase_)};
}

std::vector<AbiValue> TradeFlContract::do_new_round(CallContext& context) {
  // Successive trading rounds (the repeated interaction of real consortia):
  // after settlement, any registered organization can open the next round.
  // Registrations persist; deposits, contributions, and payoffs reset.
  (void)org_index_of(context.caller);  // membership gate; throws for strangers
  if (phase_ != ContractPhase::kSettled) throw Revert("current round not settled");
  for (OrgState& org : orgs_) {
    org.deposit = 0;
    org.contributed = false;
    org.d = Fixed{};
    org.f_ghz = Fixed{};
    org.net_payoff = 0;
  }
  payoffs_calculated_ = false;
  phase_ = ContractPhase::kRegistration;
  ++round_;
  context.gas->charge_storage_write(orgs_.size());
  context.host->emit_event("RoundOpened", {round_});
  // Registration is already complete, so deposits immediately gate the phase;
  // re-run the funded check (everyone is at zero, so we stay in Registration
  // until deposits arrive).
  return {round_};
}

Bytes TradeFlContract::save_state() const {
  ByteWriter writer;
  writer.put_u8(static_cast<std::uint8_t>(phase_));
  writer.put_u8(payoffs_calculated_ ? 1 : 0);
  writer.put_u64(round_);
  writer.put_u32(static_cast<std::uint32_t>(orgs_.size()));
  for (const OrgState& org : orgs_) {
    writer.put_bytes(Bytes(org.account.bytes.begin(), org.account.bytes.end()));
    writer.put_u8(org.registered ? 1 : 0);
    writer.put_i64(org.deposit);
    writer.put_u8(org.contributed ? 1 : 0);
    writer.put_i64(org.d.raw());
    writer.put_i64(org.f_ghz.raw());
    writer.put_i64(org.net_payoff);
  }
  return writer.data();
}

void TradeFlContract::load_state(const Bytes& state) {
  ByteReader reader(state);
  phase_ = static_cast<ContractPhase>(reader.get_u8());
  payoffs_calculated_ = reader.get_u8() != 0;
  round_ = reader.get_u64();
  const std::uint32_t count = reader.get_u32();
  if (count != orgs_.size()) throw std::invalid_argument("contract: state org count mismatch");
  for (OrgState& org : orgs_) {
    const Bytes account = reader.get_bytes();
    std::copy(account.begin(), account.end(), org.account.bytes.begin());
    org.registered = reader.get_u8() != 0;
    org.deposit = reader.get_i64();
    org.contributed = reader.get_u8() != 0;
    org.d = Fixed::from_raw(reader.get_i64());
    org.f_ghz = Fixed::from_raw(reader.get_i64());
    org.net_payoff = reader.get_i64();
  }
}

}  // namespace tradefl::chain
