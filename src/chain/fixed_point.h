// Deterministic fixed-point arithmetic for on-chain math. Smart contracts
// cannot use floating point (consensus requires bit-identical evaluation on
// every node), so the TradeFL contract computes the redistribution r_{i,j}
// (Eq. 9) in Fixed values: int64 raw units at 1e-9 resolution ("gwei-like").
// All operations are overflow-checked and throw std::overflow_error.
#pragma once

#include <cstdint>
#include <string>

namespace tradefl::chain {

class Fixed {
 public:
  static constexpr std::int64_t kScale = 1'000'000'000;  // 1e9 raw units per 1.0

  constexpr Fixed() = default;

  /// From raw units (no scaling).
  [[nodiscard]] static Fixed from_raw(std::int64_t raw);

  /// From a double, rounded to the nearest raw unit. Throws on overflow/NaN.
  [[nodiscard]] static Fixed from_double(double value);

  /// From an integer number of whole units.
  [[nodiscard]] static Fixed from_int(std::int64_t whole);

  [[nodiscard]] std::int64_t raw() const { return raw_; }
  [[nodiscard]] double to_double() const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Fixed operator+(Fixed other) const;
  [[nodiscard]] Fixed operator-(Fixed other) const;
  [[nodiscard]] Fixed operator-() const;

  /// Full-width multiply: (a * b) / scale via 128-bit intermediate.
  [[nodiscard]] Fixed operator*(Fixed other) const;

  /// (a * scale) / b via 128-bit intermediate; throws on divide-by-zero.
  [[nodiscard]] Fixed operator/(Fixed other) const;

  auto operator<=>(const Fixed&) const = default;

 private:
  explicit constexpr Fixed(std::int64_t raw) : raw_(raw) {}
  std::int64_t raw_ = 0;
};

}  // namespace tradefl::chain
