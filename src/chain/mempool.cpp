#include "chain/mempool.h"

#include <algorithm>
#include <utility>

namespace tradefl::chain {

void Mempool::add(Transaction tx, const Hash256& hash) {
  entries_.push_back(PendingTx{std::move(tx), hash});
}

bool Mempool::ordered_before(const PendingTx& a, const PendingTx& b) {
  if (a.tx.nonce != b.tx.nonce) return a.tx.nonce < b.tx.nonce;
  if (a.tx.fee != b.tx.fee) return a.tx.fee > b.tx.fee;
  return a.hash < b.hash;
}

std::vector<PendingTx> Mempool::drain() {
  std::vector<PendingTx> drained = std::move(entries_);
  entries_.clear();
  std::sort(drained.begin(), drained.end(), &Mempool::ordered_before);
  return drained;
}

}  // namespace tradefl::chain
