#include "chain/blockchain.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/journal.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/snapshot.h"
#include "obs/obs.h"

namespace tradefl::chain {
namespace {

// WAL record framing: [u32 magic "TFWL"] [u32 payload length] [payload]
// [u32 CRC32(payload)]. One record per sealed block, appended and flushed
// before seal_block returns.
constexpr std::uint32_t kWalMagic = 0x4C575446u;  // "TFWL" little-endian
constexpr std::size_t kWalFrameOverhead = 4 + 4 + 4;
// v2: transactions carry the mempool priority fee.
constexpr std::uint32_t kChainStateVersion = 2;
// Snapshot-file framing for save_snapshot / snapshot_sync; the payload embeds
// its own kChainStateVersion on top.
constexpr char kChainSnapshotKind[] = "chain.state";
constexpr std::uint32_t kChainSnapshotVersion = 1;

using BalanceJournal = MapUndoJournal<std::map<Address, Wei>>;

void put_fixed(ByteWriter& writer, const std::uint8_t* data, std::size_t size) {
  writer.put_bytes(Bytes(data, data + size));
}

Hash256 get_hash(ByteReader& reader) {
  const Bytes raw = reader.get_bytes();
  if (raw.size() != 32) throw std::invalid_argument("chain: hash field is not 32 bytes");
  Hash256 hash{};
  std::copy(raw.begin(), raw.end(), hash.begin());
  return hash;
}

Address get_address(ByteReader& reader) {
  const Bytes raw = reader.get_bytes();
  if (raw.size() != 20) throw std::invalid_argument("chain: address field is not 20 bytes");
  Address address{};
  std::copy(raw.begin(), raw.end(), address.bytes.begin());
  return address;
}

void put_tx(ByteWriter& writer, const Transaction& tx) {
  put_fixed(writer, tx.from.bytes.data(), tx.from.bytes.size());
  put_fixed(writer, tx.to.bytes.data(), tx.to.bytes.size());
  writer.put_i64(tx.value);
  writer.put_u64(tx.nonce);
  writer.put_bytes(tx.data);
  writer.put_u64(tx.gas_limit);
  writer.put_i64(tx.fee);
}

Transaction get_tx(ByteReader& reader) {
  Transaction tx;
  tx.from = get_address(reader);
  tx.to = get_address(reader);
  tx.value = reader.get_i64();
  tx.nonce = reader.get_u64();
  tx.data = reader.get_bytes();
  tx.gas_limit = reader.get_u64();
  tx.fee = reader.get_i64();
  return tx;
}

Bytes serialize_block(const Block& block) {
  ByteWriter writer;
  writer.put_u64(block.header.index);
  writer.put_u64(block.header.timestamp);
  put_fixed(writer, block.header.prev_hash.data(), block.header.prev_hash.size());
  put_fixed(writer, block.header.tx_root.data(), block.header.tx_root.size());
  writer.put_u64(block.transactions.size());
  for (const Transaction& tx : block.transactions) put_tx(writer, tx);
  return writer.data();
}

Block decode_block(const Bytes& payload) {
  ByteReader reader(payload);
  Block block;
  block.header.index = reader.get_u64();
  block.header.timestamp = reader.get_u64();
  block.header.prev_hash = get_hash(reader);
  block.header.tx_root = get_hash(reader);
  const std::uint64_t tx_count = reader.get_u64();
  for (std::uint64_t i = 0; i < tx_count; ++i) block.transactions.push_back(get_tx(reader));
  if (!reader.exhausted()) throw std::invalid_argument("chain: trailing bytes in block record");
  return block;
}

void append_u32_le(Bytes& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
  }
}

Bytes frame_wal_record(const Block& block) {
  const Bytes payload = serialize_block(block);
  Bytes frame;
  append_u32_le(frame, kWalMagic);
  append_u32_le(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  append_u32_le(frame, crc32(payload.data(), payload.size()));
  return frame;
}

std::uint32_t read_u32_le(const Bytes& raw, std::size_t offset) {
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(raw[offset++]) << shift;
  }
  return value;
}

std::uint64_t read_u64_le(const Bytes& raw, std::size_t offset) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(raw[offset++]) << shift;
  }
  return value;
}

/// CRC-validated bounds of the frame at `offset` — everything except the
/// block decode, so snapshot-synced boots can skip already-covered records
/// after an integrity check without paying for deserialization.
struct WalFrame {
  std::size_t payload_at = 0;
  std::uint32_t length = 0;
  std::size_t end = 0;  // first byte past the frame
};

bool frame_bounds(const Bytes& raw, std::size_t offset, WalFrame& frame) {
  if (raw.size() - offset < kWalFrameOverhead) return false;
  if (read_u32_le(raw, offset) != kWalMagic) return false;
  const std::uint32_t length = read_u32_le(raw, offset + 4);
  if (raw.size() - offset - kWalFrameOverhead < length) return false;
  const std::size_t payload_at = offset + 8;
  if (crc32(raw.data() + payload_at, length) != read_u32_le(raw, payload_at + length)) {
    return false;
  }
  frame.payload_at = payload_at;
  frame.length = length;
  frame.end = payload_at + length + 4;
  return true;
}

/// Tries to parse one CRC-valid, decodable WAL frame at `offset`. Returns the
/// block and advances `offset` past the frame on success.
bool parse_wal_frame(const Bytes& raw, std::size_t& offset, Block& block) {
  WalFrame frame;
  if (!frame_bounds(raw, offset, frame)) return false;
  try {
    block = decode_block(
        Bytes(raw.begin() + static_cast<std::ptrdiff_t>(frame.payload_at),
              raw.begin() + static_cast<std::ptrdiff_t>(frame.payload_at + frame.length)));
  } catch (const std::exception&) {
    return false;
  }
  offset = frame.end;
  return true;
}

/// Evidence probe for mid-log corruption: is there ANY complete valid frame
/// at or after `from`? A torn tail (crash mid-append) can never contain one;
/// a flipped byte in the middle of the log always leaves the later,
/// fully-committed records intact and findable.
bool valid_frame_exists_after(const Bytes& raw, std::size_t from) {
  for (std::size_t offset = from; offset + kWalFrameOverhead <= raw.size(); ++offset) {
    std::size_t probe = offset;
    Block ignored;
    if (parse_wal_frame(raw, probe, ignored)) return true;
  }
  return false;
}

Status write_file_bytes(const std::string& path, const Bytes& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return Error{"io", "cannot open " + path + " for writing"};
  const std::size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    return Error{"io", "write failed for " + path};
  }
  return ok_status();
}

Result<Bytes> read_file_bytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Error{"io", "cannot open " + path + " for reading"};
  Bytes raw;
  std::uint8_t chunk[4096];
  std::size_t read = 0;
  while ((read = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    raw.insert(raw.end(), chunk, chunk + read);
  }
  const bool clean = std::ferror(file) == 0;
  std::fclose(file);
  if (!clean) return Error{"io", "read failed for " + path};
  return raw;
}

}  // namespace

std::size_t Blockchain::TxHashKey::operator()(const Hash256& hash) const noexcept {
  std::size_t value = 0;
  std::memcpy(&value, hash.data(), sizeof value);
  return value;
}

/// Host implementation bound to one in-flight call: restricts transfers to
/// the callee contract's own funds, stamps events with the block index, and
/// journals every balance it is about to touch so a revert can undo exactly
/// those entries.
class Blockchain::HostSession final : public HostInterface {
 public:
  HostSession(Blockchain& chain, Address self, GasMeter& gas, std::uint64_t block_index,
              BalanceJournal& journal)
      : chain_(chain), self_(self), gas_(gas), block_index_(block_index), journal_(journal) {}

  void contract_transfer(const Address& to, Wei amount) override {
    gas_.charge_transfer();
    if (amount < 0) throw Revert("negative transfer");
    journal_.note(chain_.balances_, self_);
    Wei& from_balance = chain_.balances_[self_];
    if (from_balance < amount) throw Revert("insufficient contract balance");
    journal_.note(chain_.balances_, to);
    from_balance -= amount;
    chain_.balances_[to] += amount;
  }

  [[nodiscard]] Wei balance_of(const Address& account) const override {
    gas_.charge_storage_read();
    return chain_.balance(account);
  }

  void emit_event(std::string name, std::vector<AbiValue> fields) override {
    gas_.charge_event();
    staged_events_.push_back(Event{self_, std::move(name), std::move(fields), block_index_});
  }

  /// Events only reach the chain log if the call succeeds.
  void commit_events() {
    for (Event& event : staged_events_) chain_.events_.push_back(std::move(event));
    staged_events_.clear();
  }

 private:
  Blockchain& chain_;
  Address self_;
  GasMeter& gas_;
  std::uint64_t block_index_;
  BalanceJournal& journal_;
  std::vector<Event> staged_events_;
};

Blockchain::Blockchain(GasSchedule gas_schedule) : gas_schedule_(gas_schedule) {
  // Genesis block.
  Block genesis;
  genesis.header.index = 0;
  genesis.header.timestamp = logical_clock_++;
  genesis.header.tx_root = Block::merkle_root(genesis.transactions);
  header_hashes_.push_back(genesis.header.hash());
  blocks_.push_back(std::move(genesis));
}

Blockchain::~Blockchain() { detach_wal(); }

void Blockchain::detach_wal() {
  if (wal_file_ != nullptr) {
    std::fclose(wal_file_);
    wal_file_ = nullptr;
  }
  wal_path_.clear();
}

Status Blockchain::open_wal_handle(const std::string& path) {
  detach_wal();
  wal_file_ = std::fopen(path.c_str(), "ab");
  if (wal_file_ == nullptr) return Error{"io", "cannot open " + path + " for append"};
  wal_path_ = path;
  return ok_status();
}

void Blockchain::rebuild_indexes() {
  receipt_index_.clear();
  receipt_index_.reserve(receipts_.size());
  for (std::size_t i = 0; i < receipts_.size(); ++i) {
    receipt_index_.emplace(receipts_[i].tx_hash, i);
  }
  header_hashes_.clear();
  header_hashes_.reserve(blocks_.size());
  for (const Block& block : blocks_) header_hashes_.push_back(block.header.hash());
}

void Blockchain::credit(const Address& account, Wei amount) {
  if (amount < 0) throw std::invalid_argument("chain: cannot credit negative wei");
  balances_[account] += amount;
}

Wei Blockchain::balance(const Address& account) const {
  const auto it = balances_.find(account);
  return it == balances_.end() ? 0 : it->second;
}

Address Blockchain::deploy(ContractPtr contract) {
  if (!contract) throw std::invalid_argument("chain: null contract");
  const std::string salt =
      contract->contract_name() + "#" + std::to_string(deploy_nonce_++);
  const Address address = Address::from_name(salt);
  if (contracts_.count(address) > 0) throw std::logic_error("chain: address collision");
  TFL_DEBUG << "deploy " << contract->contract_name() << " at " << address.to_hex();
  contracts_[address] = std::move(contract);
  return address;
}

bool Blockchain::has_contract(const Address& address) const {
  return contracts_.count(address) > 0;
}

const Contract& Blockchain::contract_at(const Address& address) const {
  const auto it = contracts_.find(address);
  if (it == contracts_.end()) throw std::out_of_range("chain: no contract at address");
  return *it->second;
}

Receipt Blockchain::submit(Transaction tx) {
  TFL_SPAN("chain.submit");
  tx.nonce = nonces_[tx.from]++;
  Receipt receipt;
  receipt.tx_hash = tx.hash();
  receipt.block_index = blocks_.size();  // the block it will be sealed into

  GasMeter gas(tx.gas_limit, gas_schedule_);
  const auto contract_it = contracts_.find(tx.to);

  // Atomic rollback in O(touched): the journal records each balance entry on
  // first touch (including entries the transaction creates, which revert
  // erases again) and the contract state is captured copy-on-first-write —
  // only once a contract call is actually about to run. Nonce consumption
  // deliberately survives a revert (replay protection, as on Ethereum), so
  // nonces_ is never journaled.
  BalanceJournal journal;
  Bytes state_snapshot;
  bool state_captured = false;

  try {
    gas.charge(gas_schedule_.base_call);
    gas.charge(gas_schedule_.per_payload_byte * tx.data.size());

    // Up-front value transfer (to a contract or an externally owned account).
    if (tx.value < 0) throw Revert("negative value");
    journal.note(balances_, tx.from);
    Wei& sender_balance = balances_[tx.from];
    if (sender_balance < tx.value) throw Revert("insufficient sender balance");
    journal.note(balances_, tx.to);
    sender_balance -= tx.value;
    balances_[tx.to] += tx.value;

    if (contract_it != contracts_.end()) {
      TFL_SCOPED_TIMER("chain.call.seconds");
      state_snapshot = contract_it->second->save_state();
      state_captured = true;
      HostSession host(*this, tx.to, gas, receipt.block_index, journal);
      CallContext context;
      context.caller = tx.from;
      context.self = tx.to;
      context.value = tx.value;
      context.block_index = receipt.block_index;
      context.gas = &gas;
      context.host = &host;
      const CallPayload payload = decode_call(tx.data);
      const std::vector<AbiValue> returned =
          contract_it->second->call(context, payload.method, payload.args);
      receipt.return_data = encode_values(returned);
      host.commit_events();
    } else if (!tx.data.empty()) {
      throw Revert("call data sent to a non-contract account");
    }
    receipt.success = true;
  } catch (const std::exception& error) {
    journal.revert(balances_);
    if (state_captured) contract_it->second->load_state(state_snapshot);
    receipt.success = false;
    receipt.revert_reason = error.what();
  }

  receipt.gas_used = gas.used();
  TFL_COUNTER_INC("chain.tx.count");
  if (!receipt.success) TFL_COUNTER_INC("chain.tx.reverted");
  TFL_COUNTER_ADD("chain.gas.used", receipt.gas_used);
  TFL_OBSERVE_BUCKETS("chain.call.gas", static_cast<double>(receipt.gas_used), 25e3, 50e3,
                      100e3, 250e3, 500e3, 1e6, 5e6);
  receipt_index_.emplace(receipt.tx_hash, receipts_.size());
  receipts_.push_back(receipt);
  mempool_.add(std::move(tx), receipt.tx_hash);
  TFL_GAUGE_SET("chain.mempool.depth", static_cast<double>(mempool_.size()));
  if (seal_every_ > 0 && mempool_.size() >= seal_every_) seal_block();
  return receipt;
}

std::uint64_t Blockchain::seal_block() {
  std::vector<PendingTx> drained = mempool_.drain();
  TFL_GAUGE_SET("chain.mempool.depth", 0.0);
  TFL_OBSERVE_BUCKETS("chain.seal.batch_size", static_cast<double>(drained.size()), 1, 8, 32,
                      128, 512, 2048);
  Block block;
  block.header.index = blocks_.size();
  block.header.timestamp = logical_clock_++;
  block.header.prev_hash = header_hashes_.back();
  std::vector<Hash256> leaves;
  leaves.reserve(drained.size());
  block.transactions.reserve(drained.size());
  for (PendingTx& entry : drained) {
    leaves.push_back(entry.hash);
    block.transactions.push_back(std::move(entry.tx));
  }
  block.header.tx_root = Block::merkle_root_of_leaves(std::move(leaves));
  header_hashes_.push_back(block.header.hash());
  blocks_.push_back(std::move(block));
  TFL_COUNTER_INC("chain.block.count");
  if (wal_file_ != nullptr) {
    // Write-ahead durability: the record is on disk (flushed through the
    // persistent handle) before the seal returns. A failed append is a
    // broken durability promise — fatal, not a degradation.
    const Bytes frame = frame_wal_record(blocks_.back());
    const std::size_t written = std::fwrite(frame.data(), 1, frame.size(), wal_file_);
    if (written != frame.size() || std::fflush(wal_file_) != 0) {
      throw std::runtime_error("chain: WAL append failed for " + wal_path_);
    }
    TFL_COUNTER_INC("chain.wal.appends");
  }
  return blocks_.back().header.index;
}

std::optional<Receipt> Blockchain::receipt_for(const Hash256& tx_hash) const {
  const auto it = receipt_index_.find(tx_hash);
  if (it == receipt_index_.end()) return std::nullopt;
  return receipts_[it->second];
}

ChainValidation Blockchain::validate() const {
  TFL_LATENCY_TIMER("chain.validate.seconds");
  const std::size_t count = blocks_.size();
  // Per-block re-hash + Merkle recompute fan out over the shared pool into
  // disjoint slots; the verdict folds serially in block order below, so the
  // result (and the reported first problem) is bit-identical for any thread
  // count — the PR 3 determinism contract. The prev-hash link check needs
  // the neighbour's re-hashed header, so it lives in the serial fold.
  std::vector<std::string> problems(count);
  std::vector<Hash256> rehashed(count);
  parallel_for(global_pool(), 0, count, 64,
               [&](std::size_t lo, std::size_t hi, std::size_t /*worker*/) {
                 for (std::size_t i = lo; i < hi; ++i) {
                   const Block& checked = blocks_[i];
                   rehashed[i] = checked.header.hash();
                   if (checked.header.index != i) {
                     problems[i] = "block " + std::to_string(i) + ": wrong index";
                   } else if (!checked.verify_tx_root()) {
                     problems[i] = "block " + std::to_string(i) + ": Merkle root mismatch";
                   }
                 }
               });
  for (std::size_t i = 0; i < count; ++i) {
    if (!problems[i].empty()) return {false, problems[i]};
    if (i > 0 && blocks_[i].header.prev_hash != rehashed[i - 1]) {
      return {false, "block " + std::to_string(i) + ": broken prev-hash link"};
    }
  }
  return {true, ""};
}

// ----- durability -----

Bytes Blockchain::save_chain_state() const {
  ByteWriter writer;
  writer.put_u32(kChainStateVersion);
  writer.put_u64(balances_.size());
  for (const auto& [address, amount] : balances_) {
    put_fixed(writer, address.bytes.data(), address.bytes.size());
    writer.put_i64(amount);
  }
  writer.put_u64(contracts_.size());
  for (const auto& [address, contract] : contracts_) {
    put_fixed(writer, address.bytes.data(), address.bytes.size());
    writer.put_string(contract->contract_name());
    writer.put_bytes(contract->save_state());
  }
  writer.put_u64(nonces_.size());
  for (const auto& [address, nonce] : nonces_) {
    put_fixed(writer, address.bytes.data(), address.bytes.size());
    writer.put_u64(nonce);
  }
  writer.put_u64(blocks_.size());
  for (const Block& block : blocks_) writer.put_bytes(serialize_block(block));
  writer.put_u64(receipts_.size());
  for (const Receipt& receipt : receipts_) {
    put_fixed(writer, receipt.tx_hash.data(), receipt.tx_hash.size());
    writer.put_u8(receipt.success ? 1 : 0);
    writer.put_string(receipt.revert_reason);
    writer.put_u64(receipt.gas_used);
    writer.put_bytes(receipt.return_data);
    writer.put_u64(receipt.block_index);
  }
  writer.put_u64(events_.size());
  for (const Event& event : events_) {
    put_fixed(writer, event.contract.bytes.data(), event.contract.bytes.size());
    writer.put_string(event.name);
    writer.put_bytes(encode_values(event.fields));
    writer.put_u64(event.block_index);
  }
  writer.put_u64(deploy_nonce_);
  writer.put_u64(logical_clock_);
  return writer.data();
}

Status Blockchain::restore_chain_state(const Bytes& bytes, const ContractFactory& factory) {
  // Decode into locals first: a malformed payload must leave this chain
  // exactly as it was (fail closed, never partial state).
  std::map<Address, Wei> balances;
  std::map<Address, ContractPtr> contracts;
  std::map<Address, std::uint64_t> nonces;
  std::vector<Block> blocks;
  std::vector<Receipt> receipts;
  std::vector<Event> events;
  std::uint64_t deploy_nonce = 0;
  std::uint64_t logical_clock = 0;
  try {
    ByteReader reader(bytes);
    const std::uint32_t version = reader.get_u32();
    if (version != kChainStateVersion) {
      return Error{"chain.snapshot", "unsupported chain state version " +
                                         std::to_string(version)};
    }
    const std::uint64_t balance_count = reader.get_u64();
    for (std::uint64_t i = 0; i < balance_count; ++i) {
      const Address address = get_address(reader);
      balances[address] = reader.get_i64();
    }
    const std::uint64_t contract_count = reader.get_u64();
    for (std::uint64_t i = 0; i < contract_count; ++i) {
      const Address address = get_address(reader);
      const std::string name = reader.get_string();
      const Bytes state = reader.get_bytes();
      ContractPtr contract = factory ? factory(name) : nullptr;
      if (!contract) {
        return Error{"chain.snapshot", "no factory for contract '" + name + "'"};
      }
      contract->load_state(state);
      contracts[address] = std::move(contract);
    }
    const std::uint64_t nonce_count = reader.get_u64();
    for (std::uint64_t i = 0; i < nonce_count; ++i) {
      const Address address = get_address(reader);
      nonces[address] = reader.get_u64();
    }
    const std::uint64_t block_count = reader.get_u64();
    if (block_count == 0) return Error{"chain.snapshot", "chain state holds no blocks"};
    for (std::uint64_t i = 0; i < block_count; ++i) {
      blocks.push_back(decode_block(reader.get_bytes()));
    }
    const std::uint64_t receipt_count = reader.get_u64();
    for (std::uint64_t i = 0; i < receipt_count; ++i) {
      Receipt receipt;
      receipt.tx_hash = get_hash(reader);
      receipt.success = reader.get_u8() == 1;
      receipt.revert_reason = reader.get_string();
      receipt.gas_used = reader.get_u64();
      receipt.return_data = reader.get_bytes();
      receipt.block_index = reader.get_u64();
      receipts.push_back(std::move(receipt));
    }
    const std::uint64_t event_count = reader.get_u64();
    for (std::uint64_t i = 0; i < event_count; ++i) {
      Event event;
      event.contract = get_address(reader);
      event.name = reader.get_string();
      event.fields = decode_values(reader.get_bytes());
      event.block_index = reader.get_u64();
      events.push_back(std::move(event));
    }
    deploy_nonce = reader.get_u64();
    logical_clock = reader.get_u64();
    if (!reader.exhausted()) {
      return Error{"chain.snapshot", "trailing bytes after chain state"};
    }
  } catch (const std::exception& error) {
    return Error{"chain.snapshot", std::string("malformed chain state: ") + error.what()};
  }
  balances_ = std::move(balances);
  contracts_ = std::move(contracts);
  nonces_ = std::move(nonces);
  blocks_ = std::move(blocks);
  mempool_.clear();
  receipts_ = std::move(receipts);
  events_ = std::move(events);
  deploy_nonce_ = deploy_nonce;
  logical_clock_ = logical_clock;
  rebuild_indexes();
  // The attached WAL (if any) mirrors the chain this restore just replaced;
  // appending restored-era blocks to it would interleave two histories.
  // Callers that want durability re-attach explicitly.
  detach_wal();
  return ok_status();
}

Status Blockchain::attach_wal(const std::string& path) {
  Bytes content;
  for (std::size_t i = 1; i < blocks_.size(); ++i) {
    const Bytes frame = frame_wal_record(blocks_[i]);
    content.insert(content.end(), frame.begin(), frame.end());
  }
  detach_wal();
  auto written = write_file_bytes(path, content);
  if (!written.ok()) return written.error();
  return open_wal_handle(path);
}

Result<WalReplay> Blockchain::replay_wal(const std::string& path) {
  if (blocks_.size() != 1 || !mempool_.empty() || !receipts_.empty()) {
    return Error{"wal.state", "replay_wal requires a freshly-constructed chain"};
  }
  WalReplay report;
  if (!std::filesystem::exists(path)) {
    // First boot: start an empty log.
    auto created = write_file_bytes(path, {});
    if (!created.ok()) return created.error();
    auto attached = open_wal_handle(path);
    if (!attached.ok()) return attached.error();
    return report;
  }

  auto raw_read = read_file_bytes(path);
  if (!raw_read.ok()) return raw_read.error();
  const Bytes& raw = raw_read.value();

  std::size_t offset = 0;
  std::size_t last_good = 0;
  while (offset < raw.size()) {
    Block block;
    std::size_t next = offset;
    bool frame_ok = parse_wal_frame(raw, next, block);
    if (frame_ok) {
      // Chain continuity: a CRC-valid record that does not extend this chain
      // is corruption evidence too (e.g. a record swapped in from another
      // log), never silently skippable.
      if (block.header.index != blocks_.size() ||
          block.header.prev_hash != header_hashes_.back() || !block.verify_tx_root()) {
        return Error{"wal.corrupt",
                     path + ": record at offset " + std::to_string(offset) +
                         " does not extend the chain (block " +
                         std::to_string(block.header.index) + ")"};
      }
      header_hashes_.push_back(block.header.hash());
      blocks_.push_back(std::move(block));
      ++report.blocks_replayed;
      offset = next;
      last_good = offset;
      continue;
    }
    // Damaged record. If any complete valid record exists beyond it, the
    // damage is mid-log — refusing is the only honest answer, because
    // truncating here would drop fully-committed blocks.
    if (valid_frame_exists_after(raw, offset + 1)) {
      return Error{"wal.corrupt", path + ": corrupt record at offset " +
                                      std::to_string(offset) +
                                      " precedes committed records (mid-log corruption)"};
    }
    // Torn tail: a crash mid-append. Cut it off and keep everything durable.
    report.tail_truncated = true;
    report.bytes_truncated = raw.size() - last_good;
    auto truncated = write_file_bytes(
        path, Bytes(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(last_good)));
    if (!truncated.ok()) return truncated.error();
    TFL_WARN << "chain WAL " << path << ": truncated torn tail of "
             << report.bytes_truncated << " bytes";
    break;
  }
  logical_clock_ = blocks_.back().header.timestamp + 1;
  auto attached = open_wal_handle(path);
  if (!attached.ok()) return attached.error();
  TFL_COUNTER_ADD("chain.wal.replayed", report.blocks_replayed);
  return report;
}

namespace {

/// Snapshot payload codec: one length-prefixed chain-state blob. Mirrors the
/// decode lambda in snapshot_sync exactly.
SnapshotWriter encode_chain_snapshot(const Bytes& state) {
  SnapshotWriter writer;
  writer.put_bytes(state);
  return writer;
}

}  // namespace

Status Blockchain::save_snapshot(const std::string& path) const {
  auto written = write_snapshot_file(path, kChainSnapshotKind, kChainSnapshotVersion,
                                     encode_chain_snapshot(save_chain_state()));
  if (!written.ok()) return written.error();
  TFL_COUNTER_INC("snapshot.writes");
  TFL_COUNTER_ADD("snapshot.bytes", written.value());
  return ok_status();
}

Result<WalReplay> Blockchain::snapshot_sync(const std::string& snapshot_path,
                                            const std::string& wal_path,
                                            const ContractFactory& factory) {
  if (blocks_.size() != 1 || !mempool_.empty() || !receipts_.empty()) {
    return Error{"wal.state", "snapshot_sync requires a freshly-constructed chain"};
  }
  if (!snapshot_exists(snapshot_path)) {
    // Cold start (the crash may predate the first durable snapshot): the WAL
    // alone is the history, so fall back to the full genesis replay.
    return replay_wal(wal_path);
  }
  auto payload = read_snapshot_file(snapshot_path, kChainSnapshotKind, kChainSnapshotVersion);
  if (!payload.ok()) return payload.error();
  auto state = decode_snapshot<Bytes>(payload.value(),
                                      [](SnapshotReader& reader) { return reader.get_bytes(); });
  if (!state.ok()) return state.error();
  const Status restored = restore_chain_state(state.value(), factory);
  if (!restored.ok()) return restored.error();
  TFL_COUNTER_INC("snapshot.resumes");

  WalReplay report;
  if (!std::filesystem::exists(wal_path)) {
    // Snapshot without a log (first boot after an out-of-band snapshot):
    // start the mirror from the restored chain.
    const Status attached = attach_wal(wal_path);
    if (!attached.ok()) return attached.error();
    return report;
  }
  auto raw_read = read_file_bytes(wal_path);
  if (!raw_read.ok()) return raw_read.error();
  const Bytes& raw = raw_read.value();

  std::size_t offset = 0;
  std::size_t last_good = 0;
  bool torn = false;
  while (offset < raw.size()) {
    WalFrame frame;
    if (frame_bounds(raw, offset, frame) && frame.length >= 8 &&
        read_u64_le(raw, frame.payload_at) < blocks_.size()) {
      // Integrity-checked record the snapshot already covers: skip without
      // decoding. (The index is the first u64 of the block payload.)
      ++report.blocks_skipped;
      offset = frame.end;
      last_good = offset;
      continue;
    }
    Block block;
    std::size_t next = offset;
    if (parse_wal_frame(raw, next, block)) {
      // Tail record past the snapshot height: same continuity contract as
      // replay_wal — it must extend the restored chain exactly.
      if (block.header.index != blocks_.size() ||
          block.header.prev_hash != header_hashes_.back() || !block.verify_tx_root()) {
        return Error{"wal.corrupt",
                     wal_path + ": record at offset " + std::to_string(offset) +
                         " does not extend the snapshot-restored chain (block " +
                         std::to_string(block.header.index) + ")"};
      }
      header_hashes_.push_back(block.header.hash());
      blocks_.push_back(std::move(block));
      ++report.blocks_replayed;
      offset = next;
      last_good = offset;
      continue;
    }
    if (valid_frame_exists_after(raw, offset + 1)) {
      return Error{"wal.corrupt", wal_path + ": corrupt record at offset " +
                                      std::to_string(offset) +
                                      " precedes committed records (mid-log corruption)"};
    }
    report.tail_truncated = true;
    report.bytes_truncated = raw.size() - last_good;
    torn = true;
    TFL_WARN << "chain WAL " << wal_path << ": truncated torn tail of "
             << report.bytes_truncated << " bytes";
    break;
  }
  if (blocks_.back().header.timestamp >= logical_clock_) {
    logical_clock_ = blocks_.back().header.timestamp + 1;
  }
  if (report.blocks_skipped + report.blocks_replayed + 1 < blocks_.size()) {
    // The log ends below the snapshot height (e.g. its own tail was lost):
    // re-mirror the restored chain so appends stay gap-free.
    const Status attached = attach_wal(wal_path);
    if (!attached.ok()) return attached.error();
    return report;
  }
  if (torn) {
    auto truncated = write_file_bytes(
        wal_path, Bytes(raw.begin(), raw.begin() + static_cast<std::ptrdiff_t>(last_good)));
    if (!truncated.ok()) return truncated.error();
  }
  auto attached = open_wal_handle(wal_path);
  if (!attached.ok()) return attached.error();
  TFL_COUNTER_ADD("chain.wal.replayed", report.blocks_replayed);
  return report;
}

}  // namespace tradefl::chain
