#include "chain/blockchain.h"

#include <stdexcept>

#include "common/logging.h"
#include "obs/obs.h"

namespace tradefl::chain {

/// Host implementation bound to one in-flight call: restricts transfers to
/// the callee contract's own funds and stamps events with the block index.
class Blockchain::HostSession final : public HostInterface {
 public:
  HostSession(Blockchain& chain, Address self, GasMeter& gas, std::uint64_t block_index)
      : chain_(chain), self_(self), gas_(gas), block_index_(block_index) {}

  void contract_transfer(const Address& to, Wei amount) override {
    gas_.charge_transfer();
    if (amount < 0) throw Revert("negative transfer");
    Wei& from_balance = chain_.balances_[self_];
    if (from_balance < amount) throw Revert("insufficient contract balance");
    from_balance -= amount;
    chain_.balances_[to] += amount;
  }

  [[nodiscard]] Wei balance_of(const Address& account) const override {
    gas_.charge_storage_read();
    return chain_.balance(account);
  }

  void emit_event(std::string name, std::vector<AbiValue> fields) override {
    gas_.charge_event();
    staged_events_.push_back(Event{self_, std::move(name), std::move(fields), block_index_});
  }

  /// Events only reach the chain log if the call succeeds.
  void commit_events() {
    for (Event& event : staged_events_) chain_.events_.push_back(std::move(event));
    staged_events_.clear();
  }

 private:
  Blockchain& chain_;
  Address self_;
  GasMeter& gas_;
  std::uint64_t block_index_;
  std::vector<Event> staged_events_;
};

Blockchain::Blockchain(GasSchedule gas_schedule) : gas_schedule_(gas_schedule) {
  // Genesis block.
  Block genesis;
  genesis.header.index = 0;
  genesis.header.timestamp = logical_clock_++;
  genesis.header.tx_root = Block::merkle_root(genesis.transactions);
  blocks_.push_back(std::move(genesis));
}

void Blockchain::credit(const Address& account, Wei amount) {
  if (amount < 0) throw std::invalid_argument("chain: cannot credit negative wei");
  balances_[account] += amount;
}

Wei Blockchain::balance(const Address& account) const {
  const auto it = balances_.find(account);
  return it == balances_.end() ? 0 : it->second;
}

Address Blockchain::deploy(ContractPtr contract) {
  if (!contract) throw std::invalid_argument("chain: null contract");
  const std::string salt =
      contract->contract_name() + "#" + std::to_string(deploy_nonce_++);
  const Address address = Address::from_name(salt);
  if (contracts_.count(address) > 0) throw std::logic_error("chain: address collision");
  TFL_DEBUG << "deploy " << contract->contract_name() << " at " << address.to_hex();
  contracts_[address] = std::move(contract);
  return address;
}

bool Blockchain::has_contract(const Address& address) const {
  return contracts_.count(address) > 0;
}

const Contract& Blockchain::contract_at(const Address& address) const {
  const auto it = contracts_.find(address);
  if (it == contracts_.end()) throw std::out_of_range("chain: no contract at address");
  return *it->second;
}

Receipt Blockchain::submit(Transaction tx) {
  TFL_SPAN("chain.submit");
  tx.nonce = nonces_[tx.from]++;
  Receipt receipt;
  receipt.tx_hash = tx.hash();
  receipt.block_index = blocks_.size();  // the block it will be sealed into

  GasMeter gas(tx.gas_limit, gas_schedule_);
  const auto contract_it = contracts_.find(tx.to);

  // Snapshot for atomic rollback.
  const std::map<Address, Wei> balance_snapshot = balances_;
  Bytes state_snapshot;
  if (contract_it != contracts_.end()) state_snapshot = contract_it->second->save_state();

  try {
    gas.charge(gas_schedule_.base_call);
    gas.charge(gas_schedule_.per_payload_byte * tx.data.size());

    // Up-front value transfer (to a contract or an externally owned account).
    if (tx.value < 0) throw Revert("negative value");
    Wei& sender_balance = balances_[tx.from];
    if (sender_balance < tx.value) throw Revert("insufficient sender balance");
    sender_balance -= tx.value;
    balances_[tx.to] += tx.value;

    if (contract_it != contracts_.end()) {
      TFL_SCOPED_TIMER("chain.call.seconds");
      HostSession host(*this, tx.to, gas, receipt.block_index);
      CallContext context;
      context.caller = tx.from;
      context.self = tx.to;
      context.value = tx.value;
      context.block_index = receipt.block_index;
      context.gas = &gas;
      context.host = &host;
      const CallPayload payload = decode_call(tx.data);
      const std::vector<AbiValue> returned =
          contract_it->second->call(context, payload.method, payload.args);
      receipt.return_data = encode_values(returned);
      host.commit_events();
    } else if (!tx.data.empty()) {
      throw Revert("call data sent to a non-contract account");
    }
    receipt.success = true;
  } catch (const std::exception& error) {
    balances_ = balance_snapshot;
    if (contract_it != contracts_.end()) contract_it->second->load_state(state_snapshot);
    receipt.success = false;
    receipt.revert_reason = error.what();
  }

  receipt.gas_used = gas.used();
  TFL_COUNTER_INC("chain.tx.count");
  if (!receipt.success) TFL_COUNTER_INC("chain.tx.reverted");
  TFL_COUNTER_ADD("chain.gas.used", receipt.gas_used);
  TFL_OBSERVE_BUCKETS("chain.call.gas", static_cast<double>(receipt.gas_used), 25e3, 50e3,
                      100e3, 250e3, 500e3, 1e6, 5e6);
  receipts_.push_back(receipt);
  pending_.push_back(std::move(tx));
  return receipt;
}

std::uint64_t Blockchain::seal_block() {
  Block block;
  block.header.index = blocks_.size();
  block.header.timestamp = logical_clock_++;
  block.header.prev_hash = blocks_.back().header.hash();
  block.transactions = std::move(pending_);
  pending_.clear();
  block.header.tx_root = Block::merkle_root(block.transactions);
  blocks_.push_back(std::move(block));
  TFL_COUNTER_INC("chain.block.count");
  return blocks_.back().header.index;
}

std::optional<Receipt> Blockchain::receipt_for(const Hash256& tx_hash) const {
  for (const Receipt& receipt : receipts_) {
    if (receipt.tx_hash == tx_hash) return receipt;
  }
  return std::nullopt;
}

ChainValidation Blockchain::validate() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& block = blocks_[i];
    if (block.header.index != i) {
      return {false, "block " + std::to_string(i) + ": wrong index"};
    }
    if (!block.verify_tx_root()) {
      return {false, "block " + std::to_string(i) + ": Merkle root mismatch"};
    }
    if (i > 0 && block.header.prev_hash != blocks_[i - 1].header.hash()) {
      return {false, "block " + std::to_string(i) + ": broken prev-hash link"};
    }
  }
  return {true, ""};
}

}  // namespace tradefl::chain
