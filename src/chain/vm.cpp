#include "chain/vm.h"

// The runtime types are header-only aside from this translation unit, which
// exists so the library has a home for future out-of-line definitions and so
// vtables/typeinfo for the exception types are emitted exactly once.

namespace tradefl::chain {}  // namespace tradefl::chain
