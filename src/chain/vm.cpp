#include "chain/vm.h"

#include "obs/obs.h"

// Aside from the cold GasMeter path below, the runtime types are header-only;
// this translation unit also anchors vtables/typeinfo for the exception types
// so they are emitted exactly once.

namespace tradefl::chain {

void GasMeter::exhausted() const {
  TFL_COUNTER_INC("chain.gas.exhausted");
  throw OutOfGas();
}

}  // namespace tradefl::chain
