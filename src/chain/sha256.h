// SHA-256 (FIPS 180-4), implemented from the specification. Used for
// transaction/block hashing, address derivation, and the tamper-evidence
// properties the TradeFL prototype relies on (Sec. III-F).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "chain/bytes.h"

namespace tradefl::chain {

using Hash256 = std::array<std::uint8_t, 32>;

/// One-shot digest.
Hash256 sha256(const Bytes& data);
Hash256 sha256(const std::string& text);

/// Hash of two concatenated hashes (Merkle combination).
Hash256 sha256_pair(const Hash256& left, const Hash256& right);

std::string hash_to_hex(const Hash256& hash);

/// Streaming interface (used by block hashing to avoid copies).
class Sha256 {
 public:
  Sha256();
  void update(const std::uint8_t* data, std::size_t size);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  [[nodiscard]] Hash256 finish();

 private:
  void process_block(const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace tradefl::chain
