// Application Binary Interface for contract calls (the paper's footnote 5:
// "the functions developed in the smart contract are ABIs in Ethereum").
// A call payload is a method name plus a list of typed values; encoding is
// deterministic so payloads can be hashed into transactions.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "chain/bytes.h"
#include "chain/fixed_point.h"
#include "chain/tx.h"

namespace tradefl::chain {

using AbiValue = std::variant<std::uint64_t, std::int64_t, std::string, Address, Bytes, Fixed>;

/// Human-readable type tag ("u64", "fixed", ...), used in error messages.
std::string abi_type_name(const AbiValue& value);

struct CallPayload {
  std::string method;
  std::vector<AbiValue> args;
};

Bytes encode_call(const CallPayload& payload);
CallPayload decode_call(const Bytes& data);  // throws std::invalid_argument on malformed input

Bytes encode_values(const std::vector<AbiValue>& values);
std::vector<AbiValue> decode_values(const Bytes& data);

/// Typed extractors with index/type error reporting.
std::uint64_t abi_u64(const std::vector<AbiValue>& args, std::size_t index);
std::int64_t abi_i64(const std::vector<AbiValue>& args, std::size_t index);
const std::string& abi_string(const std::vector<AbiValue>& args, std::size_t index);
Address abi_address(const std::vector<AbiValue>& args, std::size_t index);
Fixed abi_fixed(const std::vector<AbiValue>& args, std::size_t index);

}  // namespace tradefl::chain
