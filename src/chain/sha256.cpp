#include "chain/sha256.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TFL_SHA_NI_CANDIDATE 1
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace tradefl::chain {
namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

#ifdef TFL_SHA_NI_CANDIDATE

/// CPUID leaf 7 EBX bit 29 — the SHA extensions. Probed once at first use;
/// the result only selects between two bit-identical compression functions.
bool cpu_has_sha_extensions() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 29)) != 0;
}

/// kRoundConstants[i..i+3] as one vector lane load — exactly the K operand
/// the sha256rnds2 pair for rounds i..i+3 expects.
__attribute__((target("sha,sse4.1,ssse3"))) inline __m128i round_k(int i) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kRoundConstants[i]));
}

/// One 64-byte block through the SHA-NI instructions (sha256rnds2 does two
/// rounds per issue; sha256msg1/msg2 run the message schedule). The lane
/// choreography — ABEF/CDGH packing, the 0x0E high-half shuffle between the
/// two rnds2 issues — is the canonical Intel sequence for these instructions.
/// Bit-identical to the portable process_block; the NIST vectors in
/// tests/chain/test_sha256.cpp hold for both paths.
__attribute__((target("sha,sse4.1,ssse3"))) void process_block_sha_ni(
    std::uint32_t* state, const std::uint8_t* block) {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack the linear a..h state into the ABEF / CDGH registers the
  // instructions operate on.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  const __m128i abef_save = state0;
  const __m128i cdgh_save = state1;
  __m128i msg, msg0, msg1, msg2, msg3;

  // Rounds 0-3.
  msg0 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0)), kByteSwap);
  msg = _mm_add_epi32(msg0, round_k(0));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  // Rounds 4-7.
  msg1 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), kByteSwap);
  msg = _mm_add_epi32(msg1, round_k(4));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  // Rounds 8-11.
  msg2 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), kByteSwap);
  msg = _mm_add_epi32(msg2, round_k(8));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  // Rounds 12-15.
  msg3 = _mm_shuffle_epi8(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), kByteSwap);
  msg = _mm_add_epi32(msg3, round_k(12));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  // Rounds 16-51: the schedule rotates through msg0..msg3 with a fixed
  // dependency pattern; unrolled because each group touches different
  // registers.
  msg = _mm_add_epi32(msg0, round_k(16));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  msg = _mm_add_epi32(msg1, round_k(20));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  msg = _mm_add_epi32(msg2, round_k(24));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  msg = _mm_add_epi32(msg3, round_k(28));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  msg = _mm_add_epi32(msg0, round_k(32));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  msg = _mm_add_epi32(msg1, round_k(36));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg0 = _mm_sha256msg1_epu32(msg0, msg1);

  msg = _mm_add_epi32(msg2, round_k(40));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg1 = _mm_sha256msg1_epu32(msg1, msg2);

  msg = _mm_add_epi32(msg3, round_k(44));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg0 = _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4));
  msg0 = _mm_sha256msg2_epu32(msg0, msg3);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg2 = _mm_sha256msg1_epu32(msg2, msg3);

  msg = _mm_add_epi32(msg0, round_k(48));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg1 = _mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4));
  msg1 = _mm_sha256msg2_epu32(msg1, msg0);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
  msg3 = _mm_sha256msg1_epu32(msg3, msg0);

  // Rounds 52-63: the schedule is exhausted, only compression remains.
  msg = _mm_add_epi32(msg1, round_k(52));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg2 = _mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4));
  msg2 = _mm_sha256msg2_epu32(msg2, msg1);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  msg = _mm_add_epi32(msg2, round_k(56));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg3 = _mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4));
  msg3 = _mm_sha256msg2_epu32(msg3, msg2);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  msg = _mm_add_epi32(msg3, round_k(60));
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));

  state0 = _mm_add_epi32(state0, abef_save);
  state1 = _mm_add_epi32(state1, cdgh_save);

  // Unpack ABEF/CDGH back to the linear a..h layout.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // TFL_SHA_NI_CANDIDATE

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::process_block(const std::uint8_t* block) {
#ifdef TFL_SHA_NI_CANDIDATE
  // Hardware SHA extensions when the host has them — the digest is
  // bit-identical to the portable path below, just ~5x cheaper, which is
  // most of the chain's per-transaction cost (hash at submit, Merkle at
  // seal, full re-hash in validate).
  static const bool use_sha_ni = cpu_has_sha_extensions();
  if (use_sha_ni) {
    process_block_sha_ni(state_.data(), block);
    return;
  }
#endif
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(const std::uint8_t* data, std::size_t size) {
  total_bytes_ += size;
  while (size > 0) {
    const std::size_t take = std::min(size, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    size -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
}

Hash256 Sha256::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(&pad_byte, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::array<std::uint8_t, 8> length_bytes;
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  }
  update(length_bytes.data(), length_bytes.size());

  Hash256 digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Hash256 sha256(const Bytes& data) {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finish();
}

Hash256 sha256(const std::string& text) {
  Sha256 hasher;
  hasher.update(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  return hasher.finish();
}

Hash256 sha256_pair(const Hash256& left, const Hash256& right) {
  Sha256 hasher;
  hasher.update(left.data(), left.size());
  hasher.update(right.data(), right.size());
  return hasher.finish();
}

std::string hash_to_hex(const Hash256& hash) {
  return to_hex(Bytes(hash.begin(), hash.end()));
}

}  // namespace tradefl::chain
