#include "chain/bytes.h"

#include <limits>
#include <stdexcept>

#include "common/check.h"

namespace tradefl::chain {
namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

std::uint8_t hex_nibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
  throw std::invalid_argument("from_hex: invalid hex digit");
}
}  // namespace

std::string to_hex(const Bytes& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += kHexDigits[b >> 4];
    out += kHexDigits[b & 0xF];
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_nibble(hex[i]) << 4) | hex_nibble(hex[i + 1])));
  }
  return out;
}

void ByteWriter::put_u8(std::uint8_t value) { buffer_.push_back(value); }

void ByteWriter::put_u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void ByteWriter::put_u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void ByteWriter::put_i64(std::int64_t value) { put_u64(static_cast<std::uint64_t>(value)); }

void ByteWriter::put_bytes(const Bytes& value) {
  put_bytes(value.data(), value.size());
}

void ByteWriter::put_bytes(const std::uint8_t* value, std::size_t size) {
  // The length prefix is u32; a silent narrowing here would make the payload
  // undecodable (and forge a wrong length for whatever follows).
  TFL_CHECK(size <= std::numeric_limits<std::uint32_t>::max(),
            "blob of ", size, " bytes exceeds u32 length prefix");
  put_u32(static_cast<std::uint32_t>(size));
  buffer_.insert(buffer_.end(), value, value + size);
}

void ByteWriter::put_string(const std::string& value) {
  TFL_CHECK(value.size() <= std::numeric_limits<std::uint32_t>::max(),
            "string of ", value.size(), " bytes exceeds u32 length prefix");
  put_u32(static_cast<std::uint32_t>(value.size()));
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void ByteReader::require(std::size_t count) const {
  if (offset_ + count > data_.size()) throw std::out_of_range("ByteReader: truncated payload");
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[offset_++];
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<std::uint32_t>(data_[offset_++]) << (8 * i);
  return value;
}

std::uint64_t ByteReader::get_u64() {
  require(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<std::uint64_t>(data_[offset_++]) << (8 * i);
  return value;
}

std::int64_t ByteReader::get_i64() { return static_cast<std::int64_t>(get_u64()); }

Bytes ByteReader::get_bytes() {
  const std::uint32_t size = get_u32();
  require(size);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + size));
  offset_ += size;
  return out;
}

std::string ByteReader::get_string() {
  const Bytes raw = get_bytes();
  return std::string(raw.begin(), raw.end());
}

}  // namespace tradefl::chain
