#include "chain/block.h"

#include <stdexcept>

namespace tradefl::chain {

Bytes BlockHeader::serialize() const {
  ByteWriter writer;
  writer.put_u64(index);
  writer.put_u64(timestamp);
  writer.put_bytes(Bytes(prev_hash.begin(), prev_hash.end()));
  writer.put_bytes(Bytes(tx_root.begin(), tx_root.end()));
  return writer.data();
}

Hash256 BlockHeader::hash() const { return sha256(serialize()); }

Hash256 Block::merkle_root(const std::vector<Transaction>& transactions) {
  std::vector<Hash256> leaves;
  leaves.reserve(transactions.size());
  for (const Transaction& tx : transactions) leaves.push_back(tx.hash());
  return merkle_root_of_leaves(std::move(leaves));
}

Hash256 Block::merkle_root_of_leaves(std::vector<Hash256> leaves) {
  if (leaves.empty()) return Hash256{};
  // Each level compacts the buffer front-to-back: slot `out` is only ever
  // rewritten after sha256_pair has fully consumed slots i / i+1 (the pair
  // hash returns by value), so one buffer serves every layer.
  std::size_t width = leaves.size();
  while (width > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < width; i += 2) {
      const Hash256& left = leaves[i];
      const Hash256& right = i + 1 < width ? leaves[i + 1] : leaves[i];
      leaves[out++] = sha256_pair(left, right);
    }
    width = out;
  }
  return leaves.front();
}

bool Block::verify_tx_root() const {
  return header.tx_root == merkle_root(transactions);
}

MerkleProof MerkleProof::build(const std::vector<Transaction>& transactions,
                               std::size_t index) {
  if (index >= transactions.size()) {
    throw std::out_of_range("merkle proof: transaction index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  std::vector<Hash256> layer;
  layer.reserve(transactions.size());
  for (const Transaction& tx : transactions) layer.push_back(tx.hash());

  std::size_t position = index;
  while (layer.size() > 1) {
    const std::size_t sibling =
        position % 2 == 0 ? std::min(position + 1, layer.size() - 1) : position - 1;
    proof.siblings.push_back(layer[sibling]);
    std::vector<Hash256> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i < layer.size(); i += 2) {
      const Hash256& left = layer[i];
      const Hash256& right = i + 1 < layer.size() ? layer[i + 1] : layer[i];
      next.push_back(sha256_pair(left, right));
    }
    layer = std::move(next);
    position /= 2;
  }
  return proof;
}

bool MerkleProof::verify(const Hash256& leaf, const Hash256& root) const {
  Hash256 current = leaf;
  std::uint64_t position = leaf_index;
  for (const Hash256& sibling : siblings) {
    current = position % 2 == 0 ? sha256_pair(current, sibling)
                                : sha256_pair(sibling, current);
    position /= 2;
  }
  return current == root;
}

}  // namespace tradefl::chain
