#include "chain/fixed_point.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tradefl::chain {
namespace {

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(a, b, &out)) throw std::overflow_error("fixed: add overflow");
  return out;
}

std::int64_t narrow(__int128 value, const char* what) {
  if (value > std::numeric_limits<std::int64_t>::max() ||
      value < std::numeric_limits<std::int64_t>::min()) {
    throw std::overflow_error(what);
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace

Fixed Fixed::from_raw(std::int64_t raw) { return Fixed(raw); }

Fixed Fixed::from_double(double value) {
  if (!std::isfinite(value)) throw std::overflow_error("fixed: non-finite double");
  const double scaled = value * static_cast<double>(kScale);
  if (scaled >= 9.2e18 || scaled <= -9.2e18) throw std::overflow_error("fixed: double overflow");
  return Fixed(static_cast<std::int64_t>(std::llround(scaled)));
}

Fixed Fixed::from_int(std::int64_t whole) {
  __int128 raw = static_cast<__int128>(whole) * kScale;
  return Fixed(narrow(raw, "fixed: int overflow"));
}

double Fixed::to_double() const {
  return static_cast<double>(raw_) / static_cast<double>(kScale);
}

std::string Fixed::to_string() const {
  const bool negative = raw_ < 0;
  // Avoid overflow on INT64_MIN by widening before negation.
  __int128 magnitude = raw_;
  if (negative) magnitude = -magnitude;
  const std::int64_t whole = static_cast<std::int64_t>(magnitude / kScale);
  const std::int64_t frac = static_cast<std::int64_t>(magnitude % kScale);
  std::string frac_digits = std::to_string(frac);
  frac_digits.insert(frac_digits.begin(), 9 - frac_digits.size(), '0');
  while (frac_digits.size() > 1 && frac_digits.back() == '0') frac_digits.pop_back();
  return (negative ? "-" : "") + std::to_string(whole) + "." + frac_digits;
}

Fixed Fixed::operator+(Fixed other) const { return Fixed(checked_add(raw_, other.raw_)); }

Fixed Fixed::operator-(Fixed other) const {
  std::int64_t out = 0;
  if (__builtin_sub_overflow(raw_, other.raw_, &out)) {
    throw std::overflow_error("fixed: sub overflow");
  }
  return Fixed(out);
}

Fixed Fixed::operator-() const {
  if (raw_ == std::numeric_limits<std::int64_t>::min()) {
    throw std::overflow_error("fixed: negate overflow");
  }
  return Fixed(-raw_);
}

Fixed Fixed::operator*(Fixed other) const {
  const __int128 wide = static_cast<__int128>(raw_) * other.raw_;
  return Fixed(narrow(wide / kScale, "fixed: mul overflow"));
}

Fixed Fixed::operator/(Fixed other) const {
  if (other.raw_ == 0) throw std::domain_error("fixed: divide by zero");
  const __int128 wide = static_cast<__int128>(raw_) * kScale;
  return Fixed(narrow(wide / other.raw_, "fixed: div overflow"));
}

}  // namespace tradefl::chain
