// Metrics registry: named counters, gauges, fixed-bucket histograms, and
// per-run series (trajectories), with thread-safe registration and lock-free
// updates on the hot path. Snapshots export to JSON and to a human-readable
// AsciiTable. This is the observability substrate behind the paper-shaped
// telemetry (convergence dynamics, contract gas/latency, per-phase training
// time); the instrumentation macros live in obs/obs.h.
//
// Naming scheme: `subsystem.verb.unit` (e.g. solver.newton.iterations,
// chain.call.seconds, fl.accuracy.trajectory). See docs/OBSERVABILITY.md.
//
// Metric objects have stable addresses for the lifetime of the process:
// reset() zeroes values but never deregisters, so cached references held by
// call sites stay valid.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tradefl::obs {

/// Global runtime switch for every TFL_* instrumentation macro. Defaults to
/// off so library consumers pay only one relaxed atomic load per site; the
/// CLI/bench surfaces flip it on. Independent of the compile-time
/// TRADEFL_ENABLE_TRACING gate (see obs/obs.h).
bool enabled();
void set_enabled(bool on);

namespace detail {
/// Relaxed add for atomic doubles via CAS (portable, TSan-clean).
void atomic_add(std::atomic<double>& target, double delta);
void atomic_min(std::atomic<double>& target, double value);
void atomic_max(std::atomic<double>& target, double value);
}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus-style `le` (<=) bucket semantics:
/// an observation lands in the first bucket whose upper bound is >= value;
/// values above the last bound land in the implicit +Inf overflow bucket.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  Histogram(std::string name, std::vector<double> upper_bounds);

  void observe(double value);

  struct Snapshot {
    std::vector<double> upper_bounds;    // finite bounds; overflow is implicit
    std::vector<std::uint64_t> counts;   // upper_bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;

    /// Interpolated quantile (q in [0,1]) from the bucket counts: the bucket
    /// holding rank q*count is interpolated linearly between its bounds, with
    /// the first bucket floored at `min` and the +Inf overflow bucket capped
    /// at `max`, so the estimate never leaves the observed range and a
    /// single-sample histogram reports the sample exactly. Empty -> 0.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p90() const { return quantile(0.90); }
    [[nodiscard]] double p99() const { return quantile(0.99); }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> bucket_counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Append-only bounded trajectory (e.g. potential per iteration). Appends
/// beyond the capacity are counted but dropped, so a runaway loop cannot grow
/// memory without bound.
class Series {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Series(std::string name, std::size_t capacity = kDefaultCapacity)
      : name_(std::move(name)), capacity_(capacity) {}

  void append(double value);
  [[nodiscard]] std::vector<double> values() const;
  [[nodiscard]] std::uint64_t total_appends() const;
  void reset();
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<double> values_;
  std::uint64_t total_ = 0;
};

/// Point-in-time copy of every registered metric, safe to format or persist
/// after the run continues. Orderings are deterministic (sorted by name).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    Histogram::Snapshot data;
  };
  struct SeriesValue {
    std::string name;
    std::vector<double> values;
    std::uint64_t total_appends = 0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SeriesValue> series;

  [[nodiscard]] bool empty() const;

  /// Lookup helpers (nullptr when absent) for tests and callers.
  [[nodiscard]] const CounterValue* find_counter(const std::string& name) const;
  [[nodiscard]] const GaugeValue* find_gauge(const std::string& name) const;
  [[nodiscard]] const HistogramValue* find_histogram(const std::string& name) const;
  [[nodiscard]] const SeriesValue* find_series(const std::string& name) const;

  /// Machine-readable export: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "series": {...}}. Non-finite doubles become null.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable AsciiTable render (one row per metric).
  [[nodiscard]] std::string to_table() const;
};

/// Thread-safe name -> metric registry. Registration takes a mutex; returned
/// references stay valid forever (reset() zeroes, never removes).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls (with or without
  /// bounds) return the existing histogram. Empty bounds select
  /// default_latency_bounds().
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds = {});
  Series& series(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric, keeping registrations (and thus cached references).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

/// Process-wide registry used by the TFL_* macros.
MetricsRegistry& metrics();

/// Thread-local observability scope: while one is alive, every TFL_* macro on
/// the thread records under `<scope>/<name>` (e.g. "session=3/cgbd.solve")
/// instead of the bare name, and ledger lines gain the same prefix. The serve
/// daemon installs one per session worker so concurrent sessions never
/// interleave into one histogram. Scopes nest (inner replaces outer); an
/// empty scope string is the unscoped default. The macro-site literal name is
/// what tfl-analyze audits, so scoping never perturbs the vocabulary closure.
class MetricScope {
 public:
  explicit MetricScope(std::string scope);
  ~MetricScope();
  MetricScope(const MetricScope&) = delete;
  MetricScope& operator=(const MetricScope&) = delete;

 private:
  std::string previous_;
};

/// The calling thread's active scope ("" when none).
[[nodiscard]] const std::string& metric_scope();

/// Resolves a cached macro-site metric against the calling thread's scope:
/// returns the argument unchanged when unscoped (the hot path keeps its
/// cached-reference cost), otherwise registers/fetches `<scope>/<name>`.
/// The scoped histogram inherits the unscoped one's bucket bounds.
[[nodiscard]] Counter& scoped(Counter& unscoped);
[[nodiscard]] Gauge& scoped(Gauge& unscoped);
[[nodiscard]] Histogram& scoped(Histogram& unscoped);
[[nodiscard]] Series& scoped(Series& unscoped);

/// Log-spaced latency bounds in seconds: 1us .. 10s.
std::vector<double> default_latency_bounds();

/// Strictly increasing log-spaced bounds: `per_decade` buckets per factor of
/// ten, from `lo` up to and including the first bound >= `hi`. Requires
/// 0 < lo < hi and per_decade >= 1.
std::vector<double> log_bucket_bounds(double lo, double hi, std::size_t per_decade);

/// Fine-grained log bucketing for seconds-scale latency metrics (100ns .. 10s,
/// 4 buckets per decade) — tight enough that interpolated p50/p99 are usable
/// SLO figures, unlike default_latency_bounds() whose decade-wide buckets
/// only localize the order of magnitude.
std::vector<double> latency_histogram_bounds();

/// Registers (or fetches) `name` in the process registry with
/// latency_histogram_bounds(). The TFL_LATENCY_TIMER macro routes here; use
/// it for any histogram whose quantiles feed SLO reporting.
Histogram& latency_histogram(const std::string& name);

}  // namespace tradefl::obs
