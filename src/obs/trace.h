// Scoped trace spans. A Span measures one region (RAII: construction to
// destruction) and records name/start/duration/thread/depth into a bounded
// in-memory ring buffer; the buffer exports Chrome trace-event JSON that
// loads directly in chrome://tracing or https://ui.perfetto.dev. Use the
// TFL_SPAN macro from obs/obs.h rather than constructing Span by hand so the
// compile-time gate applies.
//
// Timestamps come from a process-wide Stopwatch epoch (first use), so spans
// never touch std::chrono directly and the tfl-lint raw-steady-clock rule
// holds trivially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tradefl::obs {

/// One completed span, timestamps in microseconds since the trace epoch.
struct SpanEvent {
  std::string name;
  double start_us = 0.0;
  double duration_us = 0.0;
  int thread = 0;
  int depth = 0;  // nesting level on the recording thread at open time
};

/// Bounded ring of completed spans. When full, the oldest event is
/// overwritten and `dropped()` grows, so long runs keep the most recent
/// window instead of failing or ballooning.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void record(SpanEvent event);

  /// Events in recording order (oldest surviving first).
  [[nodiscard]] std::vector<SpanEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::uint64_t dropped() const;

  void reset();
  /// Resets and re-bounds the ring (tests shrink it to force overflow).
  void set_capacity(std::size_t capacity);

  /// Chrome trace-event JSON: {"traceEvents": [{"name", "ph": "X", "ts",
  /// "dur", "pid", "tid"}, ...]}. ts/dur are microseconds.
  void write_chrome_trace(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring write cursor
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  std::vector<SpanEvent> ring_;
};

/// Process-wide span sink used by TFL_SPAN.
TraceBuffer& trace();

/// Microseconds since the process trace epoch (first call).
double trace_now_us();

/// RAII span. Captures obs::enabled() once at construction, so a span that
/// opened while tracing was on still closes cleanly if it is toggled off
/// mid-flight (and vice versa records nothing).
class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  double start_us_ = 0.0;
  int depth_ = 0;
  bool active_ = false;
};

/// RAII timer feeding a latency histogram (seconds). Pass nullptr to make it
/// inert; TFL_SCOPED_TIMER does so whenever obs is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink) : sink_(sink), start_us_(sink ? trace_now_us() : 0.0) {}
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe((trace_now_us() - start_us_) * 1e-6);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* sink_;
  double start_us_;
};

}  // namespace tradefl::obs
