#include "obs/event_log.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/obs.h"
#include "obs/trace.h"

namespace tradefl::obs {
namespace {

/// %.12g matches the metrics JSON exporter, so ledger field values and
/// snapshot values render identically.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
  return out;
}

std::string micros_field(double us) {
  const long long rounded = us <= 0.0 ? 0 : std::llround(us);
  return std::to_string(rounded);
}

/// Ledger names carry the caller's MetricScope, mirroring the metric naming
/// (`session=3/fedavg.round`), so interleaved lines from concurrent sessions
/// stay attributable.
std::string scoped_name(const std::string& name) {
  const std::string& scope = metric_scope();
  return scope.empty() ? name : scope + "/" + name;
}

/// Counters and histogram observation counts only: the deterministic shape
/// of the run. Gauges, sums, and series carry wall clock / thread count and
/// would break the cross-thread-count ledger identity (see header).
std::string metrics_body(const MetricsSnapshot& snapshot) {
  std::ostringstream body;
  body << "\"type\": \"metrics\", \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    body << (i == 0 ? "" : ", ") << json_string(snapshot.counters[i].name) << ": "
         << snapshot.counters[i].value;
  }
  body << "}, \"histogram_counts\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    body << (i == 0 ? "" : ", ") << json_string(snapshot.histograms[i].name) << ": "
         << snapshot.histograms[i].data.count;
  }
  body << "}";
  return body.str();
}

}  // namespace

Status EventLog::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_.load(std::memory_order_relaxed)) {
    out_.close();
    active_.store(false, std::memory_order_relaxed);
  }
  out_.open(path, std::ios::trunc);
  if (!out_) {
    return Error{"io", "event log: cannot open " + path + " for writing"};
  }
  active_.store(true, std::memory_order_relaxed);
  last_us_ = trace_now_us();
  written_ = 0;
  since_metrics_ = 0;
  write_line_locked("\"type\": \"ledger\", \"name\": \"open\", \"version\": 1");
  return ok_status();
}

void EventLog::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return;
  write_line_locked("\"type\": \"ledger\", \"name\": \"close\", \"events\": " +
                    std::to_string(written_));
  out_.close();
  active_.store(false, std::memory_order_relaxed);
}

bool EventLog::active() const { return active_.load(std::memory_order_relaxed); }

void EventLog::set_metrics_every(std::size_t every) {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_every_ = every;
  since_metrics_ = 0;
}

void EventLog::phase_begin(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return;
  write_line_locked("\"type\": \"phase_begin\", \"name\": " + json_string(scoped_name(name)));
  maybe_auto_metrics_locked();
}

void EventLog::phase_end(const std::string& name, double duration_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return;
  write_line_locked("\"type\": \"phase_end\", \"name\": " + json_string(scoped_name(name)) +
                    ", \"dur_us\": " + micros_field(duration_us));
  maybe_auto_metrics_locked();
}

void EventLog::event(const std::string& name, const Fields& fields) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return;
  std::string body = "\"type\": \"event\", \"name\": " + json_string(scoped_name(name));
  for (const auto& [key, value] : fields) {
    body += ", " + json_string(key) + ": " + json_number(value);
  }
  write_line_locked(body);
  maybe_auto_metrics_locked();
}

void EventLog::metrics_event(const MetricsSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return;
  write_line_locked(metrics_body(snapshot));
  since_metrics_ = 0;
}

std::uint64_t EventLog::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

void EventLog::write_line_locked(const std::string& body) {
  const double now = trace_now_us();
  const double delta = now - last_us_;
  last_us_ = now;
  out_ << "{\"dt_us\": " << micros_field(delta) << ", " << body << "}\n";
  out_.flush();
  ++written_;
  ++since_metrics_;
  TFL_COUNTER_INC("ledger.events");
}

void EventLog::maybe_auto_metrics_locked() {
  if (metrics_every_ == 0 || since_metrics_ < metrics_every_) return;
  // The metrics registry mutex is independent of ours and never calls back
  // into the log, so snapshotting under our lock cannot deadlock.
  write_line_locked(metrics_body(metrics().snapshot()));
  since_metrics_ = 0;
}

EventLog& event_log() {
  static EventLog log;
  return log;
}

LedgerPhase::LedgerPhase(std::string name) : name_(std::move(name)) {
  active_ = event_log().active();
  if (!active_) return;
  start_us_ = trace_now_us();
  event_log().phase_begin(name_);
}

LedgerPhase::~LedgerPhase() {
  if (!active_) return;
  event_log().phase_end(name_, trace_now_us() - start_us_);
}

}  // namespace tradefl::obs
