#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/table.h"

namespace tradefl::obs {
namespace {

std::atomic<bool> g_enabled{false};

/// %.12g keeps trajectories readable while round-tripping to ~1e-12.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
  return out;
}

std::string format_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace detail {

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> upper_bounds)
    : name_(std::move(name)),
      bounds_(std::move(upper_bounds)),
      bucket_counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) throw std::invalid_argument("histogram: need >= 1 bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    // Rank q*count lands in bucket b: interpolate between its bounds, using
    // the observed min/max as the edges of the open-ended first and overflow
    // buckets.
    const double lo = b == 0 ? min : upper_bounds[b - 1];
    const double hi = b < upper_bounds.size() ? upper_bounds[b] : max;
    const double fraction = (target - before) / static_cast<double>(counts[b]);
    const double estimate = hi <= lo ? lo : lo + fraction * (hi - lo);
    return std::clamp(estimate, min, max);
  }
  return max;  // unreachable when counts are consistent with count
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.upper_bounds = bounds_;
  snap.counts.reserve(bucket_counts_.size());
  for (const auto& bucket : bucket_counts_) {
    snap.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  snap.max = snap.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& bucket : bucket_counts_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Series
// ---------------------------------------------------------------------------

void Series::append(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (values_.size() < capacity_) values_.push_back(value);
}

std::vector<double> Series::values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return values_;
}

std::uint64_t Series::total_appends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void Series::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  values_.clear();
  total_ = 0;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

bool MetricsSnapshot::empty() const {
  return counters.empty() && gauges.empty() && histograms.empty() && series.empty();
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const auto& metric : counters) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::find_gauge(const std::string& name) const {
  for (const auto& metric : gauges) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const auto& metric : histograms) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

const MetricsSnapshot::SeriesValue* MetricsSnapshot::find_series(
    const std::string& name) const {
  for (const auto& metric : series) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    " << json_string(counters[i].name) << ": "
        << counters[i].value;
  }
  out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    " << json_string(gauges[i].name) << ": "
        << json_number(gauges[i].value);
  }
  out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const Histogram::Snapshot& data = histograms[i].data;
    out << (i == 0 ? "\n" : ",\n") << "    " << json_string(histograms[i].name) << ": {"
        << "\"count\": " << data.count << ", \"sum\": " << json_number(data.sum)
        << ", \"min\": " << json_number(data.min) << ", \"max\": " << json_number(data.max)
        << ", \"p50\": " << json_number(data.p50()) << ", \"p90\": " << json_number(data.p90())
        << ", \"p99\": " << json_number(data.p99()) << ", \"buckets\": [";
    for (std::size_t b = 0; b < data.counts.size(); ++b) {
      if (b > 0) out << ", ";
      out << "{\"le\": ";
      if (b < data.upper_bounds.size()) {
        out << json_number(data.upper_bounds[b]);
      } else {
        out << "\"+Inf\"";
      }
      out << ", \"count\": " << data.counts[b] << "}";
    }
    out << "]}";
  }
  out << (histograms.empty() ? "" : "\n  ") << "},\n  \"series\": {";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    " << json_string(series[i].name) << ": [";
    for (std::size_t v = 0; v < series[i].values.size(); ++v) {
      if (v > 0) out << ", ";
      out << json_number(series[i].values[v]);
    }
    out << "]";
  }
  out << (series.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsSnapshot::to_table() const {
  AsciiTable table({"metric", "type", "count", "value", "min", "p50", "p99", "max"},
                   {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                    Align::kRight, Align::kRight, Align::kRight});
  for (const auto& metric : counters) {
    table.add_row({metric.name, "counter", "-", std::to_string(metric.value), "-", "-", "-",
                   "-"});
  }
  for (const auto& metric : gauges) {
    table.add_row({metric.name, "gauge", "-", format_value(metric.value), "-", "-", "-", "-"});
  }
  for (const auto& metric : histograms) {
    const auto& data = metric.data;
    const double mean =
        data.count == 0 ? 0.0 : data.sum / static_cast<double>(data.count);
    table.add_row({metric.name, "histogram", std::to_string(data.count),
                   format_value(mean) + " (mean)", format_value(data.min),
                   format_value(data.p50()), format_value(data.p99()),
                   format_value(data.max)});
  }
  for (const auto& metric : series) {
    const double last = metric.values.empty() ? 0.0 : metric.values.back();
    double lo = 0.0;
    double hi = 0.0;
    if (!metric.values.empty()) {
      lo = *std::min_element(metric.values.begin(), metric.values.end());
      hi = *std::max_element(metric.values.begin(), metric.values.end());
    }
    table.add_row({metric.name, "series", std::to_string(metric.total_appends),
                   format_value(last) + " (last)", format_value(lo), "-", "-",
                   format_value(hi)});
  }
  return table.render();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (upper_bounds.empty()) upper_bounds = default_latency_bounds();
    slot = std::make_unique<Histogram>(name, std::move(upper_bounds));
  }
  return *slot;
}

Series& MetricsRegistry::series(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>(name);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    snap.counters.push_back({name, metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    snap.gauges.push_back({name, metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    snap.histograms.push_back({name, metric->snapshot()});
  }
  snap.series.reserve(series_.size());
  for (const auto& [name, metric] : series_) {
    snap.series.push_back({name, metric->values(), metric->total_appends()});
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) entry.second->reset();
  for (const auto& entry : gauges_) entry.second->reset();
  for (const auto& entry : histograms_) entry.second->reset();
  for (const auto& entry : series_) entry.second->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
// Active per-thread scope prefix ("" = unscoped). A plain thread_local string
// keeps the unscoped fast path to one empty() check.
thread_local std::string t_metric_scope;
}  // namespace

MetricScope::MetricScope(std::string scope) : previous_(std::move(t_metric_scope)) {
  t_metric_scope = std::move(scope);
}

MetricScope::~MetricScope() { t_metric_scope = std::move(previous_); }

const std::string& metric_scope() { return t_metric_scope; }

Counter& scoped(Counter& unscoped) {
  if (t_metric_scope.empty()) return unscoped;
  return metrics().counter(t_metric_scope + "/" + unscoped.name());
}

Gauge& scoped(Gauge& unscoped) {
  if (t_metric_scope.empty()) return unscoped;
  return metrics().gauge(t_metric_scope + "/" + unscoped.name());
}

Histogram& scoped(Histogram& unscoped) {
  if (t_metric_scope.empty()) return unscoped;
  // The scoped twin must bucket identically or its percentiles would not be
  // comparable across sessions.
  return metrics().histogram(t_metric_scope + "/" + unscoped.name(), unscoped.bounds());
}

Series& scoped(Series& unscoped) {
  if (t_metric_scope.empty()) return unscoped;
  return metrics().series(t_metric_scope + "/" + unscoped.name());
}

std::vector<double> default_latency_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::vector<double> log_bucket_bounds(double lo, double hi, std::size_t per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || per_decade == 0) {
    throw std::invalid_argument("log_bucket_bounds: need 0 < lo < hi and per_decade >= 1");
  }
  std::vector<double> bounds;
  const double start = std::log10(lo);
  for (std::size_t i = 0;; ++i) {
    const double bound =
        std::pow(10.0, start + static_cast<double>(i) / static_cast<double>(per_decade));
    // pow() is monotone here, but equal adjacent doubles would violate the
    // Histogram contract — guard anyway.
    if (!bounds.empty() && bound <= bounds.back()) continue;
    bounds.push_back(bound);
    if (bound >= hi) break;
  }
  return bounds;
}

std::vector<double> latency_histogram_bounds() {
  return log_bucket_bounds(1e-7, 10.0, 4);
}

Histogram& latency_histogram(const std::string& name) {
  return metrics().histogram(name, latency_histogram_bounds());
}

}  // namespace tradefl::obs
