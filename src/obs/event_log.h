// Run ledger: a structured JSON-lines telemetry stream that any session /
// solve / bench run can leave behind (`ledger=FILE` on the CLI and the load
// bench). One line per event, in recording order:
//
//   {"dt_us": 12, "type": "phase_begin", "name": "session.solve"}
//   {"dt_us": 3405, "type": "phase_end", "name": "session.solve", "dur_us": 3391}
//   {"dt_us": 2, "type": "event", "name": "fedavg.round", "round": 3}
//   {"dt_us": 1, "type": "metrics", "counters": {...}, "histogram_counts": {...}}
//
// Design constraints, in priority order:
//
//   * **Replayable**: `dt_us` is the monotonic delta (microseconds, from the
//     shared trace epoch) since the previous ledger line, so absolute wall
//     clock never appears and two runs diff cleanly after stripping the
//     `*_us` fields.
//   * **Deterministic shape**: events are only emitted from serial program
//     points (phase boundaries, round loops), and the periodic `metrics`
//     lines carry counters and histogram observation *counts* only — never
//     gauges, sums, or series, whose values encode wall clock or thread
//     count. A `threads=1` and a `threads=N` run therefore produce
//     byte-identical ledgers once timestamps are stripped (regression-tested
//     in tests/integration/test_cli.cpp).
//   * **Gated like every other obs surface**: the TFL_LEDGER_* macros in
//     obs/obs.h compile away under TRADEFL_ENABLE_TRACING=0 and no-op until a
//     surface opens the log; library code never opens it.
//
// The writer is audited (typed Error{"io", ...} on open, append-only, one
// flushed line per event): the ledger is operator telemetry, nothing resumes
// from it, so a torn final line on crash is acceptable by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace tradefl::obs {

class EventLog {
 public:
  /// Numeric payload fields appended to an event line, in the given order.
  using Fields = std::vector<std::pair<std::string, double>>;

  /// Opens (truncating) the ledger at `path` and writes the ledger_open line.
  /// Returns Error{"io", ...} when the file cannot be created; the log stays
  /// inactive in that case.
  Status open(const std::string& path);

  /// Writes the ledger_close line (with the total event count) and closes.
  /// No-op when inactive.
  void close();

  [[nodiscard]] bool active() const;

  /// Auto-emit a `metrics` line after every `every` recorded lines
  /// (0 = only explicit metrics_event calls). Counted deterministically, so
  /// the cadence replays identically across runs.
  void set_metrics_every(std::size_t every);

  void phase_begin(const std::string& name);
  void phase_end(const std::string& name, double duration_us);
  void event(const std::string& name, const Fields& fields = {});

  /// Compact snapshot line: counter values and histogram observation counts.
  void metrics_event(const MetricsSnapshot& snapshot);

  /// Lines written since open (0 when inactive).
  [[nodiscard]] std::uint64_t events_written() const;

 private:
  void write_line_locked(const std::string& body);
  void maybe_auto_metrics_locked();

  mutable std::mutex mutex_;
  std::ofstream out_;
  std::atomic<bool> active_{false};  // lock-free inactive fast path
  double last_us_ = 0.0;
  std::uint64_t written_ = 0;
  std::size_t metrics_every_ = 0;
  std::size_t since_metrics_ = 0;
};

/// Process-wide ledger used by the TFL_LEDGER_* macros and the CLI/bench
/// `ledger=` knobs.
EventLog& event_log();

/// RAII phase scope: phase_begin at construction, phase_end (with duration)
/// at destruction. Captures activity once, so a log closed mid-phase still
/// gets the matching end line. Use via TFL_LEDGER_PHASE.
class LedgerPhase {
 public:
  explicit LedgerPhase(std::string name);
  ~LedgerPhase();

  LedgerPhase(const LedgerPhase&) = delete;
  LedgerPhase& operator=(const LedgerPhase&) = delete;

 private:
  std::string name_;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace tradefl::obs
