// Instrumentation macros: the one header pipelines include to emit metrics
// and trace spans. Mirrors the contracts pattern in common/check.h:
//
//   compile-time gate  TRADEFL_ENABLE_TRACING (CMake option, default ON).
//                      When 0 every macro folds to a no-op with operands
//                      parsed but unevaluated, so a disabled build carries no
//                      obs symbols on the hot path and produces byte-identical
//                      solver results.
//   runtime gate       obs::enabled() (off by default). An enabled build pays
//                      one relaxed atomic load per site until the CLI/bench
//                      surfaces flip it on.
//
// Counter/gauge/histogram macros cache the registry reference in a
// function-local static, so the name->metric map lookup happens once per call
// site, not once per call. Each update resolves through obs::scoped(): with no
// active MetricScope that is the cached reference itself (one string empty()
// check); under a scope (the serve daemon's per-session workers) it fetches
// the `<scope>/<name>` twin so concurrent sessions never share a metric.
//
//   TFL_COUNTER_INC(name)                +1 on a counter
//   TFL_COUNTER_ADD(name, delta)         +delta (cast to uint64)
//   TFL_GAUGE_SET(name, value)           last-write-wins gauge
//   TFL_OBSERVE(name, value)             histogram, default latency buckets
//   TFL_OBSERVE_BUCKETS(name, value, b...) histogram with explicit bounds
//                                        (comma list, first call wins)
//   TFL_SERIES_APPEND(name, value)       bounded trajectory append
//   TFL_SPAN(name)                       RAII trace span for this scope
//   TFL_SCOPED_TIMER(name)               RAII seconds-histogram timer
//   TFL_LATENCY_TIMER(name)              RAII timer on a fine-grained
//                                        latency_histogram (SLO percentiles)
//   TFL_LEDGER_PHASE(name)               RAII run-ledger phase scope
//   TFL_LEDGER_EVENT(name, fields...)    run-ledger event line; fields are
//                                        {"key", value} pairs
//   TFL_OBS_ONLY(...)                    statement compiled only when tracing
//
// The TFL_LEDGER_* macros are additionally gated on obs::event_log().active():
// they stay no-ops until a CLI/bench surface opens a ledger file.
#pragma once

#include <cstdint>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if !defined(TRADEFL_ENABLE_TRACING)
#define TRADEFL_ENABLE_TRACING 1
#endif

#define TFL_OBS_CONCAT_INNER(a, b) a##b
#define TFL_OBS_CONCAT(a, b) TFL_OBS_CONCAT_INNER(a, b)

#if TRADEFL_ENABLE_TRACING

#define TFL_COUNTER_ADD(name, delta)                                            \
  do {                                                                          \
    if (::tradefl::obs::enabled()) {                                            \
      static ::tradefl::obs::Counter& tfl_counter_ref_ =                        \
          ::tradefl::obs::metrics().counter(name);                              \
      ::tradefl::obs::scoped(tfl_counter_ref_)                                  \
          .add(static_cast<std::uint64_t>(delta));                              \
    }                                                                           \
  } while (false)

#define TFL_COUNTER_INC(name) TFL_COUNTER_ADD(name, 1)

#define TFL_GAUGE_SET(name, value)                                              \
  do {                                                                          \
    if (::tradefl::obs::enabled()) {                                            \
      static ::tradefl::obs::Gauge& tfl_gauge_ref_ =                            \
          ::tradefl::obs::metrics().gauge(name);                                \
      ::tradefl::obs::scoped(tfl_gauge_ref_).set(static_cast<double>(value));   \
    }                                                                           \
  } while (false)

#define TFL_OBSERVE(name, value)                                                \
  do {                                                                          \
    if (::tradefl::obs::enabled()) {                                            \
      static ::tradefl::obs::Histogram& tfl_histogram_ref_ =                    \
          ::tradefl::obs::metrics().histogram(name);                            \
      ::tradefl::obs::scoped(tfl_histogram_ref_)                                \
          .observe(static_cast<double>(value));                                 \
    }                                                                           \
  } while (false)

#define TFL_OBSERVE_BUCKETS(name, value, ...)                                   \
  do {                                                                          \
    if (::tradefl::obs::enabled()) {                                            \
      static ::tradefl::obs::Histogram& tfl_histogram_ref_ =                    \
          ::tradefl::obs::metrics().histogram(name, {__VA_ARGS__});             \
      ::tradefl::obs::scoped(tfl_histogram_ref_)                                \
          .observe(static_cast<double>(value));                                 \
    }                                                                           \
  } while (false)

#define TFL_SERIES_APPEND(name, value)                                          \
  do {                                                                          \
    if (::tradefl::obs::enabled()) {                                            \
      static ::tradefl::obs::Series& tfl_series_ref_ =                          \
          ::tradefl::obs::metrics().series(name);                               \
      ::tradefl::obs::scoped(tfl_series_ref_).append(static_cast<double>(value)); \
    }                                                                           \
  } while (false)

#define TFL_SPAN(name) ::tradefl::obs::Span TFL_OBS_CONCAT(tfl_span_, __LINE__)(name)

#define TFL_SCOPED_TIMER(name)                                                  \
  ::tradefl::obs::ScopedTimer TFL_OBS_CONCAT(tfl_timer_, __LINE__)(             \
      ::tradefl::obs::enabled()                                                 \
          ? &::tradefl::obs::scoped(::tradefl::obs::metrics().histogram(name))  \
          : nullptr)

#define TFL_LATENCY_TIMER(name)                                                 \
  ::tradefl::obs::ScopedTimer TFL_OBS_CONCAT(tfl_latency_, __LINE__)(           \
      ::tradefl::obs::enabled()                                                 \
          ? &::tradefl::obs::scoped(::tradefl::obs::latency_histogram(name))    \
          : nullptr)

#define TFL_LEDGER_PHASE(name) \
  ::tradefl::obs::LedgerPhase TFL_OBS_CONCAT(tfl_ledger_phase_, __LINE__)(name)

#define TFL_LEDGER_EVENT(name, ...)                                             \
  do {                                                                          \
    if (::tradefl::obs::event_log().active()) {                                 \
      ::tradefl::obs::event_log().event(name, {__VA_ARGS__});                   \
    }                                                                           \
  } while (false)

#define TFL_OBS_ONLY(...) __VA_ARGS__

#else  // TRADEFL_ENABLE_TRACING

// Disabled tier: operands parsed (kept well-formed) but never evaluated; the
// whole statement folds away and no obs object is ever constructed.
#define TFL_COUNTER_ADD(name, delta) \
  do {                               \
    (void)sizeof(name);              \
    (void)sizeof(delta);             \
  } while (false)

#define TFL_COUNTER_INC(name) \
  do {                        \
    (void)sizeof(name);       \
  } while (false)

#define TFL_GAUGE_SET(name, value) \
  do {                             \
    (void)sizeof(name);            \
    (void)sizeof(value);           \
  } while (false)

#define TFL_OBSERVE(name, value) \
  do {                           \
    (void)sizeof(name);          \
    (void)sizeof(value);         \
  } while (false)

#define TFL_OBSERVE_BUCKETS(name, value, ...) \
  do {                                        \
    (void)sizeof(name);                       \
    (void)sizeof(value);                      \
  } while (false)

#define TFL_SERIES_APPEND(name, value) \
  do {                                 \
    (void)sizeof(name);                \
    (void)sizeof(value);               \
  } while (false)

#define TFL_SPAN(name)  \
  do {                  \
    (void)sizeof(name); \
  } while (false)

#define TFL_SCOPED_TIMER(name) \
  do {                         \
    (void)sizeof(name);        \
  } while (false)

#define TFL_LATENCY_TIMER(name) \
  do {                          \
    (void)sizeof(name);         \
  } while (false)

#define TFL_LEDGER_PHASE(name) \
  do {                         \
    (void)sizeof(name);        \
  } while (false)

#define TFL_LEDGER_EVENT(name, ...) \
  do {                              \
    (void)sizeof(name);             \
  } while (false)

#define TFL_OBS_ONLY(...)

#endif  // TRADEFL_ENABLE_TRACING
