#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_id.h"

namespace tradefl::obs {
namespace {

thread_local int g_span_depth = 0;

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string format_us(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

double trace_now_us() {
  static const Stopwatch epoch;
  return epoch.elapsed_micros();
}

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("trace buffer: capacity must be > 0");
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceBuffer::record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Ring is full: overwrite the oldest slot.
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<SpanEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!wrapped_) return ring_;
  std::vector<SpanEvent> ordered;
  ordered.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ordered.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return ordered;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceBuffer::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("trace buffer: capacity must be > 0");
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  capacity_ = capacity;
}

void TraceBuffer::write_chrome_trace(std::ostream& out) const {
  const std::vector<SpanEvent> ordered = events();
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const SpanEvent& event = ordered[i];
    if (i > 0) out << ",";
    out << "\n  {\"name\": \"" << escape_json(event.name) << "\", \"ph\": \"X\""
        << ", \"ts\": " << format_us(event.start_us)
        << ", \"dur\": " << format_us(event.duration_us) << ", \"pid\": 0, \"tid\": "
        << event.thread << ", \"args\": {\"depth\": " << event.depth << "}}";
  }
  out << (ordered.empty() ? "" : "\n") << "]}\n";
}

TraceBuffer& trace() {
  static TraceBuffer buffer;
  return buffer;
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span::Span(std::string name) : name_(std::move(name)), active_(enabled()) {
  if (!active_) return;
  depth_ = g_span_depth++;
  start_us_ = trace_now_us();
}

Span::~Span() {
  if (!active_) return;
  const double end_us = trace_now_us();
  --g_span_depth;
  SpanEvent event;
  event.name = std::move(name_);
  event.start_us = start_us_;
  event.duration_us = end_us - start_us_;
  event.thread = thread_index();
  event.depth = depth_;
  trace().record(std::move(event));
}

}  // namespace tradefl::obs
