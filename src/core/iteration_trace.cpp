#include "core/iteration_trace.h"

#include <algorithm>

#include "game/potential.h"
#include "obs/metrics.h"

namespace tradefl::core {

IterationRecord make_iteration_record(const game::CoopetitionGame& game,
                                      const game::StrategyProfile& profile, int iteration) {
  IterationRecord record;
  record.iteration = iteration;
  record.potential = game::potential(game, profile);
  record.paper_potential = game::paper_potential(game, profile);
  record.welfare = game.social_welfare(profile);
  record.payoffs.reserve(game.size());
  for (game::OrgId i = 0; i < game.size(); ++i) {
    record.payoffs.push_back(game.payoff(i, profile));
  }
  record.profile = profile;
  return record;
}

void append_iteration(const game::CoopetitionGame& game,
                      const game::StrategyProfile& profile, int iteration,
                      std::vector<IterationRecord>& trace) {
  IterationRecord record = make_iteration_record(game, profile, iteration);
  if (obs::enabled()) {
    auto& registry = obs::metrics();
    registry.series("solver.potential.trajectory").append(record.potential);
    registry.series("solver.welfare.trajectory").append(record.welfare);
    if (!record.payoffs.empty()) {
      const auto [lo, hi] = std::minmax_element(record.payoffs.begin(), record.payoffs.end());
      registry.series("solver.payoff_gap.trajectory").append(*hi - *lo);
    }
  }
  trace.push_back(std::move(record));
}

}  // namespace tradefl::core
