#include "core/gbd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

#include "common/check.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/snapshot.h"
#include "common/stopwatch.h"
#include "core/iteration_trace.h"
#include "core/solution_codec.h"
#include "game/potential.h"
#include "math/grid.h"
#include "math/matrix.h"
#include "obs/obs.h"

namespace tradefl::core {

using game::CoopetitionGame;
using game::OrgId;
using game::StrategyProfile;
using math::Vec;

namespace {

StrategyProfile to_profile(const Vec& d, const std::vector<std::size_t>& freq) {
  StrategyProfile profile(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    profile[i].data_fraction = d[i];
    profile[i].freq_index = freq[i];
  }
  return profile;
}

}  // namespace

GbdSolver::GbdSolver(const CoopetitionGame& game, GbdOptions options)
    : game_(game), options_(options) {
  if (options_.epsilon < 0.0) throw std::invalid_argument("gbd: epsilon must be >= 0");
  if (options_.max_iterations < 1) throw std::invalid_argument("gbd: need >= 1 iteration");
}

double GbdSolver::deadline_slack(OrgId i, double d, double f) const {
  const auto& org = game_.org(i);
  return org.download_time + org.cycles_per_bit * d * org.data_size_bits / f +
         org.upload_time - game_.params().tau;
}

PrimalSolve GbdSolver::solve_primal(const std::vector<std::size_t>& freq_indices) const {
  return solve_primal_impl(freq_indices, options_.barrier, /*poison=*/false);
}

PrimalSolve GbdSolver::solve_primal_recovering(const std::vector<std::size_t>& freq_indices,
                                               int iteration) const {
  const bool perturbed = options_.faults != nullptr && options_.faults->enabled() &&
                         options_.faults->perturb_solver(static_cast<std::uint64_t>(iteration));
  if (perturbed) TFL_COUNTER_INC("fault.injected.solver");
  try {
    return solve_primal_impl(freq_indices, options_.barrier, perturbed);
  } catch (const ContractViolation& diverged) {
    // Structured recovery, stage 1: restart the barrier from scratch with a
    // damped t-schedule (more, gentler centering stages) and no fault. The
    // damped schedule trades iterations for numerical headroom.
    TFL_COUNTER_INC("solver.recoveries");
    TFL_WARN << "gbd: primal barrier diverged at iteration " << iteration
             << ", restarting damped: " << diverged.what();
    math::BarrierOptions damped = options_.barrier;
    damped.t_growth = std::min(damped.t_growth, options_.recovery_t_growth);
    try {
      return solve_primal_impl(freq_indices, damped, /*poison=*/false);
    } catch (const ContractViolation& second) {
      // Stage 2 is the caller's: run_cgbd() catches SolverFailure and falls
      // back to DBR, which needs no barrier at all.
      throw SolverFailure(std::string("gbd: damped barrier restart diverged at iteration ") +
                          std::to_string(iteration) + ": " + second.what());
    }
  }
}

PrimalSolve GbdSolver::solve_primal_impl(const std::vector<std::size_t>& freq_indices,
                                         const math::BarrierOptions& barrier_options,
                                         bool poison) const {
  TFL_SPAN("cgbd.primal_solve");
  TFL_SCOPED_TIMER("cgbd.subproblem.seconds");
  const std::size_t n = game_.size();
  const double d_min = game_.params().d_min;
  PrimalSolve result;

  // Feasibility screen: each org must satisfy the deadline at d = D_min.
  double worst_slack = -std::numeric_limits<double>::infinity();
  std::size_t worst_org = 0;
  for (OrgId i = 0; i < n; ++i) {
    const double f = game_.org(i).freq_levels.at(freq_indices[i]);
    const double slack = deadline_slack(i, d_min, f);
    if (slack > worst_slack) {
      worst_slack = slack;
      worst_org = i;
    }
  }
  if (worst_slack >= 0.0) {
    // Problem (21): ζ* = max_i [g_i(D_min, f_i)]+ at d = D_min (g increases
    // in d, so D_min minimizes every row simultaneously).
    result.feasible = false;
    result.zeta = worst_slack;
    result.violating_org = worst_org;
    result.d.assign(n, d_min);
    return result;
  }

  // Barrier objective: the exact potential U(d, f) at the fixed frequencies.
  math::SmoothObjective objective;
  StrategyProfile scratch = to_profile(Vec(n, d_min), freq_indices);
  objective.value = [this, &scratch, &freq_indices, poison](const Vec& d) {
    if (poison) return std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < d.size(); ++i) scratch[i].data_fraction = d[i];
    return game::potential(game_, scratch);
  };
  objective.gradient = [this, &scratch](const Vec& d) {
    for (std::size_t i = 0; i < d.size(); ++i) scratch[i].data_fraction = d[i];
    Vec grad(d.size());
    for (OrgId i = 0; i < d.size(); ++i) {
      grad[i] = game::potential_gradient_d(game_, scratch, i);
    }
    return grad;
  };
  objective.hessian = [this, &scratch](const Vec& d) {
    for (std::size_t i = 0; i < d.size(); ++i) scratch[i].data_fraction = d[i];
    // Rank-one: P''(Ω) w w^T.
    Vec weights(d.size());
    for (OrgId i = 0; i < d.size(); ++i) weights[i] = game_.contribution_weight(i);
    const double curvature =
        game_.accuracy().performance_second_derivative(game_.omega(scratch));
    return math::Matrix::outer(weights, curvature);
  };

  math::BoxBounds box{Vec(n, d_min), Vec(n, 1.0)};
  // Degenerate boxes (D_min == 1) cannot happen: params validation enforces
  // d_min <= 1 and the barrier needs strict width; widen infinitesimally.
  for (std::size_t i = 0; i < n; ++i) {
    if (box.upper[i] - box.lower[i] < 1e-9) box.upper[i] = box.lower[i] + 1e-9;
  }
  math::LinearInequalities inequalities;
  inequalities.a = math::Matrix(n, n);
  inequalities.b.assign(n, 0.0);
  for (OrgId i = 0; i < n; ++i) {
    const auto& org = game_.org(i);
    const double f = org.freq_levels.at(freq_indices[i]);
    inequalities.a.at(i, i) = org.cycles_per_bit * org.data_size_bits / f;
    inequalities.b[i] = game_.params().tau - org.download_time - org.upload_time;
  }

  Vec start(n, d_min);
  const auto barrier = math::maximize_with_barrier(objective, box, inequalities, start,
                                                   barrier_options);
  result.feasible = true;
  result.d = barrier.x;
  result.multipliers = barrier.multipliers;
  result.value = barrier.value;
  return result;
}

GbdSolver::OptimalityCut GbdSolver::make_optimality_cut(const PrimalSolve& primal) const {
  // A valid Benders optimality cut for the max problem must over-estimate
  // v(f) = max_{d feasible} U(d, f). We take the Lagrangian
  //   L(d, f, u) = U(d, f) - Σ_i u_i g_i(d, f)   (>= U on the feasible set)
  // and over-estimate its max over d in closed form by linearizing the only
  // coupled term, P(Ω(d)), at the primal point Ω_v (P is concave, so its
  // tangent majorizes it). Everything is then separable per organization:
  //   cut(f) = P(Ω_v) - P'(Ω_v) Ω_v
  //            + Σ_i max_{d_i ∈ [D_min, ub_i(f_i)]} [slope_i(f_i) d_i]
  //            + Σ_i const_i(f_i),
  // with the max attained at an interval endpoint. Tabulated per org/level.
  OptimalityCut cut;
  StrategyProfile probe = to_profile(primal.d, std::vector<std::size_t>(game_.size(), 0));
  const double omega_v = game_.omega(probe);
  const double p_slope = game_.accuracy().performance_derivative(omega_v);
  cut.base = game_.accuracy().performance(omega_v) - p_slope * omega_v;

  const auto& params = game_.params();
  cut.per_level.resize(game_.size());
  for (OrgId i = 0; i < game_.size(); ++i) {
    const auto& org = game_.org(i);
    const double z = game_.weight_z(i);
    const double w_i = game_.contribution_weight(i);
    const double u = primal.multipliers.empty() ? 0.0 : primal.multipliers[i];
    cut.per_level[i].reserve(org.freq_levels.size());
    for (std::size_t level = 0; level < org.freq_levels.size(); ++level) {
      const double f = org.freq_levels[level];
      // Coefficient of d_i inside L at this frequency.
      double slope = p_slope * w_i;
      slope -= params.omega_e * params.kappa * f * f * org.cycles_per_bit *
               org.data_size_bits / z;
      slope += params.gamma * game_.rho().row_sum(i) * org.data_size_bits / z;
      slope -= u * org.cycles_per_bit * org.data_size_bits / f;
      // d_i-independent contribution at this frequency.
      double constant = params.gamma * game_.rho().row_sum(i) * params.lambda * f / z;
      constant -= u * (org.download_time + org.upload_time - params.tau);
      // Maximize slope * d over the deadline-feasible interval.
      const double upper =
          std::max(params.d_min, std::min(1.0, game_.data_upper_bound(i, level)));
      const double best_linear = std::max(slope * params.d_min, slope * upper);
      cut.per_level[i].push_back(best_linear + constant);
    }
  }
  return cut;
}

GbdSolver::FeasibilityCut GbdSolver::make_feasibility_cut(
    const PrimalSolve& primal, const std::vector<std::size_t>& freq) const {
  (void)freq;
  FeasibilityCut cut;
  cut.org = primal.violating_org;
  const auto& org = game_.org(cut.org);
  cut.slack_by_level.reserve(org.freq_levels.size());
  for (double f : org.freq_levels) {
    cut.slack_by_level.push_back(deadline_slack(cut.org, primal.d[cut.org], f));
  }
  return cut;
}

bool GbdSolver::solve_master(const std::vector<OptimalityCut>& optimality_cuts,
                             const std::vector<FeasibilityCut>& feasibility_cuts,
                             std::vector<std::size_t>& best_tuple, double& best_bound,
                             std::uint64_t& tuples_visited) const {
  TFL_SPAN("cgbd.master_step");
  TFL_SCOPED_TIMER("cgbd.master.seconds");
  const std::size_t n = game_.size();
  std::vector<std::size_t> radices(n);
  for (OrgId i = 0; i < n; ++i) radices[i] = game_.org(i).freq_levels.size();
  best_bound = -std::numeric_limits<double>::infinity();
  tuples_visited = 0;
  if (math::cartesian_size(radices) == 0) return false;  // an org with no levels

  ThreadPool* pool = global_pool();
  const std::size_t workers = pool == nullptr ? 1 : pool->size();
  TFL_GAUGE_SET("parallel.pool.size", workers);

  // Split the mixed-radix grid by fixing suffix digits [split, n): each chunk
  // enumerates the leading digits [0, split) with the suffix held constant.
  // enumerate_cartesian increments digit 0 fastest, so increasing chunk index
  // walks suffixes in exactly the serial visiting order — folding chunks in
  // index order with a strict `>` reproduces the serial first-max tuple bit
  // for bit. The chunk grid depends only on the problem and worker count
  // target, never on scheduling.
  std::size_t split = n;
  std::size_t chunks = 1;
  if (pool != nullptr) {
    const std::size_t target = 4 * workers;
    while (split > 0 && chunks < target) {
      --split;
      chunks *= radices[split];
    }
  }
  TFL_GAUGE_SET("parallel.queue.depth", pool == nullptr ? 0 : chunks);

  const std::vector<std::size_t> lead_radices(radices.begin(),
                                              radices.begin() + static_cast<std::ptrdiff_t>(split));

  struct ChunkBest {
    bool found = false;
    double bound = -std::numeric_limits<double>::infinity();
    std::vector<std::size_t> tuple;
    std::uint64_t visited = 0;
  };

  const auto scan_chunk = [&](std::size_t chunk, std::size_t) {
    ChunkBest local;
    std::vector<std::size_t> f(n, 0);
    // Decode the fixed suffix digits of this chunk (digit `split` varies
    // fastest across chunks, mirroring the serial mixed-radix order).
    std::size_t remainder = chunk;
    for (std::size_t j = split; j < n; ++j) {
      f[j] = remainder % radices[j];
      remainder /= radices[j];
    }
    local.visited = math::enumerate_cartesian(lead_radices, [&](const std::vector<std::size_t>& lead) {
      for (std::size_t i = 0; i < split; ++i) f[i] = lead[i];
      for (const FeasibilityCut& cut : feasibility_cuts) {
        if (cut.slack_by_level[f[cut.org]] > 0.0) return true;  // pruned, keep going
      }
      double envelope = std::numeric_limits<double>::infinity();
      for (const OptimalityCut& cut : optimality_cuts) {
        double value = cut.base;
        for (std::size_t i = 0; i < n; ++i) value += cut.per_level[i][f[i]];
        envelope = std::min(envelope, value);
        if (envelope <= local.bound) break;  // cannot beat the incumbent tuple
      }
      if (envelope > local.bound) {
        local.bound = envelope;
        local.tuple = f;
        local.found = true;
      }
      return true;
    });
    return local;
  };

  const ChunkBest best = ordered_reduce<ChunkBest>(
      pool, chunks, ChunkBest{}, scan_chunk, [](ChunkBest& acc, ChunkBest&& value) {
        acc.visited += value.visited;
        if (value.found && value.bound > acc.bound) {
          acc.bound = value.bound;
          acc.tuple = std::move(value.tuple);
          acc.found = true;
        }
      });

  tuples_visited = best.visited;
  best_bound = best.bound;
  if (best.found) best_tuple = best.tuple;
  return best.found;
}

Solution GbdSolver::solve() {
  TFL_SPAN("cgbd.solve");
  Stopwatch watch;
  const std::size_t n = game_.size();
  Solution solution;

  std::vector<OptimalityCut> optimality_cuts;
  std::vector<FeasibilityCut> feasibility_cuts;
  std::set<std::vector<std::size_t>> visited;

  // f^(0): fastest level per organization (most likely feasible under C^(3)).
  std::vector<std::size_t> freq(n);
  for (OrgId i = 0; i < n; ++i) freq[i] = game_.org(i).freq_levels.size() - 1;

  double lower_bound = -std::numeric_limits<double>::infinity();
  double upper_bound = std::numeric_limits<double>::infinity();
  StrategyProfile incumbent;
  std::uint64_t total_tuples = 0;
  int first_iteration = 1;

  // ----- checkpoint codec (kept local: the cut types are private) -----
  constexpr std::uint32_t kGbdSnapshotVersion = 1;
  constexpr const char* kGbdSnapshotKind = "core.gbd";
  // Fingerprint the economic parameters, not just the problem shape: two
  // games with identical org/level counts but different draws must not be
  // able to exchange checkpoints.
  std::uint64_t level_fingerprint = 0;
  {
    SnapshotWriter fingerprint;
    for (OrgId i = 0; i < n; ++i) {
      const game::Organization& org = game_.org(i);
      fingerprint.put_f64(org.data_size_bits);
      fingerprint.put_u64(org.sample_count);
      fingerprint.put_f64(org.profitability);
      fingerprint.put_f64(org.cycles_per_bit);
      fingerprint.put_f64s(org.freq_levels);
      fingerprint.put_f64(org.download_time);
      fingerprint.put_f64(org.upload_time);
    }
    level_fingerprint = crc32(fingerprint.payload());
  }

  const auto write_checkpoint = [&](int iteration_completed) {
    SnapshotWriter writer;
    writer.put_u64(n);
    writer.put_u64(level_fingerprint);
    writer.put_i64(iteration_completed);
    writer.put_u64s(std::vector<std::uint64_t>(freq.begin(), freq.end()));
    writer.put_f64(lower_bound);
    writer.put_f64(upper_bound);
    put_profile(writer, incumbent);
    writer.put_u64(total_tuples);
    writer.put_u64(solution.trace.size());
    for (const IterationRecord& record : solution.trace) put_iteration_record(writer, record);
    writer.put_u64(optimality_cuts.size());
    for (const OptimalityCut& cut : optimality_cuts) {
      writer.put_f64(cut.base);
      writer.put_u64(cut.per_level.size());
      for (const std::vector<double>& levels : cut.per_level) writer.put_f64s(levels);
    }
    writer.put_u64(feasibility_cuts.size());
    for (const FeasibilityCut& cut : feasibility_cuts) {
      writer.put_u64(cut.org);
      writer.put_f64s(cut.slack_by_level);
    }
    writer.put_u64(visited.size());
    for (const std::vector<std::size_t>& tuple : visited) {
      writer.put_u64s(std::vector<std::uint64_t>(tuple.begin(), tuple.end()));
    }
    const auto written =
        write_snapshot_file(options_.checkpoint_path, kGbdSnapshotKind, kGbdSnapshotVersion,
                            writer);
    if (!written.ok()) {
      throw std::runtime_error("gbd checkpoint write failed [" + written.error().code +
                               "]: " + written.error().message);
    }
    TFL_COUNTER_INC("snapshot.writes");
    TFL_COUNTER_ADD("snapshot.bytes", written.value());
  };

  if (options_.resume && !options_.checkpoint_path.empty() &&
      snapshot_exists(options_.checkpoint_path)) {
    auto payload =
        read_snapshot_file(options_.checkpoint_path, kGbdSnapshotKind, kGbdSnapshotVersion);
    if (!payload.ok()) {
      throw std::runtime_error("gbd resume failed closed [" + payload.error().code +
                               "]: " + payload.error().message);
    }
    auto decoded = decode_snapshot<bool>(payload.value(), [&](SnapshotReader& reader) {
      if (reader.get_u64() != n || reader.get_u64() != level_fingerprint) {
        throw SnapshotError("checkpoint was written for a different game instance");
      }
      first_iteration = static_cast<int>(reader.get_i64()) + 1;
      const std::vector<std::uint64_t> raw_freq = reader.get_u64s();
      freq.assign(raw_freq.begin(), raw_freq.end());
      lower_bound = reader.get_f64();
      upper_bound = reader.get_f64();
      incumbent = get_profile(reader);
      total_tuples = reader.get_u64();
      const std::uint64_t trace_count = reader.get_u64();
      for (std::uint64_t i = 0; i < trace_count; ++i) {
        solution.trace.push_back(get_iteration_record(reader));
      }
      const std::uint64_t optimality_count = reader.get_u64();
      for (std::uint64_t i = 0; i < optimality_count; ++i) {
        OptimalityCut cut;
        cut.base = reader.get_f64();
        const std::uint64_t org_count = reader.get_u64();
        for (std::uint64_t o = 0; o < org_count; ++o) cut.per_level.push_back(reader.get_f64s());
        optimality_cuts.push_back(std::move(cut));
      }
      const std::uint64_t feasibility_count = reader.get_u64();
      for (std::uint64_t i = 0; i < feasibility_count; ++i) {
        FeasibilityCut cut;
        cut.org = static_cast<std::size_t>(reader.get_u64());
        cut.slack_by_level = reader.get_f64s();
        feasibility_cuts.push_back(std::move(cut));
      }
      const std::uint64_t visited_count = reader.get_u64();
      for (std::uint64_t i = 0; i < visited_count; ++i) {
        const std::vector<std::uint64_t> raw_tuple = reader.get_u64s();
        visited.insert(std::vector<std::size_t>(raw_tuple.begin(), raw_tuple.end()));
      }
      return true;
    });
    if (!decoded.ok()) {
      throw std::runtime_error("gbd resume failed closed [" + decoded.error().code +
                               "]: " + decoded.error().message);
    }
    solution.iterations = first_iteration - 1;
    TFL_COUNTER_INC("snapshot.resumes");
  }

  for (int k = first_iteration; k <= options_.max_iterations; ++k) {
    check_cancelled(options_.cancel);
    crash_if_scheduled(options_.faults, static_cast<std::uint64_t>(k));
    visited.insert(freq);
    const PrimalSolve primal = solve_primal_recovering(freq, k);
    if (primal.feasible) {
      optimality_cuts.push_back(make_optimality_cut(primal));
      if (primal.value > lower_bound) {
        lower_bound = primal.value;
        incumbent = to_profile(primal.d, freq);
      }
    } else {
      feasibility_cuts.push_back(make_feasibility_cut(primal, freq));
    }

    if (!incumbent.empty()) {
      append_iteration(game_, incumbent, k, solution.trace);
    }
    solution.iterations = k;
    TFL_COUNTER_INC("cgbd.iterations");

    std::vector<std::size_t> next;
    double master_bound = 0.0;
    std::uint64_t tuples = 0;
    if (!solve_master(optimality_cuts, feasibility_cuts, next, master_bound, tuples)) {
      // Every tuple excluded by feasibility cuts: the instance is infeasible.
      throw std::runtime_error("gbd: no frequency assignment satisfies the deadline");
    }
    total_tuples = tuples;
    upper_bound = master_bound;
    TFL_SERIES_APPEND("cgbd.bound_gap.trajectory", upper_bound - lower_bound);

    if (upper_bound - lower_bound <= options_.epsilon) {
      solution.converged = true;
      break;
    }
    if (visited.count(next) > 0) {
      // The master re-proposed a visited tuple: its cut already binds, so the
      // bounds cannot improve further (finite convergence, Lemma 2).
      solution.converged = true;
      break;
    }
    freq = std::move(next);
    // Iteration k is complete (cuts recorded, bounds updated, `freq` holds
    // the next tuple): this is the durable point a resumed solve restarts
    // from. A converged solve breaks above without checkpointing — replaying
    // its final iteration from the previous checkpoint reconverges
    // identically.
    if (!options_.checkpoint_path.empty() &&
        (k % static_cast<int>(std::max<std::size_t>(options_.checkpoint_every, 1)) == 0)) {
      write_checkpoint(k);
    }
  }

  if (incumbent.empty()) {
    throw std::runtime_error("gbd: no feasible primal encountered");
  }
  solution.profile = incumbent;
  solution.solve_seconds = watch.elapsed_seconds();
  TFL_COUNTER_ADD("cgbd.cuts.optimality", optimality_cuts.size());
  TFL_COUNTER_ADD("cgbd.cuts.feasibility", feasibility_cuts.size());
  solution.diagnostics.emplace_back("upper_bound", upper_bound);
  solution.diagnostics.emplace_back("lower_bound", lower_bound);
  solution.diagnostics.emplace_back("gap", upper_bound - lower_bound);
  solution.diagnostics.emplace_back("master_tuples", static_cast<double>(total_tuples));
  solution.diagnostics.emplace_back("optimality_cuts", static_cast<double>(optimality_cuts.size()));
  solution.diagnostics.emplace_back("feasibility_cuts",
                                    static_cast<double>(feasibility_cuts.size()));
  return solution;
}

}  // namespace tradefl::core
