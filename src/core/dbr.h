// DBR — the distributed best-response algorithm (Algorithm 2). Organizations
// start from {d = D_min, f = F^(m)} and iteratively play best responses until
// no organization changes its strategy. Converges by the finite-improvement
// property of the (weighted) potential game; complexity O(T·L·|N|·m).
#pragma once

#include "core/best_response.h"
#include "core/solution.h"
#include "game/game.h"

namespace tradefl::core {

struct DbrOptions {
  /// H — maximum decision slots before giving up (Algorithm 2 input).
  int max_rounds = 200;

  /// Minimum payoff improvement required to adopt a new strategy; guards
  /// against floating-point cycling.
  double improvement_tol = 1e-9;

  /// Treat |d - d'| below this as "no change" for convergence detection.
  double strategy_tol = 1e-8;

  /// Options forwarded to every best-response computation (the baselines
  /// override these: WPR disables redistribution, FIP sets d_grid_step).
  BestResponseOptions best_response{};

  /// Update style: sequential (Gauss–Seidel) passes converge for potential
  /// games and are the default; simultaneous (Jacobi) matches a fully
  /// synchronous reading of Algorithm 2 and is provided for ablations.
  bool sequential_updates = true;
};

/// Runs best-response dynamics from `start` (or the minimal profile when
/// `start` is empty). The trace records potential/payoffs after every round.
Solution run_dbr(const game::CoopetitionGame& game, const DbrOptions& options = {},
                 game::StrategyProfile start = {});

}  // namespace tradefl::core
