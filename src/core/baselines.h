// The four comparison baselines of Sec. VI:
//  * WPR — DBR without payoff redistribution: organizations profit from the
//    global model only (Eq. 10 removed from the payoff).
//  * GCA — DBR with greedy computation allocation: f_i = k d_i, projected to
//    the nearest feasible frequency level.
//  * FIP — finite-improvement-property scheme: d restricted to the grid
//    {e, 2e, ..., 1}; improvement steps until no organization can improve.
//  * TOS — theoretically optimal scheme: d_i = 1, f_i = F^(m); ignores the
//    deadline and coopetition damage (an infeasible upper-bound reference).
#pragma once

#include "core/dbr.h"
#include "core/solution.h"
#include "game/game.h"

namespace tradefl::core {

/// WPR: best-response dynamics on the redistribution-free payoff.
Solution run_wpr(const game::CoopetitionGame& game, const DbrOptions& options = {});

struct GcaOptions {
  /// Proportionality constant k of f = k d. When 0, k is chosen per
  /// organization as F^(m) / full_speed_d, i.e. the allocation greedily
  /// ramps to the fastest level once d reaches `full_speed_d`.
  double k_scale = 0.0;

  /// Data fraction at which the default greedy allocation saturates at
  /// F^(m). Small values make GCA burn energy aggressively — the "greedy"
  /// behaviour the paper contrasts against.
  double full_speed_d = 0.2;

  DbrOptions dbr{};
};

/// GCA: organizations best-respond in d only; f is pinned to ~k·d (projected
/// to the level grid, bumped up if the deadline requires it).
Solution run_gca(const game::CoopetitionGame& game, const GcaOptions& options = {});

struct FipOptions {
  /// e — grid step of the discretized data strategy space.
  double grid_step = 0.1;
  DbrOptions dbr{};
};

/// FIP: finite improvement path over the discretized strategy space.
Solution run_fip(const game::CoopetitionGame& game, const FipOptions& options = {});

/// TOS: the all-in profile (d = 1, fastest f). No dynamics; single snapshot.
Solution run_tos(const game::CoopetitionGame& game);

}  // namespace tradefl::core
