#include "core/mechanism.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "game/potential.h"

namespace tradefl::core {

using game::CoopetitionGame;
using game::OrgId;

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kCgbd: return "CGBD";
    case Scheme::kDbr: return "DBR";
    case Scheme::kWpr: return "WPR";
    case Scheme::kGca: return "GCA";
    case Scheme::kFip: return "FIP";
    case Scheme::kTos: return "TOS";
  }
  return "?";
}

std::vector<Scheme> all_schemes() {
  return {Scheme::kCgbd, Scheme::kDbr, Scheme::kWpr, Scheme::kGca, Scheme::kFip, Scheme::kTos};
}

MechanismResult run_scheme(const CoopetitionGame& game, Scheme scheme,
                           const SchemeOptions& options) {
  // Theorem 2's budget-balance argument needs r_{i,j} = -r_{j,i}, which holds
  // exactly when the competition matrix is symmetric (Eq. 9). Games with
  // asymmetric rho are fine elsewhere, but not under the trading mechanism.
  TFL_ASSERT(game.rho().is_symmetric(1e-9),
             "trading mechanism requires a symmetric competition matrix");
  MechanismResult result;
  result.scheme = scheme;
  switch (scheme) {
    case Scheme::kCgbd: result.solution = run_cgbd(game, options.cgbd); break;
    case Scheme::kDbr: result.solution = run_dbr(game, options.dbr); break;
    case Scheme::kWpr: result.solution = run_wpr(game, options.dbr); break;
    case Scheme::kGca: result.solution = run_gca(game, options.gca); break;
    case Scheme::kFip: result.solution = run_fip(game, options.fip); break;
    case Scheme::kTos: result.solution = run_tos(game); break;
  }

  const auto& profile = result.solution.profile;
  result.welfare = game.social_welfare(profile);
  result.potential = game::potential(game, profile);
  result.paper_potential = game::paper_potential(game, profile);
  result.total_damage = game.total_damage(profile);
  result.total_data_fraction = game.total_data_fraction(profile);
  result.performance = game.performance(profile);
  result.payoffs.reserve(game.size());
  for (OrgId i = 0; i < game.size(); ++i) result.payoffs.push_back(game.payoff(i, profile));

  result.redistribution.assign(game.size(), std::vector<double>(game.size(), 0.0));
  double redistribution_sum = 0.0;
  double redistribution_scale = 0.0;
  for (OrgId i = 0; i < game.size(); ++i) {
    for (OrgId j = 0; j < game.size(); ++j) {
      if (i != j) result.redistribution[i][j] = game.redistribution_pair(i, j, profile);
      redistribution_sum += result.redistribution[i][j];
      redistribution_scale += std::abs(result.redistribution[i][j]);
    }
  }
  // Budget balance (Thm. 2): pairwise transfers cancel, Σ_{i,j} r_{i,j} = 0,
  // up to accumulation noise. Holds for every scheme because r is a property
  // of the game, not the solver.
  TFL_ASSERT(std::abs(redistribution_sum) <= 1e-9 * std::max(redistribution_scale, 1.0),
             "redistribution imbalance ", redistribution_sum, " at scale ",
             redistribution_scale, " for scheme ", scheme_name(scheme));
  return result;
}

std::string PropertyReport::summary() const {
  std::ostringstream out;
  out << "IR=" << (individual_rationality ? "yes" : "NO")
      << " (min payoff " << min_payoff << "), "
      << "BB=" << (budget_balance ? "yes" : "NO")
      << " (sum R " << redistribution_sum << "), "
      << "NE=" << (nash_equilibrium ? "yes" : "NO")
      << " (max gain " << max_unilateral_gain << "), "
      << "CE=" << (computationally_efficient ? "yes" : "NO")
      << " (" << iterations << " iterations)";
  return out.str();
}

PropertyReport verify_properties(const CoopetitionGame& game, const MechanismResult& result,
                                 bool check_nash, const PropertyTolerances& tolerances) {
  PropertyReport report;

  report.min_payoff = result.payoffs.empty() ? 0.0 : result.payoffs.front();
  for (double payoff : result.payoffs) report.min_payoff = std::min(report.min_payoff, payoff);
  report.individual_rationality = report.min_payoff >= -tolerances.payoff_tol;

  double sum_r = 0.0;
  double scale = 0.0;
  for (const auto& row : result.redistribution) {
    for (double r : row) {
      sum_r += r;
      scale += std::abs(r);
    }
  }
  report.redistribution_sum = sum_r;
  report.budget_balance = std::abs(sum_r) <= tolerances.budget_tol * std::max(scale, 1.0);

  if (check_nash) {
    report.max_unilateral_gain = game.max_unilateral_gain(result.solution.profile);
    report.nash_equilibrium = report.max_unilateral_gain <= tolerances.nash_tol;
  }

  report.iterations = result.solution.iterations;
  report.computationally_efficient = result.solution.converged;
  return report;
}

}  // namespace tradefl::core
