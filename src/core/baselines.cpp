#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stopwatch.h"
#include "core/iteration_trace.h"

namespace tradefl::core {

using game::CoopetitionGame;
using game::OrgId;
using game::Strategy;
using game::StrategyProfile;

Solution run_wpr(const CoopetitionGame& game, const DbrOptions& options) {
  DbrOptions wpr_options = options;
  wpr_options.best_response.include_redistribution = false;
  return run_dbr(game, wpr_options);
}

namespace {

/// Frequency level closest to k·d from below the deadline: picks the level
/// nearest to the target and bumps upward until C^(3) admits the given d (a
/// higher f shortens training).
std::size_t gca_level(const CoopetitionGame& game, OrgId i, double d, double k_scale,
                      double full_speed_d) {
  const auto& levels = game.org(i).freq_levels;
  const double k = k_scale > 0.0 ? k_scale : levels.back() / full_speed_d;
  const double target = std::clamp(k * d, levels.front(), levels.back());
  std::size_t best = 0;
  double best_gap = std::abs(levels[0] - target);
  for (std::size_t level = 1; level < levels.size(); ++level) {
    const double gap = std::abs(levels[level] - target);
    if (gap < best_gap) {
      best_gap = gap;
      best = level;
    }
  }
  while (best + 1 < levels.size() && game.data_upper_bound(i, best) < d) ++best;
  return best;
}

}  // namespace

Solution run_gca(const CoopetitionGame& game, const GcaOptions& options) {
  Stopwatch watch;
  Solution solution;
  StrategyProfile profile = game.minimal_profile();
  for (OrgId i = 0; i < game.size(); ++i) {
    profile[i].freq_index = gca_level(game, i, profile[i].data_fraction, options.k_scale, options.full_speed_d);
  }
  append_iteration(game, profile, 0, solution.trace);

  for (int round = 1; round <= options.dbr.max_rounds; ++round) {
    bool any_change = false;
    for (OrgId i = 0; i < game.size(); ++i) {
      // Best-respond in d with f pinned to the greedy allocation; since the
      // pin depends on d, evaluate the coupled choice per feasible d via the
      // forced-level best response at the current pin, then re-pin.
      BestResponseOptions br = options.dbr.best_response;
      br.forced_freq_level = static_cast<int>(profile[i].freq_index);
      const double current = objective_payoff(game, i, profile, br);
      BestResponse response;
      try {
        response = best_response(game, i, profile, br);
      } catch (const std::runtime_error&) {
        continue;  // pinned level infeasible; keep the current strategy
      }
      const std::size_t repinned =
          gca_level(game, i, response.strategy.data_fraction, options.k_scale, options.full_speed_d);
      response.strategy.freq_index = repinned;
      // Clamp d to the re-pinned level's feasible range.
      response.strategy.data_fraction =
          std::min(response.strategy.data_fraction, game.data_upper_bound(i, repinned));
      if (response.strategy.data_fraction < game.params().d_min) continue;
      StrategyProfile trial = profile;
      trial[i] = response.strategy;
      const double trial_payoff = objective_payoff(game, i, trial, br);
      const bool moved =
          response.strategy.freq_index != profile[i].freq_index ||
          std::abs(response.strategy.data_fraction - profile[i].data_fraction) >
              options.dbr.strategy_tol;
      if (trial_payoff > current + options.dbr.improvement_tol && moved) {
        profile[i] = response.strategy;
        any_change = true;
      }
    }
    append_iteration(game, profile, round, solution.trace);
    solution.iterations = round;
    if (!any_change) {
      solution.converged = true;
      break;
    }
  }
  solution.profile = profile;
  solution.solve_seconds = watch.elapsed_seconds();
  return solution;
}

Solution run_fip(const CoopetitionGame& game, const FipOptions& options) {
  if (options.grid_step <= 0.0 || options.grid_step > 1.0) {
    throw std::invalid_argument("fip: grid_step must lie in (0, 1]");
  }
  DbrOptions fip_options = options.dbr;
  fip_options.best_response.d_grid_step = options.grid_step;
  return run_dbr(game, fip_options);
}

Solution run_tos(const CoopetitionGame& game) {
  Solution solution;
  StrategyProfile profile(game.size());
  for (OrgId i = 0; i < game.size(); ++i) {
    profile[i].data_fraction = 1.0;
    profile[i].freq_index = game.org(i).freq_levels.size() - 1;
  }
  solution.profile = profile;
  append_iteration(game, profile, 0, solution.trace);
  solution.converged = true;
  solution.iterations = 0;
  return solution;
}

}  // namespace tradefl::core
