#include "core/solution_codec.h"

namespace tradefl::core {

void put_profile(SnapshotWriter& writer, const game::StrategyProfile& profile) {
  writer.put_u64(profile.size());
  for (const game::Strategy& strategy : profile) {
    writer.put_f64(strategy.data_fraction);
    writer.put_u64(strategy.freq_index);
  }
}

game::StrategyProfile get_profile(SnapshotReader& reader) {
  const std::uint64_t count = reader.get_u64();
  game::StrategyProfile profile;
  profile.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    game::Strategy strategy;
    strategy.data_fraction = reader.get_f64();
    strategy.freq_index = static_cast<std::size_t>(reader.get_u64());
    profile.push_back(strategy);
  }
  return profile;
}

void put_iteration_record(SnapshotWriter& writer, const IterationRecord& record) {
  writer.put_i64(record.iteration);
  writer.put_f64(record.potential);
  writer.put_f64(record.paper_potential);
  writer.put_f64(record.welfare);
  writer.put_f64s(record.payoffs);
  put_profile(writer, record.profile);
}

IterationRecord get_iteration_record(SnapshotReader& reader) {
  IterationRecord record;
  record.iteration = static_cast<int>(reader.get_i64());
  record.potential = reader.get_f64();
  record.paper_potential = reader.get_f64();
  record.welfare = reader.get_f64();
  record.payoffs = reader.get_f64s();
  record.profile = get_profile(reader);
  return record;
}

void put_solution(SnapshotWriter& writer, const Solution& solution) {
  put_profile(writer, solution.profile);
  writer.put_u64(solution.trace.size());
  for (const IterationRecord& record : solution.trace) put_iteration_record(writer, record);
  writer.put_bool(solution.converged);
  writer.put_i64(solution.iterations);
  writer.put_f64(solution.solve_seconds);
  writer.put_u64(solution.diagnostics.size());
  for (const auto& [name, value] : solution.diagnostics) {
    writer.put_string(name);
    writer.put_f64(value);
  }
}

Solution get_solution(SnapshotReader& reader) {
  Solution solution;
  solution.profile = get_profile(reader);
  const std::uint64_t trace_count = reader.get_u64();
  for (std::uint64_t i = 0; i < trace_count; ++i) {
    solution.trace.push_back(get_iteration_record(reader));
  }
  solution.converged = reader.get_bool();
  solution.iterations = static_cast<int>(reader.get_i64());
  solution.solve_seconds = reader.get_f64();
  const std::uint64_t diagnostic_count = reader.get_u64();
  for (std::uint64_t i = 0; i < diagnostic_count; ++i) {
    std::string name = reader.get_string();
    const double value = reader.get_f64();
    solution.diagnostics.emplace_back(std::move(name), value);
  }
  return solution;
}

void put_mechanism_result(SnapshotWriter& writer, const MechanismResult& result) {
  writer.put_u64(static_cast<std::uint64_t>(result.scheme));
  put_solution(writer, result.solution);
  writer.put_f64(result.welfare);
  writer.put_f64(result.potential);
  writer.put_f64(result.paper_potential);
  writer.put_f64(result.total_damage);
  writer.put_f64(result.total_data_fraction);
  writer.put_f64(result.performance);
  writer.put_f64s(result.payoffs);
  writer.put_u64(result.redistribution.size());
  for (const std::vector<double>& row : result.redistribution) writer.put_f64s(row);
}

MechanismResult get_mechanism_result(SnapshotReader& reader) {
  MechanismResult result;
  result.scheme = static_cast<Scheme>(reader.get_u64());
  result.solution = get_solution(reader);
  result.welfare = reader.get_f64();
  result.potential = reader.get_f64();
  result.paper_potential = reader.get_f64();
  result.total_damage = reader.get_f64();
  result.total_data_fraction = reader.get_f64();
  result.performance = reader.get_f64();
  result.payoffs = reader.get_f64s();
  const std::uint64_t rows = reader.get_u64();
  for (std::uint64_t i = 0; i < rows; ++i) result.redistribution.push_back(reader.get_f64s());
  return result;
}

void put_property_report(SnapshotWriter& writer, const PropertyReport& report) {
  writer.put_bool(report.individual_rationality);
  writer.put_f64(report.min_payoff);
  writer.put_bool(report.budget_balance);
  writer.put_f64(report.redistribution_sum);
  writer.put_bool(report.nash_equilibrium);
  writer.put_f64(report.max_unilateral_gain);
  writer.put_bool(report.computationally_efficient);
  writer.put_i64(report.iterations);
}

PropertyReport get_property_report(SnapshotReader& reader) {
  PropertyReport report;
  report.individual_rationality = reader.get_bool();
  report.min_payoff = reader.get_f64();
  report.budget_balance = reader.get_bool();
  report.redistribution_sum = reader.get_f64();
  report.nash_equilibrium = reader.get_bool();
  report.max_unilateral_gain = reader.get_f64();
  report.computationally_efficient = reader.get_bool();
  report.iterations = static_cast<int>(reader.get_i64());
  return report;
}

}  // namespace tradefl::core
