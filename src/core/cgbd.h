// CGBD — Algorithm 1: the centralized GBD-based algorithm that finds the
// global solution of the potential-function problem (18); its solution is a
// (δ+ε)-optimal NE of the coopetition game (Lemma 3). Thin facade over
// GbdSolver with the paper's defaults.
#pragma once

#include "core/gbd.h"
#include "core/solution.h"
#include "game/game.h"

namespace tradefl::core {

using CgbdOptions = GbdOptions;

/// Runs Algorithm 1 on the game; see GbdSolver for the mechanics.
Solution run_cgbd(const game::CoopetitionGame& game, const CgbdOptions& options = {});

/// Exhaustive reference solver for small instances (tests/ablations): brute
/// force over all frequency tuples, solving the concave primal per tuple.
/// Exponential in |N| — use only for |N| <= ~6.
Solution solve_by_enumeration(const game::CoopetitionGame& game,
                              const GbdOptions& options = {});

}  // namespace tradefl::core
