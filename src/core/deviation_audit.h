// Strategic-deviation audit (the robustness counterpart to Sec. V's property
// proofs). The mechanism layer verifies IR / BB / CE analytically on the
// solved game; this module re-checks them *empirically* after a training run
// in which some silos deviated from truthful play — submitting sign-flipped,
// amplified, free-riding, or colluding updates instead of honest gradients.
//
// The bridge between the two worlds is model accuracy: the game prices the
// model at the analytic performance P(Ω) (Eq. 1), while the attacked run
// produced `measured_accuracy`. Every accuracy-linked payoff term (revenue
// p_i·P and competition damage D_i) is re-scaled by the measured/analytic
// ratio; free-riders additionally keep their energy cost (they billed for
// training they never did, so their *truthful* ledger charges ϖ_e·E_i while
// their empirical ledger refunds it). Redistribution is left untouched — the
// contract settles on declared contributions, which the attacks do not forge.
//
// The audit answers, per attack kind and aggregator:
//   * did honest silos stay individually rational (IR) despite the attack,
//   * did the redistribution ledger stay budget-balanced (BB),
//   * did the solve remain computationally efficient (CE), and
//   * what payoff did each deviating silo gain (or lose) vs truthful play,
//     alongside the aggregator's containment signals (influence share,
//     rejection rate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/faults.h"
#include "common/snapshot.h"
#include "core/mechanism.h"
#include "game/game.h"

namespace tradefl::core {

/// Layer-neutral view of a finished training run. core/ and fl/ are sibling
/// layers (core must not include fl), so the audit consumes this projection;
/// the session layer maps fl::FedAvgResult into it.
struct TrainingObservation {
  double measured_accuracy = 0.0;
  std::uint64_t attacked_updates = 0;  // adversarially transformed updates
  std::uint64_t rejected_updates = 0;  // zero-influence updates (robust agg)
  std::uint64_t clipped_updates = 0;   // norm-clipped deltas
  /// Rounds that actually aggregated (quorum met) / rounds the loop executed.
  std::size_t aggregated_rounds = 0;
  std::uint64_t executed_rounds = 0;
  /// Mean per-aggregated-round influence share retained by attacking silos.
  double attacker_influence = 0.0;
  std::vector<double> client_influence;        // mean Eq. (3) share per silo
  std::vector<std::uint64_t> client_rejected;  // rejected update count per silo
};

/// One deviating silo's ledger: analytic payoff under truthful play vs the
/// empirical payoff it realized by attacking, plus the aggregator's
/// containment signals for that silo.
struct SiloDeviation {
  std::size_t silo = 0;
  std::string attack;            // fault_kind_name of the injected deviation
  double truthful_payoff = 0.0;  // C_i at the solved profile, analytic P(Ω)
  double empirical_payoff = 0.0; // C_i re-priced at the measured accuracy
  double payoff_gain = 0.0;      // empirical - truthful (>0: attack paid off)
  double influence = 0.0;        // mean Eq. (3) share the aggregator granted
  double rejected_share = 0.0;   // fraction of aggregated rounds rejected
};

/// Session-level audit report: empirical IR / BB / CE verdicts plus the
/// per-deviator payoff accounting.
struct DeviationAudit {
  bool attacked = false;          // any adversarial update actually fired
  double analytic_accuracy = 0.0; // P(Ω) the mechanism priced the model at
  double measured_accuracy = 0.0; // what the attacked run actually reached
  double accuracy_ratio = 1.0;    // measured / analytic (1 when analytic = 0)
  std::uint64_t attacked_updates = 0;
  std::uint64_t rejected_updates = 0;
  std::uint64_t clipped_updates = 0;
  /// Mean per-round influence share retained by attacking silos, over the
  /// rounds that aggregated (0 = fully contained).
  double attacker_influence = 0.0;

  /// Empirical IR: every *honest* silo's re-priced payoff stays above the
  /// rationality floor. `min_honest_payoff` is the binding value.
  bool ir_empirical = false;
  double min_honest_payoff = 0.0;
  /// Empirical BB: the redistribution ledger still sums to ~0 (attacks forge
  /// gradients, not declared contributions, so this must survive any attack).
  bool bb_empirical = false;
  double redistribution_sum = 0.0;
  /// Empirical CE: the solve under the same fault plan converged.
  bool ce_empirical = false;

  std::vector<SiloDeviation> silos;  // deviating silos only, ascending index

  /// One-line human summary for reports and logs.
  [[nodiscard]] std::string summary() const;
};

/// Snapshot codecs (session checkpoint embeds the audit; pairing covered by
/// the tfl-analyze schema-drift rule).
void put_silo_deviation(SnapshotWriter& writer, const SiloDeviation& silo);
[[nodiscard]] SiloDeviation get_silo_deviation(SnapshotReader& reader);
void put_deviation_audit(SnapshotWriter& writer, const DeviationAudit& audit);
[[nodiscard]] DeviationAudit get_deviation_audit(SnapshotReader& reader);

/// Runs the audit over a finished training run. `properties` is the analytic
/// property report from the same session (its CE verdict is inherited);
/// `faults` decides which silos deviated — membership is a pure function of
/// the plan, replayed over the rounds the run actually executed.
[[nodiscard]] DeviationAudit audit_deviation(const game::CoopetitionGame& game,
                                             const MechanismResult& mechanism,
                                             const PropertyReport& properties,
                                             const TrainingObservation& training,
                                             const FaultInjector& faults);

}  // namespace tradefl::core
