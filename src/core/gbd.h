// Generalized Benders Decomposition engine (Sec. V-A/B). Solves
//   max_{d, f}  U(d, f)   s.t.  d_i ∈ [D_min, 1],  f_i ∈ grid,  C^(3)
// by alternating:
//   * primal (19): fix f, maximize the concave U over d with the deadline
//     constraints — solved by the log-barrier interior-point method with
//     Lagrange multiplier recovery (math/barrier_solver);
//   * feasibility check (21) when the primal is infeasible — for our
//     monotone deadline constraints it has the closed form
//     ζ* = max_i [g_i(D_min, f_i)]+ with λ an indicator of the argmax row;
//   * master (23): traversal over the discrete f grid (the paper
//     "exhaustively enumerates the feasible values of f"), maximizing the
//     upper envelope of the accumulated optimality cuts subject to the
//     feasibility cuts.
// Optimality cuts use the Lagrangian of Eq. (20):
//   cut_k(f) = U(d^(k), f) - Σ_i u_i^(k) g_i(d^(k), f),
// which is separable per organization at fixed d^(k), so each cut is
// pre-tabulated per (organization, frequency level).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/faults.h"
#include "core/solution.h"
#include "game/game.h"
#include "math/barrier_solver.h"

namespace tradefl::core {

struct GbdOptions {
  /// ε — UB-LB convergence tolerance (Lemmas 2-3).
  double epsilon = 1e-6;

  /// K — iteration cap of Algorithm 1.
  int max_iterations = 64;

  /// Barrier (interior-point) options for the primal; the final duality gap
  /// is the δ of Lemma 3.
  math::BarrierOptions barrier{};

  /// Fault injection (nullptr = fault-free; must outlive the solve). A
  /// perturbed iteration poisons the primal objective so the barrier's
  /// finiteness contract trips, exercising the recovery path below.
  const FaultInjector* faults = nullptr;

  /// Barrier-t growth used for the damped restart after a diverged primal;
  /// smaller growth takes more, gentler centering stages.
  double recovery_t_growth = 4.0;

  /// Crash-consistent checkpointing (empty = none): every `checkpoint_every`
  /// iterations the accumulated Benders state — optimality/feasibility cuts,
  /// visited tuples, bounds, incumbent, trace — is snapshotted atomically.
  /// `resume` reloads it so a killed solve continues without re-deriving a
  /// single cut, bit-identically to an uninterrupted run.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
  bool resume = false;

  /// Cooperative cancellation (nullptr = never cancelled; must outlive the
  /// solve). Checked once per Benders iteration; when the token fires the
  /// solve throws OperationCancelled. The serve daemon's watchdog sets it to
  /// evict a session whose solve exceeds its deadline without touching the
  /// process hosting every other session.
  const std::atomic<bool>* cancel = nullptr;
};

/// Thrown when the primal barrier diverges AND the damped restart also fails
/// — the structured signal run_cgbd() uses to fall back to DBR. Genuine
/// infeasibility ("no frequency assignment satisfies the deadline") stays a
/// plain std::runtime_error and propagates: no solver can fix a bad instance.
class SolverFailure : public std::runtime_error {
 public:
  explicit SolverFailure(const std::string& what) : std::runtime_error(what) {}
};

/// Result of one primal solve (used by tests and the scaling ablation).
struct PrimalSolve {
  bool feasible = false;
  std::vector<double> d;
  std::vector<double> multipliers;  // u^(k), one per organization
  double value = 0.0;               // U(d^(k), f^(k-1)) when feasible
  double zeta = 0.0;                // ζ* of (21) when infeasible
  std::size_t violating_org = 0;    // argmax row of (21) when infeasible
};

class GbdSolver {
 public:
  GbdSolver(const game::CoopetitionGame& game, GbdOptions options = {});

  /// Runs Algorithm 1. The trace records the incumbent per iteration; the
  /// diagnostics include "upper_bound", "lower_bound", "gap", and
  /// "master_tuples" (the m^|N| traversal size, Lemma 4).
  [[nodiscard]] Solution solve();

  /// Solves the primal problem (19) at fixed frequency levels. Public for
  /// tests.
  [[nodiscard]] PrimalSolve solve_primal(const std::vector<std::size_t>& freq_indices) const;

  /// solve_primal with the fault/recovery wrapper applied: an injected
  /// perturbation (keyed on `iteration`) poisons the first barrier attempt;
  /// on divergence the barrier restarts damped (recovery_t_growth) without
  /// the fault, and a second divergence raises SolverFailure. Public for
  /// tests.
  [[nodiscard]] PrimalSolve solve_primal_recovering(
      const std::vector<std::size_t>& freq_indices, int iteration) const;

  /// g_i(d, f) = T^(1) + η_i s_i d / f + T^(3) - τ (the C^(3) slack).
  [[nodiscard]] double deadline_slack(game::OrgId i, double d, double f) const;

 private:
  /// Shared body of the two public primal entry points: `barrier` selects the
  /// interior-point schedule and `poison` injects a non-finite objective.
  [[nodiscard]] PrimalSolve solve_primal_impl(const std::vector<std::size_t>& freq_indices,
                                              const math::BarrierOptions& barrier,
                                              bool poison) const;

  struct OptimalityCut {
    double base = 0.0;                            // P(Ω(d_v))
    std::vector<std::vector<double>> per_level;   // [org][level] terms
  };
  struct FeasibilityCut {
    std::size_t org = 0;              // λ is the indicator of this row
    std::vector<double> slack_by_level;  // g_org(d_v, level)
  };

  [[nodiscard]] OptimalityCut make_optimality_cut(const PrimalSolve& primal) const;
  [[nodiscard]] FeasibilityCut make_feasibility_cut(const PrimalSolve& primal,
                                                    const std::vector<std::size_t>& freq) const;

  /// Solves the master problem by traversal; returns the argmax tuple and
  /// its bound via out-params; false when no tuple passes the feasibility
  /// cuts.
  [[nodiscard]] bool solve_master(const std::vector<OptimalityCut>& optimality_cuts,
                                  const std::vector<FeasibilityCut>& feasibility_cuts,
                                  std::vector<std::size_t>& best_tuple,
                                  double& best_bound,
                                  std::uint64_t& tuples_visited) const;

  const game::CoopetitionGame& game_;
  GbdOptions options_;
};

}  // namespace tradefl::core
