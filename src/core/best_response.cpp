#include "core/best_response.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/scalar_opt.h"

namespace tradefl::core {

using game::CoopetitionGame;
using game::OrgId;
using game::Strategy;
using game::StrategyProfile;

double objective_payoff(const CoopetitionGame& game, OrgId i, const StrategyProfile& profile,
                        const BestResponseOptions& options) {
  const game::PayoffBreakdown breakdown = game.payoff_breakdown(i, profile);
  double value = breakdown.revenue - breakdown.energy_cost - breakdown.damage;
  if (options.include_redistribution) value += breakdown.redistribution;
  return value;
}

namespace {

/// d/dd_i of the objective at fixed frequencies. Derived from Eq. (11):
///   z_i P'(Ω) w_i - ϖ_e κ f² η_i s_i + [γ s_i Σ_j ρ_{i,j} if R included].
double objective_derivative(const CoopetitionGame& game, OrgId i,
                            const StrategyProfile& profile,
                            const BestResponseOptions& options) {
  const auto& params = game.params();
  const auto& org = game.org(i);
  const double w_i = game.contribution_weight(i);
  const double f = game.frequency(i, profile[i]);
  const double omega = game.omega(profile);

  double derivative = game.weight_z(i) * game.accuracy().performance_derivative(omega) * w_i;
  derivative -= params.omega_e * params.kappa * f * f * org.cycles_per_bit * org.data_size_bits;
  if (options.include_redistribution) {
    derivative += params.gamma * org.data_size_bits * game.rho().row_sum(i);
  }
  return derivative;
}

/// Best d for a fixed frequency level; assumes the level is feasible.
std::pair<double, double> best_data_fraction(const CoopetitionGame& game, OrgId i,
                                             StrategyProfile& scratch,
                                             std::size_t level,
                                             const BestResponseOptions& options) {
  const double d_min = game.params().d_min;
  const double upper = game.data_upper_bound(i, level);
  scratch[i].freq_index = level;

  if (options.d_grid_step > 0.0) {
    // FIP-style discrete search over {e, 2e, ...} ∩ [D_min, upper].
    double best_d = d_min;
    double best_value = -1e300;
    bool found_grid_point = false;
    for (double d = options.d_grid_step; d <= 1.0 + 1e-12; d += options.d_grid_step) {
      const double clamped = std::min(d, 1.0);
      if (clamped < d_min || clamped > upper) continue;
      scratch[i].data_fraction = clamped;
      const double value = objective_payoff(game, i, scratch, options);
      if (value > best_value || !found_grid_point) {
        best_value = value;
        best_d = clamped;
      }
      found_grid_point = true;
    }
    if (!found_grid_point) {
      // No grid point inside the feasible interval; fall back to D_min.
      scratch[i].data_fraction = d_min;
      best_value = objective_payoff(game, i, scratch, options);
      best_d = d_min;
    }
    return {best_d, best_value};
  }

  auto value_at = [&](double d) {
    scratch[i].data_fraction = d;
    return objective_payoff(game, i, scratch, options);
  };
  auto derivative_at = [&](double d) {
    scratch[i].data_fraction = d;
    return objective_derivative(game, i, scratch, options);
  };
  const auto best = tradefl::math::concave_maximize_with_derivative(
      value_at, derivative_at, d_min, upper, options.d_tolerance);
  return {best.x, best.value};
}

}  // namespace

BestResponse best_response(const CoopetitionGame& game, OrgId i,
                           const StrategyProfile& profile,
                           const BestResponseOptions& options) {
  StrategyProfile scratch = profile;
  BestResponse best;
  best.payoff = -1e300;

  std::vector<std::size_t> levels;
  if (options.forced_freq_level >= 0) {
    const auto level = static_cast<std::size_t>(options.forced_freq_level);
    if (game.data_upper_bound(i, level) >= game.params().d_min) levels.push_back(level);
  } else {
    levels = game.feasible_freq_levels(i);
  }
  if (levels.empty()) {
    throw std::runtime_error("best_response: no feasible frequency level for " +
                             game.org(i).name);
  }
  for (std::size_t level : levels) {
    const auto [d, value] = best_data_fraction(game, i, scratch, level, options);
    if (value > best.payoff) {
      best.payoff = value;
      best.strategy = Strategy{d, level};
    }
  }
  return best;
}

}  // namespace tradefl::core
