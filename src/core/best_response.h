// Best response of a single organization (Definition 9, Eq. 24): maximize
// C_i(π_i, π_-i) over d_i ∈ [D_min, 1] and the discrete frequency levels,
// subject to the deadline C^(3). Payoff is concave in d_i at fixed f for any
// Eq.(5)-conforming accuracy model, so the inner 1-D problem is solved by
// derivative bisection with an endpoint/grid safeguard.
#pragma once

#include "game/game.h"

namespace tradefl::core {

struct BestResponseOptions {
  /// Include the redistribution term R_i in the objective. The WPR baseline
  /// turns this off (organizations profit from the model alone).
  bool include_redistribution = true;

  /// Tolerance of the inner 1-D maximization over d.
  double d_tolerance = 1e-10;

  /// Optional restriction of d to the discrete grid {e, 2e, ..., 1} used by
  /// the FIP baseline; 0 disables (continuous d).
  double d_grid_step = 0.0;

  /// When non-negative, forces the frequency level to this index (the GCA
  /// baseline pins f as a function of d); -1 searches all feasible levels.
  int forced_freq_level = -1;
};

struct BestResponse {
  game::Strategy strategy;
  double payoff = 0.0;
};

/// Objective used by the best response: C_i, optionally without R_i.
double objective_payoff(const game::CoopetitionGame& game, game::OrgId i,
                        const game::StrategyProfile& profile,
                        const BestResponseOptions& options);

/// Computes org i's best response against profile[-i]. Throws
/// std::runtime_error when no feasible (d, f) exists for org i.
BestResponse best_response(const game::CoopetitionGame& game, game::OrgId i,
                           const game::StrategyProfile& profile,
                           const BestResponseOptions& options = {});

}  // namespace tradefl::core
