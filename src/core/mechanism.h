// TradeFL mechanism facade (Sec. III-E, Theorem 2). Runs a scheme on a
// coopetition game, extracts the equilibrium contribution profile
// {d*, f*} and the pairwise redistribution plan r*_{i,j} that the smart
// contract will settle, and verifies the mechanism properties:
// individual rationality, budget balance, and computational efficiency.
#pragma once

#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/cgbd.h"
#include "core/dbr.h"
#include "core/solution.h"
#include "game/game.h"

namespace tradefl::core {

enum class Scheme { kCgbd, kDbr, kWpr, kGca, kFip, kTos };

/// Human-readable scheme name ("CGBD", "DBR", ...).
const char* scheme_name(Scheme scheme);

/// All schemes in the order the paper's figures list them.
std::vector<Scheme> all_schemes();

struct SchemeOptions {
  CgbdOptions cgbd{};
  DbrOptions dbr{};
  GcaOptions gca{};
  FipOptions fip{};
};

/// Equilibrium outcome plus the economic summary the figures report.
struct MechanismResult {
  Scheme scheme = Scheme::kDbr;
  Solution solution;

  double welfare = 0.0;            // Σ_i C_i at the final profile
  double potential = 0.0;          // exact weighted potential
  double paper_potential = 0.0;    // Eq. (15) literal
  double total_damage = 0.0;       // Σ_i D_i (Fig. 9)
  double total_data_fraction = 0.0;  // Σ_i d_i (Fig. 12)
  double performance = 0.0;        // P(Ω) of the global model
  std::vector<double> payoffs;     // C_i per organization

  /// r*_{i,j} — the redistribution settlement matrix handed to the smart
  /// contract (row i = what i receives from j; antisymmetric for symmetric ρ).
  std::vector<std::vector<double>> redistribution;
};

/// Runs one scheme end to end.
MechanismResult run_scheme(const game::CoopetitionGame& game, Scheme scheme,
                           const SchemeOptions& options = {});

/// Theorem 2's properties, checked numerically at a mechanism result.
struct PropertyReport {
  bool individual_rationality = false;  // min_i C_i >= -tol
  double min_payoff = 0.0;
  bool budget_balance = false;          // |Σ_i R_i| <= tol * scale
  double redistribution_sum = 0.0;
  bool nash_equilibrium = false;        // max unilateral gain <= tol
  double max_unilateral_gain = 0.0;
  bool computationally_efficient = false;  // converged within iteration caps
  int iterations = 0;

  [[nodiscard]] std::string summary() const;
};

struct PropertyTolerances {
  double payoff_tol = 1e-6;
  double budget_tol = 1e-9;   // relative to Σ_i |R_i|
  double nash_tol = 1e-4;     // absolute payoff-gain tolerance
};

/// Verifies IR/BB/NE/CE for the result. The NE check is skipped (reported
/// false) for TOS, which is not an equilibrium by construction — pass
/// `check_nash = false` to skip the (grid-search) NE probe entirely.
PropertyReport verify_properties(const game::CoopetitionGame& game,
                                 const MechanismResult& result,
                                 bool check_nash = true,
                                 const PropertyTolerances& tolerances = {});

}  // namespace tradefl::core
