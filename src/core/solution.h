// Shared result/trace types for the equilibrium-seeking algorithms (CGBD,
// DBR, and the Sec. VI baselines). Traces back the figures: Fig. 4 plots the
// potential per iteration, Fig. 5 the per-organization payoffs per iteration.
#pragma once

#include <string>
#include <vector>

#include "game/strategy.h"

namespace tradefl::core {

/// Snapshot taken after each algorithm iteration.
struct IterationRecord {
  int iteration = 0;
  double potential = 0.0;        // exact weighted potential U(π)
  double paper_potential = 0.0;  // Eq. (15) literal form
  double welfare = 0.0;          // Σ_i C_i
  std::vector<double> payoffs;   // C_i per organization
  game::StrategyProfile profile;
};

/// Final solution of a scheme run.
struct Solution {
  game::StrategyProfile profile;
  std::vector<IterationRecord> trace;
  bool converged = false;
  int iterations = 0;
  double solve_seconds = 0.0;

  /// Extra per-algorithm diagnostics (e.g. CGBD bound gap), keyed by name.
  std::vector<std::pair<std::string, double>> diagnostics;

  [[nodiscard]] double diagnostic(const std::string& key, double fallback = 0.0) const {
    for (const auto& [name, value] : diagnostics) {
      if (name == key) return value;
    }
    return fallback;
  }
};

}  // namespace tradefl::core
