#include "core/deviation_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tradefl::core {

namespace {

/// Repriced Eq. (11) ledger for one silo: accuracy-linked terms (revenue,
/// damage) scale with the measured/analytic accuracy ratio; a free-rider's
/// energy cost is refunded (it never trained); redistribution is settled on
/// declared contributions and survives untouched.
double empirical_total(const game::PayoffBreakdown& breakdown, double ratio,
                       bool free_rider) {
  const double energy = free_rider ? 0.0 : breakdown.energy_cost;
  return breakdown.revenue * ratio - energy - breakdown.damage * ratio +
         breakdown.redistribution;
}

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

std::string DeviationAudit::summary() const {
  if (!attacked) {
    return "deviation audit: no adversarial updates fired";
  }
  std::string text = "deviation audit: " + std::to_string(silos.size()) +
                     " deviating silo(s), accuracy " +
                     format_value(measured_accuracy) + " vs analytic " +
                     format_value(analytic_accuracy) + " (ratio " +
                     format_value(accuracy_ratio) + "), attacker influence " +
                     format_value(attacker_influence) + ", rejected " +
                     std::to_string(rejected_updates) + ", clipped " +
                     std::to_string(clipped_updates) + "; IR(honest)=" +
                     (ir_empirical ? "pass" : "FAIL") +
                     " BB=" + (bb_empirical ? "pass" : "FAIL") +
                     " CE=" + (ce_empirical ? "pass" : "FAIL");
  for (const SiloDeviation& silo : silos) {
    text += "; silo " + std::to_string(silo.silo) + " [" + silo.attack +
            "] gain " + format_value(silo.payoff_gain);
  }
  return text;
}

void put_silo_deviation(SnapshotWriter& writer, const SiloDeviation& silo) {
  writer.put_u64(silo.silo);
  writer.put_string(silo.attack);
  writer.put_f64(silo.truthful_payoff);
  writer.put_f64(silo.empirical_payoff);
  writer.put_f64(silo.payoff_gain);
  writer.put_f64(silo.influence);
  writer.put_f64(silo.rejected_share);
}

SiloDeviation get_silo_deviation(SnapshotReader& reader) {
  SiloDeviation silo;
  silo.silo = reader.get_u64();
  silo.attack = reader.get_string();
  silo.truthful_payoff = reader.get_f64();
  silo.empirical_payoff = reader.get_f64();
  silo.payoff_gain = reader.get_f64();
  silo.influence = reader.get_f64();
  silo.rejected_share = reader.get_f64();
  return silo;
}

void put_deviation_audit(SnapshotWriter& writer, const DeviationAudit& audit) {
  writer.put_bool(audit.attacked);
  writer.put_f64(audit.analytic_accuracy);
  writer.put_f64(audit.measured_accuracy);
  writer.put_f64(audit.accuracy_ratio);
  writer.put_u64(audit.attacked_updates);
  writer.put_u64(audit.rejected_updates);
  writer.put_u64(audit.clipped_updates);
  writer.put_f64(audit.attacker_influence);
  writer.put_bool(audit.ir_empirical);
  writer.put_f64(audit.min_honest_payoff);
  writer.put_bool(audit.bb_empirical);
  writer.put_f64(audit.redistribution_sum);
  writer.put_bool(audit.ce_empirical);
  writer.put_u64(audit.silos.size());
  for (const SiloDeviation& silo : audit.silos) {
    put_silo_deviation(writer, silo);
  }
}

DeviationAudit get_deviation_audit(SnapshotReader& reader) {
  DeviationAudit audit;
  audit.attacked = reader.get_bool();
  audit.analytic_accuracy = reader.get_f64();
  audit.measured_accuracy = reader.get_f64();
  audit.accuracy_ratio = reader.get_f64();
  audit.attacked_updates = reader.get_u64();
  audit.rejected_updates = reader.get_u64();
  audit.clipped_updates = reader.get_u64();
  audit.attacker_influence = reader.get_f64();
  audit.ir_empirical = reader.get_bool();
  audit.min_honest_payoff = reader.get_f64();
  audit.bb_empirical = reader.get_bool();
  audit.redistribution_sum = reader.get_f64();
  audit.ce_empirical = reader.get_bool();
  const std::uint64_t count = reader.get_u64();
  audit.silos.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    audit.silos.push_back(get_silo_deviation(reader));
  }
  return audit;
}

DeviationAudit audit_deviation(const game::CoopetitionGame& game,
                               const MechanismResult& mechanism,
                               const PropertyReport& properties,
                               const TrainingObservation& training,
                               const FaultInjector& faults) {
  const std::size_t n = game.size();
  if (mechanism.solution.profile.size() != n) {
    throw std::invalid_argument("audit_deviation: profile/game size mismatch");
  }

  DeviationAudit audit;
  audit.analytic_accuracy = mechanism.performance;
  audit.measured_accuracy = training.measured_accuracy;
  audit.accuracy_ratio = audit.analytic_accuracy > 0.0
                             ? audit.measured_accuracy / audit.analytic_accuracy
                             : 1.0;
  audit.attacked_updates = training.attacked_updates;
  audit.rejected_updates = training.rejected_updates;
  audit.clipped_updates = training.clipped_updates;
  audit.attacked = training.attacked_updates > 0;
  audit.ce_empirical = properties.computationally_efficient;
  audit.attacker_influence = training.attacker_influence;
  const std::size_t aggregated_rounds = training.aggregated_rounds;

  // Classify each silo by replaying the plan's attack schedule over the
  // rounds the run executed — membership is deterministic, so this recovers
  // exactly the deviations the training loop injected.
  std::vector<FaultKind> attack_kind(n, FaultKind::kSignFlip);  // only read when deviated
  std::vector<bool> deviated(n, false);
  const std::uint64_t rounds = std::max<std::uint64_t>(training.executed_rounds, 1);
  for (std::size_t silo = 0; silo < n; ++silo) {
    for (std::uint64_t round = 0; round < rounds; ++round) {
      const AttackSpec spec = faults.attack_update(round, silo);
      if (spec.attack) {
        attack_kind[silo] = spec.kind;
        deviated[silo] = true;
        break;
      }
    }
  }

  const game::StrategyProfile& profile = mechanism.solution.profile;
  double redistribution_abs = 0.0;
  bool honest_seen = false;
  for (std::size_t silo = 0; silo < n; ++silo) {
    const game::PayoffBreakdown breakdown = game.payoff_breakdown(silo, profile);
    audit.redistribution_sum += breakdown.redistribution;
    redistribution_abs += std::abs(breakdown.redistribution);
    const bool free_rider = attack_kind[silo] == FaultKind::kFreeRide;
    const double empirical =
        empirical_total(breakdown, audit.accuracy_ratio, free_rider);
    if (deviated[silo]) {
      SiloDeviation entry;
      entry.silo = silo;
      entry.attack = fault_kind_name(attack_kind[silo]);
      entry.truthful_payoff = breakdown.total();
      entry.empirical_payoff = empirical;
      entry.payoff_gain = empirical - entry.truthful_payoff;
      if (silo < training.client_influence.size()) {
        entry.influence = training.client_influence[silo];
      }
      if (silo < training.client_rejected.size() && aggregated_rounds > 0) {
        entry.rejected_share = static_cast<double>(training.client_rejected[silo]) /
                               static_cast<double>(aggregated_rounds);
      }
      audit.silos.push_back(entry);
    } else {
      if (!honest_seen || empirical < audit.min_honest_payoff) {
        audit.min_honest_payoff = empirical;
      }
      honest_seen = true;
    }
  }

  // IR must hold for the silos that played truthfully: the attack may not
  // push an honest participant below its outside option. Vacuously true when
  // everyone deviated. The floor scales like verify_properties' payoff_tol.
  audit.ir_empirical = !honest_seen || audit.min_honest_payoff >= -1e-6;
  // BB is checked on the settled ledger — same relative tolerance as the
  // analytic check (budget_tol vs Σ|R_i|).
  audit.bb_empirical =
      std::abs(audit.redistribution_sum) <= 1e-9 * std::max(1.0, redistribution_abs);

  return audit;
}

}  // namespace tradefl::core
