#include "core/dbr.h"

#include <cmath>
#include <stdexcept>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "game/potential.h"

namespace tradefl::core {

using game::CoopetitionGame;
using game::StrategyProfile;

namespace {

IterationRecord snapshot(const CoopetitionGame& game, const StrategyProfile& profile,
                         int iteration) {
  IterationRecord record;
  record.iteration = iteration;
  record.potential = game::potential(game, profile);
  record.paper_potential = game::paper_potential(game, profile);
  record.welfare = game.social_welfare(profile);
  record.payoffs.reserve(game.size());
  for (game::OrgId i = 0; i < game.size(); ++i) record.payoffs.push_back(game.payoff(i, profile));
  record.profile = profile;
  return record;
}

}  // namespace

Solution run_dbr(const CoopetitionGame& game, const DbrOptions& options,
                 StrategyProfile start) {
  Stopwatch watch;
  Solution solution;
  StrategyProfile profile = start.empty() ? game.minimal_profile() : std::move(start);
  if (profile.size() != game.size()) {
    throw std::invalid_argument("dbr: start profile size mismatch");
  }
  solution.trace.push_back(snapshot(game, profile, 0));

  for (int round = 1; round <= options.max_rounds; ++round) {
    bool any_change = false;

    if (options.sequential_updates) {
      for (game::OrgId i = 0; i < game.size(); ++i) {
        const double current = objective_payoff(game, i, profile, options.best_response);
        const BestResponse response = best_response(game, i, profile, options.best_response);
        const bool strategy_moved =
            response.strategy.freq_index != profile[i].freq_index ||
            std::abs(response.strategy.data_fraction - profile[i].data_fraction) >
                options.strategy_tol;
        if (response.payoff > current + options.improvement_tol && strategy_moved) {
          profile[i] = response.strategy;
          any_change = true;
        }
      }
    } else {
      StrategyProfile next = profile;
      for (game::OrgId i = 0; i < game.size(); ++i) {
        const double current = objective_payoff(game, i, profile, options.best_response);
        const BestResponse response = best_response(game, i, profile, options.best_response);
        const bool strategy_moved =
            response.strategy.freq_index != profile[i].freq_index ||
            std::abs(response.strategy.data_fraction - profile[i].data_fraction) >
                options.strategy_tol;
        if (response.payoff > current + options.improvement_tol && strategy_moved) {
          next[i] = response.strategy;
          any_change = true;
        }
      }
      profile = std::move(next);
    }

    solution.trace.push_back(snapshot(game, profile, round));
    solution.iterations = round;
    if (!any_change) {
      solution.converged = true;
      break;
    }
  }

  if (!solution.converged) {
    TFL_WARN << "dbr: no convergence within " << options.max_rounds << " rounds";
  }
  solution.profile = profile;
  solution.solve_seconds = watch.elapsed_seconds();
  return solution;
}

}  // namespace tradefl::core
