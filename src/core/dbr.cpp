#include "core/dbr.h"

#include <cmath>
#include <stdexcept>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/iteration_trace.h"
#include "obs/obs.h"

namespace tradefl::core {

using game::CoopetitionGame;
using game::StrategyProfile;

Solution run_dbr(const CoopetitionGame& game, const DbrOptions& options,
                 StrategyProfile start) {
  TFL_SPAN("dbr.solve");
  Stopwatch watch;
  Solution solution;
  StrategyProfile profile = start.empty() ? game.minimal_profile() : std::move(start);
  if (profile.size() != game.size()) {
    throw std::invalid_argument("dbr: start profile size mismatch");
  }
  append_iteration(game, profile, 0, solution.trace);

  for (int round = 1; round <= options.max_rounds; ++round) {
    TFL_SPAN("dbr.round");
    bool any_change = false;

    if (options.sequential_updates) {
      for (game::OrgId i = 0; i < game.size(); ++i) {
        const double current = objective_payoff(game, i, profile, options.best_response);
        const BestResponse response = best_response(game, i, profile, options.best_response);
        const bool strategy_moved =
            response.strategy.freq_index != profile[i].freq_index ||
            std::abs(response.strategy.data_fraction - profile[i].data_fraction) >
                options.strategy_tol;
        if (response.payoff > current + options.improvement_tol && strategy_moved) {
          profile[i] = response.strategy;
          any_change = true;
          TFL_COUNTER_INC("dbr.best_response.moves");
        }
      }
    } else {
      StrategyProfile next = profile;
      for (game::OrgId i = 0; i < game.size(); ++i) {
        const double current = objective_payoff(game, i, profile, options.best_response);
        const BestResponse response = best_response(game, i, profile, options.best_response);
        const bool strategy_moved =
            response.strategy.freq_index != profile[i].freq_index ||
            std::abs(response.strategy.data_fraction - profile[i].data_fraction) >
                options.strategy_tol;
        if (response.payoff > current + options.improvement_tol && strategy_moved) {
          next[i] = response.strategy;
          any_change = true;
          TFL_COUNTER_INC("dbr.best_response.moves");
        }
      }
      profile = std::move(next);
    }

    append_iteration(game, profile, round, solution.trace);
    solution.iterations = round;
    TFL_COUNTER_INC("dbr.rounds.count");
    TFL_LOG_EVERY_N(::tradefl::LogLevel::kDebug, 25)
        << "dbr round " << round << ": potential " << solution.trace.back().potential;
    if (!any_change) {
      solution.converged = true;
      break;
    }
  }

  if (!solution.converged) {
    TFL_WARN << "dbr: no convergence within " << options.max_rounds << " rounds";
  }
  solution.profile = profile;
  solution.solve_seconds = watch.elapsed_seconds();
  return solution;
}

}  // namespace tradefl::core
