// Snapshot codecs for the solver result types, shared by the CGBD checkpoint
// (core/gbd.cpp) and the trading-session checkpoint (tradefl/session.cpp).
// Encoding is the snapshot subsystem's canonical little-endian form; doubles
// round-trip bit-exactly, which is what makes resumed runs byte-comparable.
#pragma once

#include "common/snapshot.h"
#include "core/mechanism.h"
#include "core/solution.h"

namespace tradefl::core {

void put_profile(SnapshotWriter& writer, const game::StrategyProfile& profile);
[[nodiscard]] game::StrategyProfile get_profile(SnapshotReader& reader);

void put_iteration_record(SnapshotWriter& writer, const IterationRecord& record);
[[nodiscard]] IterationRecord get_iteration_record(SnapshotReader& reader);

void put_solution(SnapshotWriter& writer, const Solution& solution);
[[nodiscard]] Solution get_solution(SnapshotReader& reader);

void put_mechanism_result(SnapshotWriter& writer, const MechanismResult& result);
[[nodiscard]] MechanismResult get_mechanism_result(SnapshotReader& reader);

void put_property_report(SnapshotWriter& writer, const PropertyReport& report);
[[nodiscard]] PropertyReport get_property_report(SnapshotReader& reader);

}  // namespace tradefl::core
