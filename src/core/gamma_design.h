// The mechanism designer's problem behind Figs. 7/10: pick the incentive
// intensity γ* that maximizes social welfare at the induced equilibrium.
// Welfare-vs-γ is non-monotone (the paper's headline observation), so we
// search a log-spaced grid and refine around the best cell with
// golden-section in log-γ space.
#pragma once

#include <functional>

#include "core/mechanism.h"
#include "game/game_factory.h"

namespace tradefl::core {

struct GammaDesignOptions {
  double gamma_lo = 1e-10;
  double gamma_hi = 1e-7;
  std::size_t coarse_points = 9;   // log-grid scan
  int refine_iterations = 16;      // golden-section steps around the best cell
  Scheme scheme = Scheme::kDbr;
  /// Number of seeded game replications averaged per γ evaluation.
  std::size_t seeds = 1;
  std::uint64_t seed0 = 42;
};

struct GammaDesignResult {
  double gamma_star = 0.0;
  double welfare_at_star = 0.0;
  /// The scanned (γ, welfare) pairs, coarse grid then refinement probes.
  std::vector<std::pair<double, double>> evaluations;
};

/// Evaluates mean equilibrium welfare at γ over the seeded replications of
/// `spec` (spec.params.gamma is overridden).
double equilibrium_welfare(const game::ExperimentSpec& spec, double gamma,
                           const GammaDesignOptions& options);

/// Finds γ* for the experiment family described by `spec`.
GammaDesignResult optimize_gamma(const game::ExperimentSpec& spec,
                                 const GammaDesignOptions& options = {});

}  // namespace tradefl::core
