#include "core/cgbd.h"

#include <limits>
#include <stdexcept>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/dbr.h"
#include "game/potential.h"
#include "math/grid.h"
#include "obs/obs.h"

namespace tradefl::core {

Solution run_cgbd(const game::CoopetitionGame& game, const CgbdOptions& options) {
  GbdSolver solver(game, options);
  try {
    return solver.solve();
  } catch (const SolverFailure& failure) {
    // Stage-2 recovery: the barrier diverged twice, so abandon the interior-
    // point machinery entirely and fall back to best-response dynamics (DBR,
    // Algorithm 2), which converges by the finite-improvement property and
    // needs no second-order solves. The answer is an NE rather than the
    // (δ+ε)-optimal one — run_dbr's trace/diagnostics plus the marker below
    // let callers report the degradation honestly.
    TFL_COUNTER_INC("solver.fallbacks");
    TFL_WARN << "cgbd: falling back to DBR: " << failure.what();
    Solution fallback = run_dbr(game);
    fallback.diagnostics.emplace_back("fallback_dbr", 1.0);
    return fallback;
  }
}

Solution solve_by_enumeration(const game::CoopetitionGame& game, const GbdOptions& options) {
  TFL_SPAN("cgbd.enumeration");
  Stopwatch watch;
  GbdSolver solver(game, options);
  const std::size_t n = game.size();
  std::vector<std::size_t> radices(n);
  for (game::OrgId i = 0; i < n; ++i) radices[i] = game.org(i).freq_levels.size();

  Solution solution;
  double best_value = -std::numeric_limits<double>::infinity();
  std::uint64_t visited = math::enumerate_cartesian(
      radices, [&](const std::vector<std::size_t>& freq) {
        const PrimalSolve primal = solver.solve_primal(freq);
        if (primal.feasible && primal.value > best_value) {
          best_value = primal.value;
          game::StrategyProfile profile(n);
          for (std::size_t i = 0; i < n; ++i) {
            profile[i].data_fraction = primal.d[i];
            profile[i].freq_index = freq[i];
          }
          solution.profile = std::move(profile);
        }
        return true;
      });
  if (solution.profile.empty()) {
    throw std::runtime_error("enumeration: no feasible frequency assignment");
  }
  solution.converged = true;
  solution.iterations = static_cast<int>(visited);
  TFL_COUNTER_ADD("cgbd.enumeration.tuples", visited);
  solution.solve_seconds = watch.elapsed_seconds();
  solution.diagnostics.emplace_back("best_potential", best_value);
  solution.diagnostics.emplace_back("tuples", static_cast<double>(visited));
  return solution;
}

}  // namespace tradefl::core
