#include "core/gamma_design.h"

#include <cmath>
#include <stdexcept>

#include "math/grid.h"
#include "math/scalar_opt.h"

namespace tradefl::core {

double equilibrium_welfare(const game::ExperimentSpec& spec, double gamma,
                           const GammaDesignOptions& options) {
  double total = 0.0;
  for (std::size_t s = 0; s < options.seeds; ++s) {
    game::ExperimentSpec instance = spec;
    instance.params.gamma = gamma;
    const auto game = game::make_experiment_game(instance, options.seed0 + s);
    total += run_scheme(game, options.scheme).welfare;
  }
  return total / static_cast<double>(options.seeds);
}

GammaDesignResult optimize_gamma(const game::ExperimentSpec& spec,
                                 const GammaDesignOptions& options) {
  if (!(options.gamma_lo > 0.0 && options.gamma_lo < options.gamma_hi)) {
    throw std::invalid_argument("optimize_gamma: need 0 < gamma_lo < gamma_hi");
  }
  if (options.coarse_points < 3) {
    throw std::invalid_argument("optimize_gamma: need >= 3 coarse points");
  }
  if (options.seeds == 0) throw std::invalid_argument("optimize_gamma: seeds >= 1");

  GammaDesignResult result;
  auto evaluate = [&](double gamma) {
    const double welfare = equilibrium_welfare(spec, gamma, options);
    result.evaluations.emplace_back(gamma, welfare);
    return welfare;
  };

  // Coarse log-grid scan.
  const auto grid = math::logspace(options.gamma_lo, options.gamma_hi,
                                   options.coarse_points);
  std::size_t best = 0;
  double best_welfare = -1e300;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double welfare = evaluate(grid[i]);
    if (welfare > best_welfare) {
      best_welfare = welfare;
      best = i;
    }
  }

  // Golden-section refinement in log-gamma over the bracketing cells.
  const double lo = grid[best == 0 ? 0 : best - 1];
  const double hi = grid[std::min(best + 1, grid.size() - 1)];
  const auto refined = math::golden_section_maximize(
      [&](double log_gamma) { return evaluate(std::exp(log_gamma)); },
      std::log(lo), std::log(hi), 1e-3, options.refine_iterations);

  result.gamma_star = std::exp(refined.x);
  result.welfare_at_star = refined.value;
  if (best_welfare > result.welfare_at_star) {
    result.gamma_star = grid[best];
    result.welfare_at_star = best_welfare;
  }
  return result;
}

}  // namespace tradefl::core
