// One iteration-snapshot idiom for every equilibrium scheme. GBD, DBR, and
// the baselines used to carry three private copies of the same snapshot()
// helper; this is the shared replacement, and it is also the single place
// where the per-iteration solver trajectories (potential, welfare, payoff
// gap) flow into the metrics registry for Fig. 4 / Fig. 5 style plots.
#pragma once

#include <vector>

#include "core/solution.h"
#include "game/game.h"

namespace tradefl::core {

/// Builds the IterationRecord for `profile` (potential, paper potential,
/// welfare, per-org payoffs).
IterationRecord make_iteration_record(const game::CoopetitionGame& game,
                                      const game::StrategyProfile& profile, int iteration);

/// make_iteration_record + push onto `trace`; when obs is enabled, also
/// appends to the shared series solver.potential.trajectory,
/// solver.welfare.trajectory, and solver.payoff_gap.trajectory (max - min
/// payoff). Cold per-iteration bookkeeping, so it is runtime-gated only and
/// works identically in TRADEFL_ENABLE_TRACING=OFF builds.
void append_iteration(const game::CoopetitionGame& game,
                      const game::StrategyProfile& profile, int iteration,
                      std::vector<IterationRecord>& trace);

}  // namespace tradefl::core
