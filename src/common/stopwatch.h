// Monotonic wall-clock stopwatch for algorithm timing (computational
// efficiency property, Lemma 4 measurements, contract-latency benches).
#pragma once

#include <chrono>

namespace tradefl {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const { return elapsed_seconds() * 1e3; }
  [[nodiscard]] double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tradefl
