// ASCII table rendering used by the bench harness to print the paper's
// tables/figure series in a readable form.
#pragma once

#include <string>
#include <vector>

namespace tradefl {

/// Column alignment inside an AsciiTable.
enum class Align { kLeft, kRight };

/// Collects rows and renders them with box-drawing separators, e.g.
///   +-------+--------+
///   | gamma | welfare|
///   +-------+--------+
///   | 1e-09 | 8012.3 |
///   +-------+--------+
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header,
                      std::vector<Align> alignments = {});

  void add_row(std::vector<std::string> row);
  void add_row_doubles(const std::vector<double>& row, int precision = 6);

  /// Adds a row whose first cell is a label and the rest are doubles.
  void add_labeled_row(const std::string& label, const std::vector<double>& values,
                       int precision = 6);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tradefl
