#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tradefl {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string join(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

}  // namespace tradefl
