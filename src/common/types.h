// Basic shared type aliases used across the TradeFL library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tradefl {

/// Index of an organization within a coopetition game (0-based).
using OrgId = std::size_t;

/// Monetary amounts in the game layer are plain doubles; the chain layer
/// uses integer wei (see chain/fixed_point.h) for exact settlement.
using Money = double;

/// Seconds, for the per-phase training timing model.
using Seconds = double;

/// Joules, for the training-overhead energy model (Eq. 8).
using Joules = double;

/// CPU frequency in cycles per second (Hz).
using Hertz = double;

/// Data sizes in bits (paper: s_i is measured in bits).
using Bits = double;

}  // namespace tradefl
