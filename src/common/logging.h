// Lightweight leveled logger. Single global sink (stderr by default), safe to
// call from benches and examples. Not a substrate of the paper; purely infra.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace tradefl {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the human-readable name of a level ("INFO", ...).
const char* log_level_name(LogLevel level);

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the sink (used by tests to capture output). The sink receives the
/// fully formatted line without trailing newline.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);
void reset_log_sink();

/// Emits one log line through the current sink if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_message(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace tradefl

#define TRADEFL_LOG(level) \
  if (static_cast<int>(level) >= static_cast<int>(::tradefl::log_level())) \
  ::tradefl::detail::LogStream(level)

#define TFL_TRACE TRADEFL_LOG(::tradefl::LogLevel::kTrace)
#define TFL_DEBUG TRADEFL_LOG(::tradefl::LogLevel::kDebug)
#define TFL_INFO TRADEFL_LOG(::tradefl::LogLevel::kInfo)
#define TFL_WARN TRADEFL_LOG(::tradefl::LogLevel::kWarn)
#define TFL_ERROR TRADEFL_LOG(::tradefl::LogLevel::kError)
