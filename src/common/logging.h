// Lightweight leveled logger. Single global sink (stderr by default), safe to
// call from benches and examples. Not a substrate of the paper; purely infra.
//
// Optional prefixes (both off by default): set_log_timestamps(true) prepends
// "[+12.345s]" (seconds since the first log call), set_log_thread_ids(true)
// prepends "[t0]" (dense index from common/thread_id.h). Prefixes are part of
// the formatted line handed to the sink, so test-capture sinks see them.
//
// TFL_LOG_EVERY_N(level, n) rate-limits a call site: the 1st, (n+1)th, ...
// occurrence logs, the rest are counted and dropped — for instrumented inner
// loops that must not flood stderr.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace tradefl {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the human-readable name of a level ("INFO", ...).
const char* log_level_name(LogLevel level);

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the sink (used by tests to capture output). The sink receives the
/// fully formatted line without trailing newline.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);
void reset_log_sink();

/// Optional "[+12.345s]" prefix: seconds since the first log call.
void set_log_timestamps(bool on);
bool log_timestamps();

/// Optional "[t0]" prefix: dense per-thread index.
void set_log_thread_ids(bool on);
bool log_thread_ids();

/// Emits one log line through the current sink if `level` is enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Per-call-site occurrence counter behind TFL_LOG_EVERY_N. Returns true on
/// the 1st, (n+1)th, (2n+1)th, ... call for this (file, line); n == 0 acts
/// like n == 1 (always log).
bool log_every_n_site(const char* file, int line, std::uint64_t n);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_message(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace tradefl

#define TRADEFL_LOG(level) \
  if (static_cast<int>(level) >= static_cast<int>(::tradefl::log_level())) \
  ::tradefl::detail::LogStream(level)

#define TFL_TRACE TRADEFL_LOG(::tradefl::LogLevel::kTrace)
#define TFL_DEBUG TRADEFL_LOG(::tradefl::LogLevel::kDebug)
#define TFL_INFO TRADEFL_LOG(::tradefl::LogLevel::kInfo)
#define TFL_WARN TRADEFL_LOG(::tradefl::LogLevel::kWarn)
#define TFL_ERROR TRADEFL_LOG(::tradefl::LogLevel::kError)

// Single statement (a for-loop running at most once), so it stays safe in
// unbraced-if contexts. Occurrences are counted even when dropped.
#define TFL_LOG_EVERY_N(level, n)                                                   \
  for (bool tfl_log_pass_ = ::tradefl::detail::log_every_n_site(__FILE__, __LINE__, n); \
       tfl_log_pass_; tfl_log_pass_ = false)                                        \
  TRADEFL_LOG(level)
