// Crash-consistent, versioned binary snapshots. Every long-running pipeline
// (FedAvg/FedAsync training, CGBD solves, trading sessions, the chain WAL)
// persists its state through this layer instead of rolling its own ofstream
// format — tfl-lint enforces that.
//
// File layout (all integers little-endian, floats as IEEE-754 bit patterns):
//
//   [u32 magic "TFLS"] [u32 schema version] [u64 kind length][kind bytes]
//   [u64 payload length][payload bytes] [u32 CRC32 over everything before it]
//
// Durability contract:
//   * write_snapshot_file writes to `<path>.tmp` and renames into place, so a
//     crash mid-write leaves either the old snapshot or the new one — never a
//     torn file.
//   * read_snapshot_file is strict: wrong magic, kind mismatch, a version
//     newer than the reader supports, truncation, or a CRC mismatch each
//     yield a typed Error (codes snapshot.magic / snapshot.kind /
//     snapshot.version / snapshot.truncated / snapshot.crc) and never partial
//     state.
//
// Layering: this lives in common/ and therefore emits no metrics itself;
// write_snapshot_file returns the byte count so call sites in fl/, chain/,
// and tradefl/ can feed the snapshot.{writes,bytes,resumes} counters.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "common/result.h"

namespace tradefl {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `size` bytes. `seed` lets
/// callers chain partial computations; pass the previous return value.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                                  std::uint32_t seed = 0);
[[nodiscard]] std::uint32_t crc32(const std::vector<std::uint8_t>& data);

/// Thrown by SnapshotReader on overrun / malformed payloads; decode_snapshot
/// converts it into a typed Error so pipeline code never sees the exception.
class SnapshotError : public std::exception {
 public:
  explicit SnapshotError(std::string message) : message_(std::move(message)) {}
  [[nodiscard]] const char* what() const noexcept override { return message_.c_str(); }

 private:
  std::string message_;
};

/// Appends fields to a snapshot payload in the canonical little-endian
/// encoding. The writer is append-only; payload() hands the bytes to
/// write_snapshot_file (or the chain WAL framing).
class SnapshotWriter {
 public:
  void put_u8(std::uint8_t value);
  void put_u32(std::uint32_t value);
  void put_u64(std::uint64_t value);
  void put_i64(std::int64_t value);
  void put_bool(bool value);
  /// IEEE-754 bit pattern — round-trips every float bit-exactly, NaNs included.
  void put_f32(float value);
  void put_f64(double value);
  /// u64 length prefix followed by the raw bytes.
  void put_string(const std::string& value);
  void put_bytes(const std::vector<std::uint8_t>& value);
  void put_f32s(const std::vector<float>& values);
  void put_f64s(const std::vector<double>& values);
  void put_u64s(const std::vector<std::uint64_t>& values);

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Strict mirror of SnapshotWriter. Every overrun or oversized length prefix
/// throws SnapshotError immediately — a corrupt payload can never yield a
/// partially-plausible value.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::vector<std::uint8_t>& payload)
      : data_(payload.data()), size_(payload.size()) {}
  SnapshotReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64();
  [[nodiscard]] bool get_bool();
  [[nodiscard]] float get_f32();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] std::vector<std::uint8_t> get_bytes();
  [[nodiscard]] std::vector<float> get_f32s();
  [[nodiscard]] std::vector<double> get_f64s();
  [[nodiscard]] std::vector<std::uint64_t> get_u64s();

  [[nodiscard]] std::size_t remaining() const { return size_ - offset_; }

  /// Decoders call this last: trailing bytes mean the payload and the decoder
  /// disagree about the schema, which is corruption, not slack.
  void require_exhausted() const;

 private:
  void require(std::size_t bytes) const;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t offset_ = 0;
};

/// Atomically persists `payload` under the snapshot framing. Returns the
/// total file size in bytes on success (callers feed snapshot.bytes).
Result<std::size_t> write_snapshot_file(const std::string& path, const std::string& kind,
                                        std::uint32_t version, const SnapshotWriter& payload);

/// Reads and fully validates a snapshot, returning the payload bytes.
/// `kind` must match what was written; `max_version` is the newest schema the
/// caller understands (older versions are the caller's job to migrate).
Result<std::vector<std::uint8_t>> read_snapshot_file(const std::string& path,
                                                     const std::string& kind,
                                                     std::uint32_t max_version);

/// True when a regular file exists at `path` (resume=1 with no snapshot yet
/// is a cold start, not an error).
[[nodiscard]] bool snapshot_exists(const std::string& path);

/// Runs `decode(reader)` over a validated payload, converting any
/// SnapshotError into Error{"snapshot.decode", ...} so callers stay in
/// Result-land.
template <typename T, typename Decode>
Result<T> decode_snapshot(const std::vector<std::uint8_t>& payload, Decode&& decode) {
  SnapshotReader reader(payload);
  try {
    T value = decode(reader);
    reader.require_exhausted();
    return value;
  } catch (const SnapshotError& error) {
    return Error{"snapshot.decode", error.what()};
  }
}

}  // namespace tradefl
