#include "common/check.h"

#include "common/logging.h"

namespace tradefl::detail {
namespace {

[[noreturn]] void raise(const std::string& message) {
  TFL_ERROR << message;
  throw ContractViolation(message);
}

}  // namespace

void contract_fail(const char* kind, const char* expr, const char* file, int line,
                   const std::string& details) {
  std::ostringstream out;
  out << kind << '(' << expr << ") failed at " << file << ':' << line;
  if (!details.empty()) out << ": " << details;
  raise(out.str());
}

void bounds_fail(const char* index_expr, const char* size_expr, const char* file, int line,
                 unsigned long long index, unsigned long long size) {
  std::ostringstream out;
  out << "TFL_BOUNDS(" << index_expr << ", " << size_expr << ") failed at " << file << ':' << line
      << ": index " << index << " out of range [0, " << size << ')';
  raise(out.str());
}

void finite_fail(const char* expr, const char* file, int line, double value) {
  std::ostringstream out;
  out << "TFL_FINITE(" << expr << ") failed at " << file << ':' << line << ": value is ";
  if (std::isnan(value)) {
    out << "NaN";
  } else {
    out << (value > 0 ? "+Inf" : "-Inf");
  }
  raise(out.str());
}

}  // namespace tradefl::detail
